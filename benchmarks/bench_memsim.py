"""Bench: the mechanistic memory model explaining the scaling curves.

Regenerates the comparison of docs/MODEL.md Section 8: a two-parameter
MSHR/latency queueing model fitted per device must reproduce the
calibrated Section VI scaling phenomenology -- the paper's Section VII
"more detailed memory hierarchy model" investigation, carried out.
"""

import pytest

from repro.gpu.cycles import scaling_efficiency
from repro.gpu.memsim import emergent_scaling_curve, fit_queue_model


@pytest.mark.artifact("extension")
def bench_queue_model_fit(benchmark, gpu):
    params, err = benchmark(fit_queue_model, gpu)
    assert err < 0.05
    curve = emergent_scaling_curve(gpu, params)
    rows = "  ".join(
        f"{c}:{eff * 100:.0f}%/{scaling_efficiency(gpu, c) * 100:.0f}%"
        for c, eff in curve
    )
    print(
        f"\n{gpu.name}: MSHR={params.mshr_per_core} L0="
        f"{params.base_latency_cycles} cycles, max err {err:.3f}\n"
        f"  emergent/calibrated per-core eff: {rows}"
    )


@pytest.mark.artifact("extension")
def bench_vega_knee_emerges(benchmark):
    """The Vega anomaly specifically: knee at 8, floor near 55 %."""
    from repro.gpu.arch import VEGA_64

    def knee():
        params, _ = fit_queue_model(VEGA_64)
        return dict(emergent_scaling_curve(VEGA_64, params))

    curve = benchmark(knee)
    assert curve[8] > 0.99
    assert curve[16] < 0.95
    assert 0.45 < curve[64] < 0.60
