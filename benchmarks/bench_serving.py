"""Serving bench: request coalescing amortization, occupancy, latency SLOs.

The serving layer (``repro.serve``) only earns its keep if coalescing
concurrent queries into one bit-GEMM panel actually amortizes work: at
``clients`` concurrent single-profile queries the served
``gemm.popc_word_ops`` per query must drop to ``<= OPS_RATIO_CEILING``
(0.6) of the one-query-per-panel baseline.  Both sides of that ratio
are *exact counters* measured under forced batches
(:meth:`IdentityService.search_many`), so the gate is deterministic on
any runner.  The bench also demonstrates:

* **bit-exactness** -- solo and coalesced served top-k equal
  :class:`repro.core.streaming.StreamingIdentitySearch` on the same
  database (first-seen tie-breaking included);
* **occupancy** -- the coalesced batch carries exactly ``clients`` rows
  (``serve.batch_rows`` / ``serve.batches`` deltas);
* **latency** -- p50/p99 and QPS through the *live* coalescing window
  (in-process submits, tenant-ledger percentiles).  These are the only
  nondeterministic numbers here; the baseline pins wide per-metric
  tolerances for them (docs/PERF.md).

Runs two ways:

* under pytest-benchmark, like the other benches::

      PYTHONPATH=src python -m pytest benchmarks/bench_serving.py --benchmark-only

* standalone, for the CI jobs (writes a serving JSON the regression
  gate ingests via ``repro.observability.regress``)::

      PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json serving-smoke.json
"""

import argparse
import json
import sys
import tempfile
import time

import numpy as np

from repro.core.streaming import StreamingIdentitySearch
from repro.errors import DeadlineExceededError, OverloadedError
from repro.observability.counters import (
    GEMM_WORD_OPS,
    SERVE_BATCH_ROWS,
    SERVE_BATCHES,
)
from repro.observability.regress import DETERMINISTIC_COUNTERS
from repro.observability.tracer import Tracer, set_tracer
from repro.serve.index import ProfileIndex
from repro.serve.service import IdentityService

#: The benchmark problem: the paper's identity search served online, in
#: miniature -- enough shards to exercise the resident-segment walk.
FULL_PROBLEM = dict(
    rows=1024, sites=2048, clients=16, shard_rows=256, k=5, latency_rounds=6
)

#: CI smoke problem: small database, same client count as the gate.
SMOKE_PROBLEM = dict(
    rows=192, sites=320, clients=8, shard_rows=64, k=5, latency_rounds=3
)

#: Coalescing gate: served word-ops per query at ``clients`` concurrent
#: single-profile queries, as a fraction of the solo baseline.
OPS_RATIO_CEILING = 0.6

#: Overload flood: submissions per admission slot.  The flood submits
#: ``FLOOD_FACTOR * clients`` requests against ``max_queue=clients``
#: inside one coalescing window, so exactly ``clients`` are admitted and
#: the rest shed -- deterministic counts the baseline gates exactly.
FLOOD_FACTOR = 4

#: Coalescing window for the flood.  Wide enough that every submission
#: of the burst lands inside it on any runner (they are in-process
#: enqueues, microseconds each), which is what makes the admitted/shed
#: split exact rather than timing-dependent.
OVERLOAD_WINDOW_S = 1.0

#: Budget of the flood's deadline-carrying request: expires inside the
#: window, so it is rejected at the batch cut -- at most one batch
#: window past its budget (the propagation guarantee under load).
DOOMED_BUDGET_S = 0.2

#: CI slack on the overrun bound: the cut can run late on a loaded
#: shared runner, but an overrun beyond window + slack means the
#: dispatcher sat on an expired request.
OVERRUN_SLACK_S = 2.0


def make_inputs(problem, rng=0):
    rng = np.random.default_rng(rng)
    database = rng.integers(
        0, 2, size=(problem["rows"], problem["sites"]), dtype=np.uint8
    )
    query_sets = [
        rng.integers(0, 2, size=(1, problem["sites"]), dtype=np.uint8)
        for _ in range(problem["clients"])
    ]
    return database, query_sets


def oracle_matches(queries, database, k):
    search = StreamingIdentitySearch(queries, k=k)
    search.add_batch(database)
    return search.all_matches()


def measure_forced(service, query_sets, tracer):
    """Solo vs coalesced forced batches; exact counter deltas."""
    clients = len(query_sets)
    ops_0 = tracer.counters.get(GEMM_WORD_OPS)
    solo = [service.search_many([q])[0] for q in query_sets]
    ops_1 = tracer.counters.get(GEMM_WORD_OPS)
    rows_0 = tracer.counters.get(SERVE_BATCH_ROWS)
    batches_0 = tracer.counters.get(SERVE_BATCHES)
    coalesced = service.search_many(query_sets)
    ops_2 = tracer.counters.get(GEMM_WORD_OPS)
    rows_1 = tracer.counters.get(SERVE_BATCH_ROWS)
    batches_1 = tracer.counters.get(SERVE_BATCHES)

    solo_per_query = (ops_1 - ops_0) / clients
    coal_per_query = (ops_2 - ops_1) / clients
    occupancy = (rows_1 - rows_0) / max(1, batches_1 - batches_0)
    return solo, coalesced, solo_per_query, coal_per_query, occupancy


def measure_latency(service, query_sets, rounds, tenant="bench"):
    """Live-window submits: p50/p99 from the tenant ledger, wall QPS."""
    start = time.perf_counter()
    for _ in range(rounds):
        futures = [
            service.submit(q, tenant=tenant) for q in query_sets
        ]
        for future in futures:
            future.result(timeout=120)
    wall = time.perf_counter() - start
    summary = service.ledger.summary()[tenant]
    queries = rounds * len(query_sets)
    return {
        "p50_s": summary["p50_s"],
        "p99_s": summary["p99_s"],
        "qps": queries / wall if wall else 0.0,
    }


def measure_overload(index, problem, query_sets, oracles):
    """Flood a bounded service at ``FLOOD_FACTOR``x admission capacity.

    A dedicated service over the same index, with ``max_queue`` set to
    the client count and a wide coalescing window: the whole burst is
    submitted while the first batch is still collecting, so the
    admitted/shed split is exact.  Returns deterministic gate booleans
    plus the deadline-overrun measurement.
    """
    clients = len(query_sets)
    submitted = FLOOD_FACTOR * clients
    service = IdentityService(
        index,
        k=problem["k"],
        window_s=OVERLOAD_WINDOW_S,
        max_batch_rows=1024,
        max_queue=clients,
    )
    admitted = []  # (query index, future) in admission order
    shed = []
    with service:
        # The first request carries a budget that lapses inside the
        # window: it must be rejected at the cut, never computed.
        doomed = service.submit(
            query_sets[0], tenant="flood", deadline=DOOMED_BUDGET_S
        )
        for i in range(1, submitted):
            try:
                future = service.submit(query_sets[i % clients], tenant="flood")
            except OverloadedError as exc:
                shed.append(exc)
            else:
                admitted.append((i % clients, future))
        overrun_s = -1.0  # "never expired" -- fails the bounded gate
        try:
            doomed.result(timeout=120)
        except DeadlineExceededError as exc:
            overrun_s = exc.overrun_s
        accepted = [(qi, f.result(timeout=120)) for qi, f in admitted]

    n_admitted = 1 + len(admitted)
    bit_exact = all(matches == oracles[qi] for qi, matches in accepted)
    return {
        "flood_factor": FLOOD_FACTOR,
        "submitted": submitted,
        "admitted": n_admitted,
        "shed": len(shed),
        "shed_all_have_retry_hint": bool(
            shed and all(exc.retry_after_ms >= 1 for exc in shed)
        ),
        "conservation_ok": n_admitted + len(shed) == submitted,
        "accepted_bit_exact": bool(accepted) and bit_exact,
        "deadline_rejections": 1 if overrun_s >= 0 else 0,
        "deadline_overrun_s": overrun_s,
        "deadline_overrun_bounded": bool(
            0 <= overrun_s <= OVERLOAD_WINDOW_S + OVERRUN_SLACK_S
        ),
    }


def run_bench(problem, workdir):
    """Build a sharded index, serve it, return a JSON-ready dict."""
    database, query_sets = make_inputs(problem)
    oracles = [oracle_matches(q, database, problem["k"]) for q in query_sets]

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        index = ProfileIndex.build(
            workdir, database, shard_rows=problem["shard_rows"], word_bits=32
        )
        service = IdentityService(
            index,
            k=problem["k"],
            window_s=0.02,
            max_batch_rows=max(64, problem["clients"]),
        )
        with service, index:
            solo, coalesced, solo_pq, coal_pq, occupancy = measure_forced(
                service, query_sets, tracer
            )
            overload = measure_overload(index, problem, query_sets, oracles)
            counters = {
                name: value
                for name, value in sorted(tracer.counters.snapshot().items())
                if name in DETERMINISTIC_COUNTERS
            }
            # Latency is nondeterministic; keep it off the exact counters.
            set_tracer(Tracer())
            latency = measure_latency(
                service, query_sets, problem["latency_rounds"]
            )
    finally:
        set_tracer(previous)

    bit_exact = solo == oracles and coalesced == oracles
    return {
        "problem": dict(problem),
        "serving": {
            "word_ops_per_query_solo": solo_pq,
            "word_ops_per_query_coalesced": coal_pq,
            "amortization_speedup": solo_pq / coal_pq if coal_pq else 1.0,
            "batch_occupancy": occupancy,
            "bit_exact": bool(bit_exact),
            "p50_s": latency["p50_s"],
            "p99_s": latency["p99_s"],
            "qps": latency["qps"],
        },
        "overload": overload,
        "counters": counters,
    }


def render(result):
    p = result["problem"]
    s = result["serving"]
    o = result["overload"]
    ratio = (
        s["word_ops_per_query_coalesced"] / s["word_ops_per_query_solo"]
        if s["word_ops_per_query_solo"]
        else 1.0
    )
    return "\n".join([
        f"serving  ({p['rows']} rows x {p['sites']} sites, "
        f"{p['clients']} clients, shard_rows={p['shard_rows']}, "
        f"k={p['k']})",
        f"  word-ops/query solo      {s['word_ops_per_query_solo']:>12.0f}",
        f"  word-ops/query coalesced {s['word_ops_per_query_coalesced']:>12.0f}  "
        f"(ratio {ratio:.3f}, ceiling {OPS_RATIO_CEILING})",
        f"  amortization speedup     {s['amortization_speedup']:>12.2f}x",
        f"  batch occupancy          {s['batch_occupancy']:>12.1f} rows/batch",
        f"  served p50 / p99         {s['p50_s'] * 1e3:>8.2f} / "
        f"{s['p99_s'] * 1e3:.2f} ms",
        f"  throughput               {s['qps']:>12.1f} qps",
        f"  bit-exact                {'yes' if s['bit_exact'] else 'NO':>12}",
        f"overload ({o['flood_factor']}x capacity flood: {o['submitted']} "
        f"submitted -> {o['admitted']} admitted, {o['shed']} shed)",
        f"  shed carry retry hint    "
        f"{'yes' if o['shed_all_have_retry_hint'] else 'NO':>12}",
        f"  accepted bit-exact       "
        f"{'yes' if o['accepted_bit_exact'] else 'NO':>12}",
        f"  deadline overrun         {o['deadline_overrun_s'] * 1e3:>9.1f} ms  "
        f"(bounded: {'yes' if o['deadline_overrun_bounded'] else 'NO'})",
    ])


# -- pytest-benchmark entries ---------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.artifact("serving")
    def bench_serving_full(benchmark, tmp_path):
        """Time the full serving bench; assert the deterministic gates."""
        result = benchmark.pedantic(
            run_bench, args=(FULL_PROBLEM, tmp_path), rounds=1, iterations=1
        )
        print("\n" + render(result))
        serving = result["serving"]
        assert serving["bit_exact"]
        assert (
            serving["word_ops_per_query_coalesced"]
            <= OPS_RATIO_CEILING * serving["word_ops_per_query_solo"]
        )
        overload = result["overload"]
        assert overload["shed"] > 0
        assert overload["shed_all_have_retry_hint"]
        assert overload["conservation_ok"]
        assert overload["accepted_bit_exact"]
        assert overload["deadline_overrun_bounded"]

    @pytest.mark.artifact("serving")
    def bench_serving_coalesced_panel(benchmark, tmp_path):
        """Time one coalesced forced batch over the full problem."""
        database, query_sets = make_inputs(FULL_PROBLEM)
        index = ProfileIndex.build(
            tmp_path,
            database,
            shard_rows=FULL_PROBLEM["shard_rows"],
            word_bits=32,
        )
        service = IdentityService(index, k=FULL_PROBLEM["k"])
        with service, index:
            results = benchmark(service.search_many, query_sets)
        assert len(results) == FULL_PROBLEM["clients"]


# -- standalone CLI (CI jobs) ----------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem for CI smoke on shared runners",
    )
    parser.add_argument("--json", help="write the result dict to this path")
    args = parser.parse_args(argv)

    problem = SMOKE_PROBLEM if args.smoke else FULL_PROBLEM
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as tmp:
        result = run_bench(problem, tmp)
    result["mode"] = "smoke" if args.smoke else "full"
    print(render(result))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
        print(f"\nwrote {args.json}")

    serving = result["serving"]
    if not serving["bit_exact"]:
        print(
            "FAIL: served top-k differs from StreamingIdentitySearch",
            file=sys.stderr,
        )
        return 1
    ceiling = OPS_RATIO_CEILING * serving["word_ops_per_query_solo"]
    if serving["word_ops_per_query_coalesced"] > ceiling:
        print(
            f"FAIL: coalesced word-ops/query "
            f"{serving['word_ops_per_query_coalesced']:.0f} above "
            f"{OPS_RATIO_CEILING} x solo "
            f"({serving['word_ops_per_query_solo']:.0f})",
            file=sys.stderr,
        )
        return 1
    overload = result["overload"]
    overload_gates = (
        "shed_all_have_retry_hint",
        "conservation_ok",
        "accepted_bit_exact",
        "deadline_overrun_bounded",
    )
    failed = [gate for gate in overload_gates if not overload[gate]]
    if overload["shed"] == 0:
        failed.append("shed_nonzero")
    if failed:
        print(
            f"FAIL: overload gates not met: {', '.join(failed)} "
            f"({overload['submitted']} submitted, "
            f"{overload['admitted']} admitted, {overload['shed']} shed, "
            f"overrun {overload['deadline_overrun_s']:.3f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
