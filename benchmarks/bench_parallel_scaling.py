"""Parallel-engine scaling: sharded bit-GEMM vs the serial drivers.

Sweeps the :class:`repro.parallel.ParallelEngine` over worker counts on
one LD-shaped problem and demonstrates two properties:

* **bit-exactness** -- every worker count returns a table byte-identical
  to :func:`repro.blis.gemm.bit_gemm_reference`;
* **speedup** -- at ``workers=4`` the sharded engine beats the best
  serial driver by at least 1.5x.  On a single-core host the win comes
  from the engine's GEMM shard strategy (one float32 BLAS call per
  ``k_c`` panel over cached unpacked-bit panels); on multicore hosts
  thread overlap stacks on top of it.

Runs two ways:

* under pytest-benchmark, like the other benches::

      PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py --benchmark-only

* standalone, for the CI smoke job (writes a timing-artifact JSON)::

      PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke --json timings.json

A third mode races the kernel-ABI backends (:mod:`repro.kernels`)
single-threaded against the reference panel and gates every *compiled*
backend at :data:`COMPILED_SPEEDUP_FLOOR`::

      PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --backends --json backend-race.json

``--executor {thread,process,both}`` picks the shard executor tier for
the sweep (see ``docs/DISTRIBUTED.md``).  ``both`` races the thread
pool and the shared-memory process pool side by side against the one
serial baseline and checks their deterministic counters match; in full
(non-smoke) mode the process tier must additionally clear
:data:`PROCESS_SPEEDUP_FLOOR` at ``workers=4`` (multicore hosts; the
thread tier keeps its :data:`SPEEDUP_FLOOR`)::

      PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --executor both --json scaling.json
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.parallel import ParallelEngine
from repro.util.bitops import pack_bits

#: The benchmark problem: an LD-shaped table (m queries x n database
#: rows over k packed words).  Chosen so the serial fallback takes the
#: fast driver, giving the parallel engine its hardest baseline.
FULL_PROBLEM = dict(m=512, n=2048, k_words=128)

#: The CI smoke problem: same shape family, small enough for a
#: seconds-long job on a cold shared runner.
SMOKE_PROBLEM = dict(m=128, n=512, k_words=32)

WORKER_SWEEP = (1, 2, 4)
SPEEDUP_FLOOR = 1.5

#: Full-mode floor for the process executor at ``workers=4`` vs the
#: serial baseline (numpy backend).  Worker processes sidestep the GIL,
#: so on a multicore host the sharded bit-GEMM must scale; single-core
#: hosts (and CI smoke) skip the floor the same way the thread tier's
#: :data:`SPEEDUP_FLOOR` is full-mode only.
PROCESS_SPEEDUP_FLOOR = 3.0

#: Single-thread floor for compiled kernel backends vs the reference
#: panel (the issue's >=5x acceptance bar; measured wins are larger).
COMPILED_SPEEDUP_FLOOR = 5.0


def make_operands(m, n, k_words, word_bits=32, rng=0):
    rng = np.random.default_rng(rng)
    sites = k_words * word_bits
    bits_a = (rng.random((m, sites)) < 0.4).astype(np.uint8)
    bits_b = (rng.random((n, sites)) < 0.4).astype(np.uint8)
    return pack_bits(bits_a, word_bits), pack_bits(bits_b, word_bits)


def time_workers(pa, pb, workers, repeats=3, op=ComparisonOp.AND,
                 executor="thread"):
    """Best-of-``repeats`` seconds for one worker count, plus the table.

    ``workers=1`` takes the engine's serial fallback (the best serial
    driver for the problem size); ``workers>1`` forces the sharded path.
    The process executor gets one untimed warmup run first so worker
    spawn and shared-memory setup are excluded, matching the steady
    state a long-lived engine amortizes to.
    """
    engine = ParallelEngine(workers=workers, executor=executor)
    try:
        if executor == "process" and workers > 1:
            engine.run(pa, pb, op, force_parallel=True)
        best = float("inf")
        table = None
        for _ in range(repeats):
            start = time.perf_counter()
            table, report = engine.run(
                pa, pb, op, force_parallel=workers > 1
            )
            best = min(best, time.perf_counter() - start)
    finally:
        engine.shutdown()
    return best, table, report


def collect_counters(problem, workers=WORKER_SWEEP[-1], op=ComparisonOp.AND,
                     executor="thread"):
    """Deterministic observability counters for one sharded run.

    Runs one *untimed* instrumented pass (a fresh tracer installed just
    for its duration) and keeps only the counters the regression gate
    may compare exactly; see
    :data:`repro.observability.regress.DETERMINISTIC_COUNTERS`.  The
    process executor ships per-worker counter deltas back to the parent
    tracer, so the snapshot is executor-invariant by construction --
    ``--executor both`` asserts exactly that.
    """
    from repro.observability.regress import DETERMINISTIC_COUNTERS
    from repro.observability.tracer import Tracer, set_tracer

    pa, pb = make_operands(**problem)
    tracer = Tracer()
    previous = set_tracer(tracer)
    engine = ParallelEngine(workers=workers, executor=executor)
    try:
        engine.run(pa, pb, op, force_parallel=workers > 1)
    finally:
        engine.shutdown()
        set_tracer(previous)
    snapshot = tracer.counters.snapshot()
    return {
        name: value
        for name, value in sorted(snapshot.items())
        if name in DETERMINISTIC_COUNTERS
    }


def run_sweep(problem, repeats=3, workers_sweep=WORKER_SWEEP,
              executors=("thread",)):
    """Sweep worker counts per executor; returns a JSON-ready dict.

    One serial baseline (``workers=1``) anchors every executor's
    speedup column.  Thread rows keep the historical shape (regression
    baselines name them ``workers{N}.*``); process rows additionally
    carry ``executor="process"`` and flatten to
    ``process.workers{N}.*``.  With both executors the deterministic
    counters of one instrumented pass per tier must match exactly
    (``counters_match``).
    """
    pa, pb = make_operands(**problem)
    expected = bit_gemm_reference(pa, pb, ComparisonOp.AND)
    rows = []
    serial_best, _table, _report = time_workers(
        pa, pb, workers_sweep[0], repeats=repeats
    )
    rows.append({
        "workers": workers_sweep[0],
        "executor": "thread",
        "seconds": serial_best,
        "speedup": 1.0,
        "strategy": _report.strategy,
        "n_shards": _report.n_shards,
        "bit_exact": bool((_table == expected).all()),
        "cache_hit_rate": (
            _report.cache_stats.hit_rate if _report.cache_stats else 0.0
        ),
    })
    for executor in executors:
        for workers in workers_sweep[1:]:
            best, table, report = time_workers(
                pa, pb, workers, repeats=repeats, executor=executor
            )
            rows.append({
                "workers": workers,
                "executor": executor,
                "seconds": best,
                "speedup": serial_best / best,
                "strategy": report.strategy,
                "n_shards": report.n_shards,
                "bit_exact": bool((table == expected).all()),
                "cache_hit_rate": (
                    report.cache_stats.hit_rate if report.cache_stats else 0.0
                ),
            })
    result = {
        "problem": dict(problem),
        "repeats": repeats,
        "executors": list(executors),
        "word_ops": problem["m"] * problem["n"] * problem["k_words"],
        "rows": rows,
    }
    if len(executors) > 1:
        per_executor = {
            executor: collect_counters(problem, executor=executor)
            for executor in executors
        }
        reference = per_executor[executors[0]]
        result["counters_match"] = all(
            counters == reference for counters in per_executor.values()
        )
    return result


def run_backend_race(problem, repeats=3, op=ComparisonOp.AND):
    """Race every tunable kernel backend single-thread vs the reference.

    Times the reference panel (:func:`bit_gemm_reference`) as the
    baseline, then each registered backend that is available and
    tunable through :func:`repro.blis.gemm.bit_gemm_backend`.  Every
    table is checked bit-exact, and one untimed instrumented pass per
    backend asserts the word-op accounting is backend-invariant.
    """
    from repro.blis.gemm import bit_gemm_backend
    from repro.observability.counters import GEMM_CALLS, GEMM_WORD_OPS
    from repro.observability.tracer import Tracer, set_tracer
    from repro.kernels import registered_backends

    pa, pb = make_operands(**problem)
    ref_best = float("inf")
    expected = None
    for _ in range(repeats):
        start = time.perf_counter()
        expected = bit_gemm_reference(pa, pb, op)
        ref_best = min(ref_best, time.perf_counter() - start)

    def counted(name):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            bit_gemm_backend(pa, pb, op, backend=name)
        finally:
            set_tracer(previous)
        snapshot = tracer.counters.snapshot()
        return {
            GEMM_CALLS: snapshot.get(GEMM_CALLS, 0),
            GEMM_WORD_OPS: snapshot.get(GEMM_WORD_OPS, 0),
        }

    rows = []
    counters = None
    for be in registered_backends():
        info = be.info
        if not info.available or not info.tunable:
            continue
        best = float("inf")
        table = None
        for _ in range(repeats):
            start = time.perf_counter()
            table = bit_gemm_backend(pa, pb, op, backend=info.name)
            best = min(best, time.perf_counter() - start)
        backend_counters = counted(info.name)
        if counters is None:
            counters = backend_counters
        rows.append({
            "name": info.name,
            "kind": info.kind,
            "version": info.version,
            "compiled": info.compiled,
            "seconds": best,
            "speedup": ref_best / best,
            "bit_exact": bool((table == expected).all()),
            "counters_invariant": backend_counters == counters,
        })
    return {
        "problem": dict(problem),
        "repeats": repeats,
        "word_ops": problem["m"] * problem["n"] * problem["k_words"],
        "reference_seconds": ref_best,
        "backends": rows,
        "counters": counters or {},
    }


def render_backends(result):
    lines = [
        "kernel-backend race  (m={m}, n={n}, k={k_words} words, "
        "single thread)".format(**result["problem"]),
        f"reference panel: {result['reference_seconds']:.4f} s",
        f"{'backend':>10} {'kind':>10} {'compiled':>9} {'seconds':>9} "
        f"{'speedup':>8} {'bit-exact':>10}",
    ]
    for row in result["backends"]:
        lines.append(
            f"{row['name']:>10} {row['kind']:>10} "
            f"{'yes' if row['compiled'] else 'no':>9} "
            f"{row['seconds']:>9.4f} {row['speedup']:>7.2f}x "
            f"{'yes' if row['bit_exact'] else 'NO':>10}"
        )
    return "\n".join(lines)


def check_backend_race(result, enforce_floor=True):
    """Gate a backend-race result; returns a list of failure strings."""
    failures = []
    for row in result["backends"]:
        if not row["bit_exact"]:
            failures.append(
                f"backend {row['name']} differs from bit_gemm_reference"
            )
        if not row["counters_invariant"]:
            failures.append(
                f"backend {row['name']} drifted the word-op counters"
            )
        if (
            enforce_floor
            and row["compiled"]
            and row["speedup"] < COMPILED_SPEEDUP_FLOOR
        ):
            failures.append(
                f"compiled backend {row['name']} speedup "
                f"{row['speedup']:.2f}x below the "
                f"{COMPILED_SPEEDUP_FLOOR}x floor"
            )
    return failures


def render(result):
    lines = [
        "parallel scaling  (m={m}, n={n}, k={k_words} words)".format(
            **result["problem"]
        ),
        f"{'executor':>9} {'workers':>8} {'seconds':>9} {'speedup':>8} "
        f"{'shards':>7} {'hit rate':>9} {'bit-exact':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.get('executor', 'thread'):>9} "
            f"{row['workers']:>8} {row['seconds']:>9.4f} "
            f"{row['speedup']:>7.2f}x {row['n_shards']:>7} "
            f"{row['cache_hit_rate']:>8.0%} "
            f"{'yes' if row['bit_exact'] else 'NO':>10}"
        )
    if "counters_match" in result:
        lines.append(
            "deterministic counters executor-invariant: "
            + ("yes" if result["counters_match"] else "NO")
        )
    return "\n".join(lines)


# -- pytest-benchmark entries ---------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.artifact("parallel-scaling")
    def bench_parallel_speedup(benchmark):
        """Time the full sweep; assert exactness and the 1.5x floor."""
        result = benchmark.pedantic(
            run_sweep, args=(FULL_PROBLEM,), rounds=1, iterations=1
        )
        print("\n" + render(result))
        assert all(row["bit_exact"] for row in result["rows"])
        final = result["rows"][-1]
        assert final["workers"] == 4
        assert final["speedup"] >= SPEEDUP_FLOOR

    @pytest.mark.artifact("parallel-scaling")
    def bench_parallel_workers4(benchmark):
        """Time one workers=4 sharded run on the full problem."""
        pa, pb = make_operands(**FULL_PROBLEM)
        engine = ParallelEngine(workers=4)
        try:
            table, _ = benchmark(
                engine.run, pa, pb, ComparisonOp.AND, force_parallel=True
            )
        finally:
            engine.shutdown()
        expected = bit_gemm_reference(pa, pb, ComparisonOp.AND)
        assert (table[0] == expected[0]).all()

    @pytest.mark.artifact("parallel-scaling")
    def bench_process_workers4(benchmark):
        """Time one workers=4 process-executor run (warm pool)."""
        pa, pb = make_operands(**FULL_PROBLEM)
        engine = ParallelEngine(workers=4, executor="process")
        try:
            engine.run(pa, pb, ComparisonOp.AND, force_parallel=True)
            table, report = benchmark(
                engine.run, pa, pb, ComparisonOp.AND, force_parallel=True
            )
        finally:
            engine.shutdown()
        expected = bit_gemm_reference(pa, pb, ComparisonOp.AND)
        assert report.executor == "process"
        assert (table == expected).all()


# -- standalone CLI (CI smoke job) ----------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem, single repeat, no speedup floor (CI smoke)",
    )
    parser.add_argument("--json", help="write the result dict to this path")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per worker count (default: 3, smoke: 1)",
    )
    parser.add_argument(
        "--backends", action="store_true",
        help="race the kernel-ABI backends single-thread vs the "
        "reference panel instead of sweeping worker counts; compiled "
        f"backends must beat {COMPILED_SPEEDUP_FLOOR}x (unless --smoke)",
    )
    parser.add_argument(
        "--executor", default="thread",
        choices=["thread", "process", "both"],
        help="shard executor tier(s) to sweep; 'both' races the thread "
        "pool and the shared-memory process pool against one serial "
        "baseline and checks counter invariance "
        "(see docs/DISTRIBUTED.md)",
    )
    args = parser.parse_args(argv)

    problem = SMOKE_PROBLEM if args.smoke else FULL_PROBLEM
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)

    if args.backends:
        result = run_backend_race(problem, repeats=repeats)
        result["mode"] = "backends"
        print(render_backends(result))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2)
            print(f"\nwrote {args.json}")
        failures = check_backend_race(result, enforce_floor=not args.smoke)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    executors = (
        ("thread", "process") if args.executor == "both"
        else (args.executor,)
    )
    result = run_sweep(problem, repeats=repeats, executors=executors)
    result["mode"] = "smoke" if args.smoke else "full"
    # Deterministic counters for the regression gate (untimed pass);
    # executor-invariant, so one snapshot per tier gates both exactly.
    result["counters"] = collect_counters(problem, executor=executors[0])
    if "process" in executors:
        result["process_counters"] = collect_counters(
            problem, executor="process"
        )
    print(render(result))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
        print(f"\nwrote {args.json}")

    if not all(row["bit_exact"] for row in result["rows"]):
        print("FAIL: parallel table differs from bit_gemm_reference",
              file=sys.stderr)
        return 1
    if not result.get("counters_match", True):
        print(
            "FAIL: deterministic counters differ between executors",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        floors = {"thread": SPEEDUP_FLOOR, "process": PROCESS_SPEEDUP_FLOOR}
        failed = False
        for executor in executors:
            final = [
                row for row in result["rows"]
                if row.get("executor", "thread") == executor
            ][-1]
            floor = floors[executor]
            if final["speedup"] < floor:
                print(
                    f"FAIL: {executor} executor workers="
                    f"{final['workers']} speedup "
                    f"{final['speedup']:.2f}x below the {floor}x floor",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
