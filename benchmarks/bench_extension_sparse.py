"""Extension bench: sparse representation density crossover (Section VII).

The paper's future-work remark predicts sparse SNP representations pay
off because "a typical DNA sample is expected to contain mostly major
alleles".  This bench regenerates the dense-vs-sparse crossover curve
under the cost model and validates the auto-selector against measured
host wall-clock on both sides of the crossover.
"""

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_fast
from repro.sparse.auto import choose_representation
from repro.sparse.cost import SparseCostModel, density_crossover
from repro.sparse.kernels import sparse_comparison
from repro.sparse.matrix import SparseSNPMatrix
from repro.util.bitops import pack_bits


def random_bits(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.uint8)


@pytest.mark.artifact("extension")
def bench_density_crossover_curve(benchmark):
    """Modeled cost ratio (sparse/dense) across the density axis."""
    model = SparseCostModel()

    def curve():
        points = {}
        for density in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5):
            sparse = model.sparse_ops(64, 64, 10_000, density)
            dense = model.dense_ops(64, 64, 10_000)
            points[density] = sparse / dense
        return points

    ratios = benchmark(curve)
    d_star = density_crossover(model)
    # Monotone in density, crossing 1.0 exactly at the crossover.
    values = [ratios[d] for d in sorted(ratios)]
    assert values == sorted(values)
    assert ratios[0.005] < 1.0 < ratios[0.5]
    print(f"\ndensity crossover d* = {d_star:.3f}; sparse/dense cost ratio: "
          + ", ".join(f"{d}:{r:.2f}" for d, r in sorted(ratios.items())))
    for density, ratio in ratios.items():
        assert (ratio < 1.0) == (density < d_star) or abs(density - d_star) < 0.01


@pytest.mark.artifact("extension")
def bench_sparse_kernel_rare_variants(benchmark):
    """Host wall-clock of the sparse kernel in its favourable regime."""
    bits = random_bits((64, 20_000), 0.005, seed=1)
    sp = SparseSNPMatrix.from_dense(bits)
    result = benchmark(sparse_comparison, sp)
    packed = pack_bits(bits, 32)
    assert (result == bit_gemm_fast(packed, packed)).all()


@pytest.mark.artifact("extension")
def bench_dense_kernel_common_variants(benchmark):
    """The dense side of the comparison at matched shape."""
    bits = random_bits((64, 20_000), 0.4, seed=2)
    packed = pack_bits(bits, 32)
    result = benchmark(bit_gemm_fast, packed, packed)
    assert result.shape == (64, 64)


@pytest.mark.artifact("extension")
def bench_auto_selector(benchmark):
    """The selector's decision cost and correctness at both densities."""

    def decide():
        rare = choose_representation(random_bits((32, 5_000), 0.005, 3))
        common = choose_representation(random_bits((32, 5_000), 0.4, 4))
        return rare, common

    rare, common = benchmark(decide)
    assert rare.representation == "sparse"
    assert common.representation == "dense"
    assert rare.predicted_speedup > 1.0
