"""Figure 7: per-core scalability (weak scaling, largest LD tile).

Asserts the three device signatures the paper reports: Titan V scales
almost perfectly and exceeds 100 % relative per-core performance (the
DVFS hypothesis); GTX 980 lands around 90 % at 16 cores; Vega 64 drops
sharply past 8 cores.
"""

import pytest

from repro.bench.figures import fig7_series
from repro.bench.report import render_figure_report
from repro.gpu.arch import GTX_980, TITAN_V, VEGA_64


@pytest.mark.artifact("fig7")
def bench_fig7_series(benchmark, gpu):
    series = benchmark(fig7_series, gpu)
    curve = {p["cores"]: p["relative_per_core"] for p in series}
    assert curve[1] == pytest.approx(1.0)
    if gpu is TITAN_V:
        # Rises above 100 % for multi-core counts; nearly flat to 80.
        assert curve[4] > 1.0
        assert curve[80] > 1.0
        assert min(curve.values()) > 0.95
    elif gpu is GTX_980:
        assert curve[16] == pytest.approx(0.926, abs=0.02)
        assert curve[8] == pytest.approx(1.0)
    elif gpu is VEGA_64:
        # Flat to the knee, then a drastic decline (Section VI-C).
        assert curve[8] == pytest.approx(1.0)
        assert curve[16] < 0.95
        assert curve[64] == pytest.approx(0.553, abs=0.02)
        # Monotone decline past the knee.
        tail = [curve[c] for c in (8, 16, 32, 64)]
        assert tail == sorted(tail, reverse=True)


@pytest.mark.artifact("fig7")
def bench_fig7_render(benchmark):
    text = benchmark(render_figure_report, "fig7")
    print("\n" + text)
    assert "scalability" in text
