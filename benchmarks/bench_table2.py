"""Table II: software configuration parameters per device/algorithm.

Regenerates every cell of Table II from the planner (Eqs. 4-7 plus the
published n_r/grid tunings) and validates each configuration compiles
against its device.
"""

import pytest

from repro.bench.report import render_figure_report
from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.gpu.kernel import SnpKernel

#: (device, algorithm) -> (core grid, m_r, n_r, k_c, m_c), verbatim Table II.
PAPER_TABLE2 = {
    ("GTX 980", Algorithm.LD): ((4, 4), 4, 384, 383, 32),
    ("Titan V", Algorithm.LD): ((80, 1), 4, 1024, 383, 32),
    ("Vega 64", Algorithm.LD): ((32, 2), 4, 1024, 512, 32),
    ("GTX 980", Algorithm.FASTID_IDENTITY): ((1, 16), 4, 768, 383, 32),
    ("Titan V", Algorithm.FASTID_IDENTITY): ((1, 80), 4, 1024, 383, 32),
    ("Vega 64", Algorithm.FASTID_IDENTITY): ((1, 64), 4, 1024, 512, 32),
}


@pytest.mark.artifact("table2")
@pytest.mark.parametrize(
    "algorithm", [Algorithm.LD, Algorithm.FASTID_IDENTITY], ids=lambda a: a.value
)
def bench_derive_config(benchmark, gpu, algorithm):
    """Time the analytic derivation; assert exact Table II agreement."""
    config = benchmark(derive_config, gpu, algorithm)
    grid, m_r, n_r, k_c, m_c = PAPER_TABLE2[(gpu.name, algorithm)]
    assert (config.grid_rows, config.grid_cols) == grid
    assert config.m_r == m_r
    assert config.n_r == n_r
    assert config.k_c == k_c
    assert config.m_c == m_c
    # Every published configuration must compile on its device.
    SnpKernel.compile(
        gpu, config.op, m_c=config.m_c, m_r=config.m_r, k_c=config.k_c,
        n_r=config.n_r, grid_rows=config.grid_rows, grid_cols=config.grid_cols,
    )


@pytest.mark.artifact("table2")
def bench_table2_render(benchmark):
    text = benchmark(render_figure_report, "table2")
    assert "383" in text and "512" in text
    print("\n" + text)
