"""What-if architecture studies: the model as a design-space tool.

Because performance follows from :class:`GPUArchitecture` parameters,
the framework doubles as a what-if calculator -- the kind of analysis
the paper's conclusion gestures at (memory hierarchies, DGX-2 nodes).
Three studies:

* **POPC unit scaling** on the GTX 980: the paper identifies POPC as
  the NVIDIA bottleneck; adding units must help linearly until the
  ALU pipe (2 ops/word over 32 lanes) takes over at 16 units.
* **Latency tolerance**: growing ``L_fn`` raises the Eq. 7 bound but
  must not change peak throughput while ``n_r`` keeps pace -- the
  whole point of the latency-hiding design.
* **Shared-memory sizing**: ``k_c`` scales with shared memory
  (Eq. 6), trading panel-loop overhead against tile capacity; the
  model shows the diminishing returns the paper's "k_c in the order
  of 100s" remark implies.
"""

import dataclasses

import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp
from repro.core.planner import derive_k_c, n_r_lower_bound
from repro.gpu.arch import GTX_980
from repro.gpu.cycles import (
    kernel_cycles,
    peak_word_ops_per_second,
)
from repro.util.units import kib


@pytest.mark.artifact("whatif")
def bench_popc_unit_scaling(benchmark):
    """Peak vs POPC unit count on a Maxwell-like device."""

    def sweep():
        peaks = {}
        for units in (2, 4, 8, 16, 32):
            arch = dataclasses.replace(GTX_980, popc_units=units)
            peaks[units] = peak_word_ops_per_second(arch, ComparisonOp.AND)
        return peaks

    peaks = benchmark(sweep)
    # Linear in the POPC-bound regime ...
    assert peaks[8] == pytest.approx(2 * peaks[4])
    assert peaks[4] == pytest.approx(2 * peaks[2])
    # ... until the ALU pipe (32 lanes / 2 ops = 16 words/cycle) binds:
    # beyond 16 POPC units nothing improves.
    assert peaks[32] == pytest.approx(peaks[16])
    print("\nGTX 980 what-if, peak GPOPS by POPC units: "
          + ", ".join(f"{u}:{p / 1e9:.0f}" for u, p in peaks.items()))


@pytest.mark.artifact("whatif")
def bench_latency_tolerance(benchmark):
    """Doubling L_fn must not cost peak while n_r tracks Eq. 7."""

    def compare():
        times = {}
        for l_fn in (3, 6, 12):
            arch = dataclasses.replace(GTX_980, l_fn=l_fn)
            n_r = n_r_lower_bound(arch) * 2
            # n divides every swept n_r x grid_cols product, so the
            # comparison isolates latency from balance quantization.
            plan = BlockingPlan(
                m=4096, n=4608, k=256, m_c=32, k_c=383, m_r=4, n_r=n_r,
                grid_rows=4, grid_cols=4,
            )
            times[l_fn] = kernel_cycles(arch, plan).seconds
        return times

    times = benchmark(compare)
    values = list(times.values())
    spread = max(values) / min(values)
    assert spread < 1.02  # latency fully hidden at every L_fn
    print("\nGTX 980 what-if, kernel time vs L_fn (n_r tracking Eq. 7): "
          + ", ".join(f"L={lat}:{t * 1e3:.2f}ms" for lat, t in times.items()))


@pytest.mark.artifact("whatif")
def bench_shared_memory_sizing(benchmark):
    """k_c from Eq. 6 across shared-memory sizes; flat beyond ~100s."""

    def sweep():
        out = {}
        for shared_kib in (16, 32, 48, 96, 192):
            arch = dataclasses.replace(
                GTX_980,
                shared_memory_bytes=kib(shared_kib),
                shared_memory_reserved_bytes=16,
            )
            k_c = derive_k_c(arch)
            plan = BlockingPlan(
                m=8192, n=8192, k=2048, m_c=32, k_c=k_c, m_r=4, n_r=384,
                grid_rows=4, grid_cols=4,
            )
            out[shared_kib] = (k_c, kernel_cycles(arch, plan).seconds)
        return out

    results = benchmark(sweep)
    # Eq. 6 scaling of k_c with capacity.
    assert results[96][0] == pytest.approx(2 * results[48][0], abs=2)
    # Performance is k_c-insensitive once k_c is "in the order of 100s"
    # (the paper's Section V-E point): 48 -> 192 KiB changes little.
    t48, t192 = results[48][1], results[192][1]
    assert abs(t48 - t192) / t48 < 0.02
    print("\nGTX 980 what-if, (k_c, ms) by shared KiB: "
          + ", ".join(f"{s}KiB:({k},{t * 1e3:.2f})" for s, (k, t) in results.items()))
