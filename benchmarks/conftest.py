"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's evaluation artifacts.  The
``benchmark`` fixture times the regeneration itself (the cost of the
simulator / analytical model, host wall-clock); the *asserted* content
is the paper-shape reproduction (who wins, by what factor, where the
knees fall).  Run with ``pytest benchmarks/ --benchmark-only``; add
``-s`` to see the regenerated tables.
"""

import pytest

from repro.gpu.arch import ALL_GPUS


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "artifact(name): which paper table/figure a bench regenerates"
    )


@pytest.fixture(params=ALL_GPUS, ids=lambda a: a.name.replace(" ", ""))
def gpu(request):
    """Parametrize a bench over the three evaluation devices."""
    return request.param
