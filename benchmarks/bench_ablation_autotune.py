"""Ablation: model-driven autotuning vs the published configurations.

Table II tunes for the paper's benchmark shapes.  The autotuner runs
the same analytical machinery over the whole legal configuration space
for *arbitrary* shapes; this bench quantifies (a) that it never loses
to the published configurations on their home turf, and (b) how much
it gains on off-benchmark shapes (skewed and tiny problems).
"""

import pytest

from repro.core.autotune import autotune
from repro.core.config import Algorithm
from repro.core.planner import ProblemShape
from repro.model.roofline import host_roofline, kernel_roofline


@pytest.mark.artifact("ablation")
def bench_autotune_on_benchmark_shapes(benchmark, gpu):
    """Home-turf check: the tuner matches or beats Table II."""
    problem = ProblemShape(m=12_256, n=12_256, k_bits=10_000)
    result = benchmark(autotune, gpu, Algorithm.LD, problem)
    assert result.gain_over_published >= 1.0 - 1e-9
    print(
        f"\n{gpu.name} LD 12256^2: tuned {result.config.grid_rows}x"
        f"{result.config.grid_cols} n_r={result.config.n_r} -> "
        f"{result.gain_over_published:.2f}x vs published "
        f"({result.candidates_evaluated} candidates)"
    )


@pytest.mark.artifact("ablation")
def bench_autotune_off_benchmark_shapes(benchmark, gpu):
    """Skewed/tiny shapes: where shape-aware tuning pays."""

    def sweep():
        gains = {}
        for label, problem in (
            ("tall", ProblemShape(m=100_000, n=256, k_bits=2048)),
            ("tiny", ProblemShape(m=64, n=192, k_bits=512)),
            ("wide", ProblemShape(m=64, n=500_000, k_bits=512)),
        ):
            gains[label] = autotune(gpu, Algorithm.LD, problem).gain_over_published
        return gains

    gains = benchmark(sweep)
    # The tuner never loses; on at least one off-benchmark shape the
    # published LD grid leaves measurable performance behind.
    assert all(g >= 1.0 - 1e-9 for g in gains.values())
    assert max(gains.values()) > 1.05
    print(f"\n{gpu.name} off-benchmark gains: "
          + ", ".join(f"{k}={v:.2f}x" for k, v in gains.items()))


@pytest.mark.artifact("ablation")
def bench_roofline_classification(benchmark, gpu):
    """Roofline positions of the paper's two regimes on each device."""

    def classify():
        ld = kernel_roofline(gpu, m_c=32, n_per_core=2048, k_words=320)
        fastid_host = host_roofline(gpu, m=32, k_words=32)
        return ld, fastid_host

    ld, fastid_host = benchmark(classify)
    # The LD kernel computes against device memory (compute-bound on
    # NVIDIA; Vega sits near its ridge); end-to-end FastID starves on
    # the host link everywhere.
    if gpu.vendor == "NVIDIA":
        assert ld.bound == "compute"
    assert fastid_host.bound == "bandwidth"
    print(
        f"\n{gpu.name}: LD kernel {ld.bound}-bound "
        f"(intensity {ld.arithmetic_intensity:.2f} ops/B, ridge "
        f"{ld.ridge_intensity:.2f}); FastID host link "
        f"{fastid_host.bound}-bound"
    )
