"""Ablation: double buffering on/off (Sections VI-A1, VI-E2).

The paper overlaps host transfers with computation via double-buffered
input/output tiles.  This bench quantifies the benefit at NDIS scale
(where the pipeline has many tiles to overlap) and verifies there is no
penalty in the single-tile regime.
"""

import numpy as np
import pytest

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.gpu.arch import GTX_980
from repro.model.endtoend import estimate_end_to_end


@pytest.mark.artifact("ablation")
def bench_double_buffering_at_ndis_scale(benchmark, gpu):
    """Measure the overlap win on the 20M-profile FastID problem."""

    def both():
        on = estimate_end_to_end(
            gpu, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024,
            double_buffering=True,
        )
        off = estimate_end_to_end(
            gpu, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024,
            double_buffering=False,
        )
        return on, off

    on, off = benchmark(both)
    if on.n_tiles > 1:
        # Multi-tile pipelines overlap H2D, compute and D2H.
        assert on.end_to_end_s < off.end_to_end_s
        saving = 1 - on.end_to_end_s / off.end_to_end_s
        print(
            f"\n{gpu.name}: double buffering saves {saving * 100:.1f}% "
            f"({off.end_to_end_s:.3f}s -> {on.end_to_end_s:.3f}s, "
            f"{on.n_tiles} tiles)"
        )
    else:
        # Single tile: nothing to overlap, no regression allowed.
        assert on.end_to_end_s == pytest.approx(off.end_to_end_s, rel=1e-9)


@pytest.mark.artifact("ablation")
def bench_double_buffering_functional(benchmark):
    """The functional pipeline shows the same effect at reduced scale."""
    rng = np.random.default_rng(0)
    queries = (rng.random((8, 512)) < 0.5).astype(np.uint8)
    database = (rng.random((3000, 512)) < 0.5).astype(np.uint8)

    def run(double_buffering):
        fw = SNPComparisonFramework(
            GTX_980, Algorithm.FASTID_IDENTITY, double_buffering=double_buffering
        )
        table, report = fw.run(queries, database)
        return table, report

    (t_on, r_on) = run(True)
    (t_off, r_off) = benchmark(run, False)
    assert (t_on == t_off).all()  # overlap never changes results
    assert r_on.end_to_end_s <= r_off.end_to_end_s
