"""Host-side functional throughput of the simulation itself.

Unlike the figure benches (which regenerate *modeled device* numbers),
this bench measures real wall-clock throughput of the Python functional
paths -- useful for tracking regressions in the executor, the packers
and the statistical layers.
"""

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast
from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.packing import pack_operand
from repro.gpu.arch import TITAN_V
from repro.snp.generator import PopulationModel, generate_population
from repro.util.bitops import pack_bits


@pytest.fixture(scope="module")
def packed_mid():
    rng = np.random.default_rng(0)
    bits = (rng.random((256, 4096)) < 0.4).astype(np.uint8)
    return pack_bits(bits, 32)


@pytest.mark.artifact("functional")
def bench_fast_path_gemm(benchmark, packed_mid):
    result = benchmark(bit_gemm_fast, packed_mid, packed_mid, ComparisonOp.AND)
    assert result.shape == (256, 256)


@pytest.mark.artifact("functional")
def bench_blocked_path_gemm(benchmark):
    rng = np.random.default_rng(1)
    bits = (rng.random((48, 1024)) < 0.4).astype(np.uint8)
    packed = pack_bits(bits, 32)
    result = benchmark(bit_gemm_blocked, packed, packed, ComparisonOp.XOR)
    assert (np.diag(result) == 0).all()


@pytest.mark.artifact("functional")
def bench_operand_packing(benchmark):
    rng = np.random.default_rng(2)
    bits = (rng.random((2048, 8192)) < 0.3).astype(np.uint8)
    packed = benchmark(pack_operand, bits, 32, 4)
    assert packed.k_words == 256


@pytest.mark.artifact("functional")
def bench_population_generation(benchmark):
    model = PopulationModel(n_samples=1024, n_sites=2048, block_size=32)
    dataset = benchmark(generate_population, model, 7)
    assert dataset.n_samples == 1024


@pytest.mark.artifact("functional")
def bench_framework_end_to_end(benchmark):
    rng = np.random.default_rng(3)
    queries = (rng.random((32, 1024)) < 0.5).astype(np.uint8)
    database = (rng.random((4096, 1024)) < 0.5).astype(np.uint8)
    fw = SNPComparisonFramework(TITAN_V, Algorithm.FASTID_IDENTITY)

    def run():
        table, report = fw.run(queries, database)
        return table

    table = benchmark(run)
    assert table.shape == (32, 4096)
