"""Ablation: the n_r parameter (Eq. 7 and register pressure).

Sweeps n_r around the analytic corridor and confirms the model's
behaviour matches Section V-A's reasoning: throughput climbs while
latency is exposed (n_r below the Eq. 7 bound), plateaus inside the
corridor, and degrades once the accumulator block spills registers --
Volkov's "better performance at lower occupancy" in miniature.
"""

import pytest

from repro.blis.blocking import BlockingPlan
from repro.core.planner import n_r_lower_bound
from repro.gpu.cycles import kernel_cycles


def throughput_at(arch, n_r: int) -> float:
    # One core isolates the n_r effect from core-grid quantization.
    plan = BlockingPlan(
        m=4096, n=16384, k=512, m_c=32, k_c=383, m_r=4, n_r=n_r,
        grid_rows=1, grid_cols=1,
    )
    return kernel_cycles(arch, plan).throughput_word_ops


@pytest.mark.artifact("ablation")
def bench_nr_sweep(benchmark, gpu):
    bound = n_r_lower_bound(gpu)

    def sweep():
        points = {}
        for factor in (0.25, 0.5, 1, 2, 4):
            n_r = max(gpu.l_fn, int(bound * factor) // gpu.l_fn * gpu.l_fn)
            points[factor] = throughput_at(gpu, n_r)
        return points

    points = benchmark(sweep)
    # Below the bound: exposed latency scales throughput down ~linearly.
    assert points[0.5] > points[0.25]
    assert points[1] > points[0.5] * 1.5
    # At and above the bound: the plateau (plus ramp effects).
    assert points[2] >= points[1] * 0.99
    print(
        f"\n{gpu.name}: n_r bound={bound}, throughput(bound/4, bound/2, bound, "
        f"2x, 4x) = "
        + ", ".join(f"{points[f] / 1e9:.0f}G" for f in (0.25, 0.5, 1, 2, 4))
    )


@pytest.mark.artifact("ablation")
def bench_nr_register_spill(benchmark, gpu):
    """Far beyond the register budget the spill penalty dominates."""
    bound = n_r_lower_bound(gpu)

    def spill_ratio():
        plateau = throughput_at(gpu, bound * 4 // gpu.l_fn * gpu.l_fn)
        # Enormous n_r: accumulators cannot fit the register file.
        huge = 512 * gpu.l_fn * gpu.n_t // 4
        spilled = throughput_at(gpu, huge // gpu.l_fn * gpu.l_fn)
        return spilled / plateau

    ratio = benchmark(spill_ratio)
    assert ratio < 0.8
