"""Table I: hardware parameters, with microbenchmark recovery.

Regenerates the measurement-derived rows of Table I by running the
Section V-C/D microbenchmark procedures on the cycle-level core
simulator and checking they recover the configured parameters.
"""

import pytest

from repro.bench.report import render_figure_report
from repro.gpu.microbench import run_microbench_suite


@pytest.mark.artifact("table1")
def bench_microbench_suite(benchmark, gpu):
    """Time the full microbenchmark suite; assert parameter recovery."""
    report = benchmark(run_microbench_suite, gpu)
    assert report.popc_throughput == pytest.approx(gpu.popc_units, rel=0.05)
    assert report.alu_throughput == pytest.approx(gpu.alu_units, rel=0.05)
    assert report.popc_latency == pytest.approx(report.popc_latency_expected, rel=0.02)
    # Section V-D findings: POPC on its own pipe; ADD and AND shared.
    assert not report.popc_alu_shared
    assert report.add_and_shared


@pytest.mark.artifact("table1")
def bench_table1_render(benchmark):
    """Regenerate and print the full Table I report."""
    text = benchmark(render_figure_report, "table1")
    assert "GTX 980" in text and "Vega 64" in text
    print("\n" + text)
