"""Ablation: core-grid distribution of loops 2 and 3 (Section IV-C).

"The distribution of GPU cores between the second and third loop is
left as a parameter since different problems may require different
distribution."  This bench sweeps grid shapes for the two problem
geometries and confirms the planner's choices are (near-)optimal under
the model:

* FastID (32 x 20M): only the 1 x N_c grid keeps every core busy --
  skewed problems need skewed grids.
* LD (square): several balanced grids tie within a few percent; the
  published grid is never beaten by more than model noise.
"""

import pytest

from repro.blis.blocking import BlockingPlan
from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.gpu.cycles import kernel_cycles


def grid_options(n_c: int) -> list[tuple[int, int]]:
    return [(r, n_c // r) for r in range(1, n_c + 1) if n_c % r == 0]


def time_for_grid(arch, config, m, n, k_words, grid) -> float:
    plan = BlockingPlan(
        m=m, n=n, k=k_words, m_c=config.m_c, k_c=config.k_c,
        m_r=config.m_r, n_r=config.n_r, grid_rows=grid[0], grid_cols=grid[1],
    )
    return kernel_cycles(arch, plan, config.op).seconds


@pytest.mark.artifact("ablation")
def bench_fastid_grid_sweep(benchmark, gpu):
    config = derive_config(gpu, Algorithm.FASTID_IDENTITY)
    m, n, k_words = 32, 1_048_576, 32

    def sweep():
        return {
            grid: time_for_grid(gpu, config, m, n, k_words, grid)
            for grid in grid_options(gpu.n_c)
        }

    times = benchmark(sweep)
    best_grid = min(times, key=lambda g: times[g])
    published = (config.grid_rows, config.grid_cols)
    # The published 1 x N_c grid must tie the sweep winner (grids that
    # split the 8 query micro-panels stay balanced in the model, so
    # several shapes tie within noise) ...
    assert times[published] <= times[best_grid] * 1.02
    worst = max(times.values())
    # ... while strongly M-skewed grids starve on the 32-row query:
    # an N_c x 1 grid leaves all but 8 micro-panel owners idle, so the
    # penalty scales with the device's core count.
    expected_penalty = max(1.5, 0.4 * gpu.n_c * config.m_r / 32)
    assert worst > times[published] * expected_penalty
    print(
        f"\n{gpu.name} FastID: published {published} = "
        f"{times[published] * 1e3:.2f} ms; worst grid = {worst * 1e3:.2f} ms "
        f"({worst / times[published]:.1f}x slower)"
    )


@pytest.mark.artifact("ablation")
def bench_ld_grid_sweep(benchmark, gpu):
    config = derive_config(gpu, Algorithm.LD)
    # A size all swept grids divide evenly (8192 quantizes badly for
    # some n_r-unit splits and would measure imbalance, not grid shape).
    m = n = 12288
    k_words = 480

    def sweep():
        return {
            grid: time_for_grid(gpu, config, m, n, k_words, grid)
            for grid in grid_options(gpu.n_c)
        }

    times = benchmark(sweep)
    published = (config.grid_rows, config.grid_cols)
    best = min(times.values())
    # Square LD problems tolerate many grids; the published choice must
    # sit within 15 % of the sweep optimum (row-major grids gain a few
    # percent of ramp in the model; the paper's tunings traded this
    # against effects outside the model).
    assert times[published] <= best * 1.15
