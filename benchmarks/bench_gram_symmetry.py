"""Gram-mode symmetry win: triangular shard plans vs the full path.

All three paper workloads are self-comparisons at heart (LD compares a
site table against itself; the FastID self-scans do the same), so the
output satisfies ``C == C.T`` and the engine can compute only the
diagonal + upper-triangular shards, reflecting the rest
(:meth:`repro.parallel.plan.ShardPlan.triangular`).  This bench pins an
LD-shaped self-comparison and demonstrates:

* **bit-exactness** -- the triangular table is byte-identical to
  :func:`repro.blis.gemm.bit_gemm_reference`;
* **op savings** -- the Gram pass computes well under the full
  ``m * n * k`` word-ops (the exact count is gated by CI through the
  deterministic ``gemm.popc_word_ops`` / ``shards.mirrored`` counters);
* **speedup** -- in full mode, Gram mode at ``workers=4`` beats the
  best serial full-output driver by at least 1.5x.

Runs two ways:

* under pytest-benchmark, like the other benches::

      PYTHONPATH=src python -m pytest benchmarks/bench_gram_symmetry.py --benchmark-only

* standalone, for the CI jobs (writes a metrics-report JSON the
  regression gate ingests)::

      PYTHONPATH=src python benchmarks/bench_gram_symmetry.py --smoke --json gram.json
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.parallel import ParallelEngine

#: The benchmark problem: one LD-shaped self-comparison.  Square by
#: construction -- Gram mode only exists for self-comparisons.
FULL_PROBLEM = dict(m=1024, k_words=128)

#: CI smoke problem: small enough for a cold shared runner but still
#: above the engine's serial/parallel crossover (2^21 word-ops).
SMOKE_PROBLEM = dict(m=512, k_words=32)

WORKERS = 4
SPEEDUP_FLOOR = 1.5

#: Counter timings/plan shapes must not depend on a host tuning cache,
#: so every engine in this bench pins the GEMM shard strategy.
STRATEGY = "gemm"


def make_operand(m, k_words, rng=0):
    rng = np.random.default_rng(rng)
    return rng.integers(0, 2**64, size=(m, k_words), dtype=np.uint64)


def time_run(engine, a, symmetric, repeats=3):
    """Best-of-``repeats`` seconds for one configuration, plus outputs."""
    best = float("inf")
    table = report = None
    for _ in range(repeats):
        start = time.perf_counter()
        table, report = engine.run(
            a, a, ComparisonOp.AND,
            force_parallel=engine.workers > 1,
            symmetric=symmetric,
        )
        best = min(best, time.perf_counter() - start)
    return best, table, report


def collect_counters(problem):
    """Deterministic counters for one Gram-mode sharded run.

    An untimed instrumented pass under a fresh tracer; only counters in
    :data:`repro.observability.regress.DETERMINISTIC_COUNTERS` survive
    (the Gram-relevant ones are ``gemm.popc_word_ops``, which counts
    *computed* ops only, and ``shards.mirrored``).
    """
    from repro.observability.regress import DETERMINISTIC_COUNTERS
    from repro.observability.tracer import Tracer, set_tracer

    a = make_operand(**problem)
    tracer = Tracer()
    previous = set_tracer(tracer)
    engine = ParallelEngine(workers=WORKERS, strategy=STRATEGY)
    try:
        engine.run(a, a, ComparisonOp.AND, force_parallel=True)
    finally:
        engine.shutdown()
        set_tracer(previous)
    snapshot = tracer.counters.snapshot()
    return {
        name: value
        for name, value in sorted(snapshot.items())
        if name in DETERMINISTIC_COUNTERS
    }


def run_bench(problem, repeats=3):
    """Time serial-full vs gram@workers; returns a JSON-ready dict."""
    a = make_operand(**problem)
    expected = bit_gemm_reference(a, a, ComparisonOp.AND)
    full_ops = problem["m"] * problem["m"] * problem["k_words"]

    serial = ParallelEngine(workers=1, strategy=STRATEGY)
    gram = ParallelEngine(workers=WORKERS, strategy=STRATEGY)
    full = ParallelEngine(workers=WORKERS, strategy=STRATEGY)
    try:
        serial_s, serial_table, _ = time_run(serial, a, False, repeats)
        gram_s, gram_table, gram_report = time_run(gram, a, None, repeats)
        full_s, _, _ = time_run(full, a, False, repeats)
    finally:
        serial.shutdown()
        gram.shutdown()
        full.shutdown()

    plan = gram_report.shard_plan
    return {
        "problem": dict(problem),
        "repeats": repeats,
        "word_ops_full": full_ops,
        "word_ops_computed": plan.total_word_ops(),
        "op_ratio": plan.total_word_ops() / full_ops,
        "n_shards": gram_report.n_shards,
        "n_mirrored": gram_report.n_mirrored,
        "serial_full_s": serial_s,
        "gram_s": gram_s,
        "parallel_full_s": full_s,
        "speedup_vs_serial": serial_s / gram_s,
        "speedup_vs_parallel_full": full_s / gram_s,
        "bit_exact": bool(
            (gram_table == expected).all() and (serial_table == expected).all()
        ),
    }


def render(result):
    p = result["problem"]
    return "\n".join([
        f"gram symmetry  (m=n={p['m']}, k={p['k_words']} words, "
        f"workers={WORKERS})",
        f"  computed word-ops   {result['word_ops_computed']:>12}  "
        f"({result['op_ratio']:.3f}x of full {result['word_ops_full']})",
        f"  shards              {result['n_shards']:>12}  "
        f"({result['n_mirrored']} mirrored)",
        f"  serial full         {result['serial_full_s']:>11.4f}s",
        f"  parallel full       {result['parallel_full_s']:>11.4f}s",
        f"  gram                {result['gram_s']:>11.4f}s  "
        f"({result['speedup_vs_serial']:.2f}x vs serial, "
        f"{result['speedup_vs_parallel_full']:.2f}x vs parallel full)",
        f"  bit-exact           {'yes' if result['bit_exact'] else 'NO':>12}",
    ])


# -- pytest-benchmark entries ---------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.artifact("gram-symmetry")
    def bench_gram_speedup(benchmark):
        """Time the full comparison; assert exactness and the floor."""
        result = benchmark.pedantic(
            run_bench, args=(FULL_PROBLEM,), rounds=1, iterations=1
        )
        print("\n" + render(result))
        assert result["bit_exact"]
        assert result["speedup_vs_serial"] >= SPEEDUP_FLOOR

    @pytest.mark.artifact("gram-symmetry")
    def bench_gram_workers4(benchmark):
        """Time one workers=4 Gram run on the full problem."""
        a = make_operand(**FULL_PROBLEM)
        engine = ParallelEngine(workers=WORKERS, strategy=STRATEGY)
        try:
            table, report = benchmark(
                engine.run, a, a, ComparisonOp.AND, force_parallel=True
            )
        finally:
            engine.shutdown()
        assert report.symmetric
        assert (table == table.T).all()


# -- standalone CLI (CI jobs) ----------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem, single repeat, no speedup floor (CI smoke)",
    )
    parser.add_argument("--json", help="write the result dict to this path")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per configuration (default: 3, smoke: 1)",
    )
    args = parser.parse_args(argv)

    problem = SMOKE_PROBLEM if args.smoke else FULL_PROBLEM
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    result = run_bench(problem, repeats=repeats)
    result["mode"] = "smoke" if args.smoke else "full"
    # Deterministic counters for the regression gate (untimed pass);
    # the span entry gives the gate one coarse timing to watch.
    result["counters"] = collect_counters(problem)
    result["spans"] = [{"name": "gram.bench", "total_s": result["gram_s"]}]
    print(render(result))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
        print(f"\nwrote {args.json}")

    if not result["bit_exact"]:
        print("FAIL: Gram table differs from bit_gemm_reference", file=sys.stderr)
        return 1
    if not args.smoke and result["speedup_vs_serial"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: gram speedup {result['speedup_vs_serial']:.2f}x below "
            f"the {SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
