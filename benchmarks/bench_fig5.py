"""Figure 5: LD kernel throughput vs number of SNP strings.

Regenerates the kernel-throughput curve for each device at the
caption's per-device SNP counts and string maxima, and asserts the
paper's reported peak efficiencies: 90.7 % (GTX 980), 97.1 % (Titan V),
54.9 % (Vega 64).
"""

import pytest

from repro.bench.figures import FIG5_LIMITS, fig5_series
from repro.bench.report import render_figure_report

PAPER_EFFICIENCY = {"GTX 980": 0.907, "Titan V": 0.971, "Vega 64": 0.549}


@pytest.mark.artifact("fig5")
def bench_fig5_series(benchmark, gpu):
    """Time the throughput sweep; assert the Fig. 5 shape and endpoint."""
    series = benchmark(fig5_series, gpu)
    # Rising curve (data reuse ramps with more strings) ...
    effs = [p["efficiency"] for p in series]
    assert effs[0] < effs[-1]
    # ... throughput never exceeds the dotted theoretical peak ...
    assert all(p["gpops"] <= p["peak_gpops"] + 1e-9 for p in series)
    # ... and the endpoint matches the paper's reported efficiency.
    assert effs[-1] == pytest.approx(PAPER_EFFICIENCY[gpu.name], abs=0.01)
    # Axis limits come from the figure caption.
    snps, max_strings = FIG5_LIMITS[gpu.name]
    assert series[-1]["snp_strings"] == max_strings
    assert series[0]["snps"] == snps


@pytest.mark.artifact("fig5")
def bench_fig5_render(benchmark):
    text = benchmark(render_figure_report, "fig5")
    print("\n" + text)
    assert "efficiency" in text
