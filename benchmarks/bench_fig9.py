"""Figure 9: AND vs AND-NOT comparison on one compute core.

The mixture-analysis kernel choice (Section VI-E1): on NVIDIA the
fused AND-NOT makes the negation free; on the Vega 64 the NOT lands on
the ALU pipe that already bounds the kernel, costing one third of the
throughput.
"""

import pytest

from repro.bench.figures import fig9_series
from repro.bench.report import render_figure_report
from repro.gpu.arch import VEGA_64


@pytest.mark.artifact("fig9")
def bench_fig9_series(benchmark):
    rows = {p["device"]: p for p in benchmark(fig9_series)}
    # NVIDIA: "near identical performance" with or without the NOT.
    for device in ("GTX 980", "Titan V"):
        assert rows[device]["andnot_penalty"] == pytest.approx(0.0, abs=0.01)
    # Vega: the third ALU op on a 2-op bottleneck costs 1/3.
    assert rows["Vega 64"]["andnot_penalty"] == pytest.approx(1 / 3, abs=0.02)
    # Absolute single-core ordering: Vega's wider clusters beat both
    # NVIDIA parts per core on the AND kernel.
    assert rows["Vega 64"]["and_gpops"] > rows["GTX 980"]["and_gpops"]


@pytest.mark.artifact("fig9")
def bench_fig9_prenegation_recovers_throughput(benchmark):
    """Pre-negating the database restores the AND rate on Vega."""
    from repro.blis.microkernel import ComparisonOp
    from repro.gpu.cycles import peak_word_ops_per_second

    def peaks():
        return (
            peak_word_ops_per_second(VEGA_64, ComparisonOp.AND_PRENEGATED),
            peak_word_ops_per_second(VEGA_64, ComparisonOp.AND),
            peak_word_ops_per_second(VEGA_64, ComparisonOp.ANDNOT),
        )

    prenegated, plain_and, fused = benchmark(peaks)
    assert prenegated == plain_and
    assert fused < plain_and


@pytest.mark.artifact("fig9")
def bench_fig9_render(benchmark):
    text = benchmark(render_figure_report, "fig9")
    print("\n" + text)
    assert "AND-NOT" in text
