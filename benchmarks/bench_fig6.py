"""Figure 6: end-to-end LD execution time, CPU baseline vs GPUs.

Simulated datasets of 10,000 SNPs, growing sequence counts.  Asserts
the paper's qualitative structure: initialization dominates small
problems (CPU wins), GPUs win at scale, and the large-problem speedup
falls inside the abstract's 47-677 % band.
"""

import pytest

from repro.bench.figures import fig6_series
from repro.bench.report import render_figure_report
from repro.gpu.arch import ALL_GPUS

DEVICE_KEYS = [a.name.lower().replace(" ", "_") for a in ALL_GPUS]


@pytest.mark.artifact("fig6")
def bench_fig6_series(benchmark):
    series = benchmark(fig6_series)
    small, large = series[0], series[-1]
    # Small problems: OpenCL init dominates; CPU is faster (Section VI-B).
    for key in DEVICE_KEYS:
        assert small[f"{key}_s"] > small["cpu_s"]
    # Large problems: every GPU beats the CPU end-to-end, within the
    # abstract's 47 %-677 % faster band.
    for key in DEVICE_KEYS:
        assert 1.47 <= large[f"{key}_speedup"] <= 7.77
    # GPU times grow slowly with n (transfer/compute amortize init),
    # CPU grows quadratically: the gap must widen monotonically.
    for key in DEVICE_KEYS:
        speedups = [p[f"{key}_speedup"] for p in series]
        assert speedups == sorted(speedups)


@pytest.mark.artifact("fig6")
def bench_fig6_crossover(benchmark):
    """Locate the CPU/GPU crossover; the paper places it at moderate n."""

    def crossover():
        for n in range(1_000, 13_000, 500):
            point = fig6_series([n])[0]
            if all(point[f"{k}_speedup"] > 1.0 for k in DEVICE_KEYS):
                return n
        return None

    n_cross = benchmark(crossover)
    assert n_cross is not None
    assert 2_000 <= n_cross <= 12_000


@pytest.mark.artifact("fig6")
def bench_fig6_render(benchmark):
    text = benchmark(render_figure_report, "fig6")
    print("\n" + text)
    assert "CPU" in text
