"""Ablation: mixture-analysis kernel variants (Section VI-E1).

Three ways to compute ``popcount(r & ~m)``:

1. fused AND-NOT in the kernel (free on NVIDIA's LOP3-class ALUs),
2. explicit NOT + AND (what Vega executes without fusion),
3. pre-negated database + plain AND (the paper's recommended Vega
   strategy -- "mixture analysis reduces down to the same computation
   as linkage disequilibrium").

All three must agree bit-exactly; their *throughput* differs exactly
where the paper says it does.
"""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.gpu.arch import TITAN_V, VEGA_64
from repro.gpu.cycles import peak_word_ops_per_second
from repro.snp.forensic import generate_database, make_mixture
from repro.snp.stats import mixture_scores_naive


@pytest.mark.artifact("ablation")
def bench_mixture_variants_agree(benchmark):
    """Functional equivalence of the fused and pre-negated kernels."""
    db = generate_database(400, 256, rng=0)
    refs = db.profiles[:64]
    mixtures = np.vstack(
        [make_mixture(db.profiles[i : i + 3]) for i in range(0, 30, 3)]
    )
    oracle = mixture_scores_naive(refs, mixtures)

    def run_both():
        fused = SNPComparisonFramework(
            TITAN_V, Algorithm.FASTID_MIXTURE, prenegate=False
        )
        pre = SNPComparisonFramework(
            VEGA_64, Algorithm.FASTID_MIXTURE, prenegate=True
        )
        s1, _ = fused.run(refs, mixtures)
        s2, _ = pre.run(refs, mixtures)
        return s1, s2

    s_fused, s_pre = benchmark(run_both)
    assert (s_fused == oracle).all()
    assert (s_pre == oracle).all()


@pytest.mark.artifact("ablation")
def bench_mixture_kernel_choice_per_vendor(benchmark, gpu):
    """Peak-throughput ranking of the three variants per device."""

    def peaks():
        return {
            "fused": peak_word_ops_per_second(gpu, ComparisonOp.ANDNOT),
            "prenegated": peak_word_ops_per_second(gpu, ComparisonOp.AND_PRENEGATED),
            "ld": peak_word_ops_per_second(gpu, ComparisonOp.AND),
        }

    peaks_by_variant = benchmark(peaks)
    # Pre-negation always reaches the LD rate.
    assert peaks_by_variant["prenegated"] == peaks_by_variant["ld"]
    if gpu.has_fused_andnot:
        # NVIDIA: nothing to gain from pre-negating.
        assert peaks_by_variant["fused"] == peaks_by_variant["ld"]
    else:
        # Vega: pre-negation buys back the full 3:2 ALU penalty.
        assert peaks_by_variant["fused"] == pytest.approx(
            peaks_by_variant["ld"] * 2 / 3
        )
    print(
        f"\n{gpu.name}: "
        + ", ".join(f"{k}={v / 1e9:.0f} GPOPS" for k, v in peaks_by_variant.items())
    )
