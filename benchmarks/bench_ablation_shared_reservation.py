"""Ablation: the shared-memory reservation and k_c sensitivity (S V-E).

"Since the value of k_c is in the order of 100s, the impact of not
having access to all of shared memory is minimized since the reduced
shared memory means reducing k_c by 1."  This bench quantifies that
claim: k_c = 383 vs the unreachable 384 on NVIDIA costs well under a
percent, while ignoring the reservation makes the kernel uncompilable.
"""

import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError
from repro.gpu.arch import GTX_980, VEGA_64
from repro.gpu.cycles import kernel_cycles
from repro.gpu.kernel import SnpKernel


def time_with_kc(arch, k_c: int, grid) -> float:
    plan = BlockingPlan(
        m=8192, n=8192, k=768, m_c=32, k_c=k_c, m_r=4, n_r=384,
        grid_rows=grid[0], grid_cols=grid[1],
    )
    return kernel_cycles(arch, plan).seconds


@pytest.mark.artifact("ablation")
def bench_kc_reservation_cost(benchmark):
    """k_c 383 vs 384: the performance cost of the reservation."""

    def relative_cost():
        t_383 = time_with_kc(GTX_980, 383, (4, 4))
        t_384 = time_with_kc(GTX_980, 384, (4, 4))
        return t_383 / t_384 - 1.0

    cost = benchmark(relative_cost)
    # "Minimized": well below one percent in the model (k_c only
    # affects panel iteration granularity, not the op count).
    assert abs(cost) < 0.01
    print(f"\nGTX 980: k_c 383 vs 384 costs {cost * 100:+.3f}%")


@pytest.mark.artifact("ablation")
def bench_kc_overflow_rejected(benchmark):
    """Ignoring the reservation fails the shared-memory compile check."""

    def try_compile():
        try:
            SnpKernel.compile(
                GTX_980, ComparisonOp.AND, m_c=32, m_r=4, k_c=384, n_r=384,
                grid_rows=4, grid_cols=4,
            )
            return False
        except ConfigurationError:
            return True

    rejected = benchmark(try_compile)
    assert rejected


@pytest.mark.artifact("ablation")
def bench_vega_uses_full_shared(benchmark):
    """Vega has no reservation: k_c = 512 compiles and fills shared."""

    def compile_full():
        return SnpKernel.compile(
            VEGA_64, ComparisonOp.AND, m_c=32, m_r=4, k_c=512, n_r=1024,
            grid_rows=32, grid_cols=2,
        )

    kernel = benchmark(compile_full)
    used = kernel.m_c * kernel.k_c * VEGA_64.word_bytes
    assert used == VEGA_64.usable_shared_memory_bytes
