"""Extension bench: multi-GPU scaling (Section VII, DGX-2 direction).

Regenerates the node-level scaling curves the paper's future-work
paragraph anticipates, including its predicted cost: "this comes at
the cost of having to communicate between multi-GPUs" -- here visible
as host-link contention on shared-PCIe nodes for the transfer-bound
FastID workload, versus near-linear parallel-section scaling for
compute-bound LD on a dedicated-fabric node.
"""

import pytest

from repro.core.config import Algorithm
from repro.multigpu.executor import estimate_multi_gpu, scaling_series
from repro.multigpu.system import DGX2_LIKE, QUAD_GTX980


@pytest.mark.artifact("extension")
def bench_dgx2_ld_scaling(benchmark):
    """Compute-bound LD on the dedicated-fabric node."""
    series = benchmark(
        scaling_series, DGX2_LIKE, Algorithm.LD, 8192, 131_072, 25_600
    )
    by_devices = {p["devices"]: p for p in series}
    assert by_devices[1]["speedup"] == pytest.approx(1.0)
    speedups = [p["speedup"] for p in series]
    assert speedups == sorted(speedups)
    # Parallel section scales; end-to-end is Amdahl-bound by init.
    init = DGX2_LIKE.device.memory.init_overhead_s
    work_ratio = (by_devices[1]["makespan_s"] - init) / (
        by_devices[16]["makespan_s"] - init
    )
    assert work_ratio > 10.0
    print("\nDGX-2-like LD scaling: "
          + " ".join(f"{p['devices']}gpu={p['speedup']:.2f}x" for p in series))


@pytest.mark.artifact("extension")
def bench_shared_pcie_contention(benchmark):
    """Transfer-bound FastID on the shared-switch workstation."""
    kwargs = dict(m=32, n=8 * 1024 * 1024, k_bits=1024)

    def both_nodes():
        quad = scaling_series(QUAD_GTX980, Algorithm.FASTID_IDENTITY, **kwargs)
        return quad

    series = benchmark(both_nodes)
    by_devices = {p["devices"]: p for p in series}
    # Four devices behind one PCIe link: the transfer-bound workload
    # cannot approach 4x.
    assert by_devices[4]["speedup"] < 2.5
    print("\nquad-980 FastID scaling (shared PCIe): "
          + " ".join(f"{p['devices']}gpu={p['speedup']:.2f}x" for p in series))


@pytest.mark.artifact("extension")
def bench_collective_memory_holds_larger_db(benchmark):
    """The node's collective memory admits databases no device holds."""

    def fits():
        # 96M profiles x 1 KiB sites: ~12 GiB of database -- beyond any
        # single modeled device, fine across the DGX-2-like node.
        report = estimate_multi_gpu(
            DGX2_LIKE, Algorithm.FASTID_IDENTITY, 32, 96 * 1024 * 1024, 1024
        )
        return report

    report = benchmark(fits)
    db_bytes = 96 * 1024 * 1024 * (1024 // 8)
    assert db_bytes > DGX2_LIKE.device.global_memory_bytes
    assert db_bytes < DGX2_LIKE.total_global_memory_bytes
    assert report.n_devices_used == 16
    assert report.makespan_s < 10.0
