"""Figure 8: FastID end-to-end, 32 queries vs a >20M-profile database.

NDIS-scale database (paper footnote 4), SNP counts 128 to 1024.
Asserts the structural claims: sub-second end-to-end times dominated by
transfer, time growing with SNP count, and the Section VI-E2 memory
behaviour (GTX 980 must tile the database; Titan V holds it whole).
"""

import pytest

from repro.bench.figures import FIG8_DB_ROWS, fig8_series
from repro.bench.report import render_figure_report
from repro.gpu.arch import ALL_GPUS
from repro.model.endtoend import estimate_end_to_end
from repro.core.config import Algorithm

DEVICE_KEYS = [a.name.lower().replace(" ", "_") for a in ALL_GPUS]


@pytest.mark.artifact("fig8")
def bench_fig8_series(benchmark):
    series = benchmark(fig8_series)
    assert [p["snps"] for p in series] == [128, 256, 512, 1024]
    for key in DEVICE_KEYS:
        times = [p[f"{key}_s"] for p in series]
        # Time rises with SNP count (database bytes scale with k) and
        # stays in the sub-second regime the paper shows.
        assert times == sorted(times)
        assert all(0.05 < t < 3.0 for t in times)
    # Section VI-E2: the GTX 980 cannot hold the full database, the
    # Titan V can.
    at_1024 = series[-1]
    assert at_1024["gtx_980_tiles"] > 1
    assert at_1024["titan_v_tiles"] == 1


@pytest.mark.artifact("fig8")
def bench_fig8_transfer_bound(benchmark, gpu):
    """FastID at NDIS scale is transfer-bound: kernel time is minor."""
    est = benchmark(
        estimate_end_to_end, gpu, Algorithm.FASTID_IDENTITY, 32, FIG8_DB_ROWS, 1024
    )
    assert est.kernel_s < 0.25 * (est.h2d_s + est.d2h_s)
    serial = est.init_s + est.h2d_s + est.kernel_s + est.d2h_s
    if est.n_tiles > 1:
        # Multi-tile pipelines hide transfer behind transfer.
        assert est.end_to_end_s < serial
    else:
        # Single tile: nothing to overlap; makespan equals the sum.
        assert est.end_to_end_s == pytest.approx(serial, rel=0.01)


@pytest.mark.artifact("fig8")
def bench_fig8_render(benchmark):
    text = benchmark(render_figure_report, "fig8")
    print("\n" + text)
    assert "FastID" in text
