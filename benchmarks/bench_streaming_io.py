"""Streaming ingest: double-buffered prefetch overlap vs synchronous reads.

The out-of-core path is only worth having if ingest actually overlaps
compute (Beyer & Bientinesi's HDD-to-GPU streaming result).  This bench
writes a packed ``.snpbin`` reference database, streams it through
:class:`repro.core.streaming.StreamingMixture` twice -- once with the
double-buffered prefetch producer, once synchronously -- and
demonstrates:

* **bit-exactness** -- the streamed scores equal
  :func:`repro.core.mixture.mixture_analysis` on the in-memory matrix;
* **overlap** -- in full mode, consumer stall time stays under
  ``STALL_CEILING`` (25%) of producer read time at the default chunk
  size, while the synchronous pass by definition stalls for 100% of it;
* **determinism** -- ``stream.chunks`` / ``stream.bytes_read`` are
  exact for the pinned problem and gated by CI.

Runs two ways:

* under pytest-benchmark, like the other benches::

      PYTHONPATH=src python -m pytest benchmarks/bench_streaming_io.py --benchmark-only

* standalone, for the CI jobs (writes a metrics-report JSON the
  regression gate ingests)::

      PYTHONPATH=src python benchmarks/bench_streaming_io.py --smoke --json streaming.json
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.mixture import mixture_analysis
from repro.core.streaming import StreamingMixture
from repro.io_stream import SnpbinSource, write_snpbin

#: The benchmark problem: a packed reference database streamed against
#: a small fixed mixture set (the paper's 20M-profile shape in miniature).
FULL_PROBLEM = dict(rows=4096, sites=16384, n_mixtures=32, chunk_rows=256)

#: CI smoke problem: a handful of chunks on a cold shared runner.
SMOKE_PROBLEM = dict(rows=512, sites=1024, n_mixtures=4, chunk_rows=128)

#: Full-mode gate: consumer stall under this fraction of read time.
STALL_CEILING = 0.25


def make_inputs(problem, rng=0):
    rng = np.random.default_rng(rng)
    database = rng.integers(
        0, 2, size=(problem["rows"], problem["sites"]), dtype=np.uint8
    )
    mixtures = rng.integers(
        0, 2, size=(problem["n_mixtures"], problem["sites"]), dtype=np.uint8
    )
    return database, mixtures


def stream_once(path, mixtures, chunk_rows, prefetch):
    """One full streamed pass; returns (wall_s, stats, scores)."""
    streamer = StreamingMixture(mixtures)
    with SnpbinSource(path) as source:
        start = time.perf_counter()
        stats = streamer.consume(source, chunk_rows, prefetch=prefetch)
        wall = time.perf_counter() - start
    return wall, stats, streamer.result().scores


def collect_counters(path, mixtures, chunk_rows):
    """Deterministic stream counters for one pass (untimed, fresh tracer)."""
    from repro.observability.regress import DETERMINISTIC_COUNTERS
    from repro.observability.tracer import Tracer, set_tracer

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        stream_once(path, mixtures, chunk_rows, prefetch=True)
    finally:
        set_tracer(previous)
    return {
        name: value
        for name, value in sorted(tracer.counters.snapshot().items())
        if name in DETERMINISTIC_COUNTERS
    }


def run_bench(problem, workdir):
    """Prefetch vs sync over one ``.snpbin``; returns a JSON-ready dict."""
    database, mixtures = make_inputs(problem)
    path = Path(workdir) / "bench-db.snpbin"
    write_snpbin(path, database)
    expected = mixture_analysis(database, mixtures).scores

    chunk_rows = problem["chunk_rows"]
    sync_wall, sync_stats, sync_scores = stream_once(
        path, mixtures, chunk_rows, prefetch=False
    )
    pre_wall, pre_stats, pre_scores = stream_once(
        path, mixtures, chunk_rows, prefetch=True
    )

    return {
        "problem": dict(problem),
        "chunks": pre_stats.chunks,
        "bytes_read": pre_stats.bytes_read,
        "prefetch_wall_s": pre_wall,
        "prefetch_read_s": pre_stats.read_s,
        "prefetch_stall_s": pre_stats.stall_s,
        "stall_fraction": pre_stats.stall_fraction,
        "sync_wall_s": sync_wall,
        "sync_stall_fraction": sync_stats.stall_fraction,
        "overlap_speedup": sync_wall / pre_wall if pre_wall else 1.0,
        "bit_exact": bool(
            np.array_equal(pre_scores, expected)
            and np.array_equal(sync_scores, expected)
        ),
    }


def render(result):
    p = result["problem"]
    return "\n".join([
        f"streaming ingest  ({p['rows']} rows x {p['sites']} sites, "
        f"chunk_rows={p['chunk_rows']}, {result['chunks']} chunks, "
        f"{result['bytes_read']} packed bytes)",
        f"  sync pass           {result['sync_wall_s']:>11.4f}s  "
        f"(stall == read by definition)",
        f"  prefetch pass       {result['prefetch_wall_s']:>11.4f}s  "
        f"({result['overlap_speedup']:.2f}x)",
        f"  producer read       {result['prefetch_read_s']:>11.4f}s",
        f"  consumer stall      {result['prefetch_stall_s']:>11.4f}s  "
        f"({result['stall_fraction']:.1%} of read, ceiling "
        f"{STALL_CEILING:.0%})",
        f"  bit-exact           {'yes' if result['bit_exact'] else 'NO':>12}",
    ])


# -- pytest-benchmark entries ---------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.artifact("streaming-io")
    def bench_streaming_prefetch(benchmark, tmp_path):
        """Time the full prefetch-vs-sync comparison; assert the gates."""
        result = benchmark.pedantic(
            run_bench, args=(FULL_PROBLEM, tmp_path), rounds=1, iterations=1
        )
        print("\n" + render(result))
        assert result["bit_exact"]
        assert result["stall_fraction"] < STALL_CEILING

    @pytest.mark.artifact("streaming-io")
    def bench_streaming_pass(benchmark, tmp_path):
        """Time one prefetched streamed pass over the full problem."""
        database, mixtures = make_inputs(FULL_PROBLEM)
        path = tmp_path / "db.snpbin"
        write_snpbin(path, database)
        _, stats, _ = benchmark(
            stream_once, path, mixtures, FULL_PROBLEM["chunk_rows"], True
        )
        assert stats.chunks == -(-FULL_PROBLEM["rows"] // FULL_PROBLEM["chunk_rows"])


# -- standalone CLI (CI jobs) ----------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem, no stall ceiling (CI smoke on shared runners)",
    )
    parser.add_argument("--json", help="write the result dict to this path")
    args = parser.parse_args(argv)

    problem = SMOKE_PROBLEM if args.smoke else FULL_PROBLEM
    with tempfile.TemporaryDirectory(prefix="repro-bench-streaming-") as tmp:
        result = run_bench(problem, tmp)
        result["mode"] = "smoke" if args.smoke else "full"
        # Deterministic counters for the regression gate (untimed pass);
        # the span entry gives the gate one coarse timing to watch.
        result["counters"] = collect_counters(
            Path(tmp) / "bench-db.snpbin",
            make_inputs(problem)[1],
            problem["chunk_rows"],
        )
    result["spans"] = [
        {"name": "streaming.prefetch_pass", "total_s": result["prefetch_wall_s"]}
    ]
    print(render(result))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
        print(f"\nwrote {args.json}")

    if not result["bit_exact"]:
        print(
            "FAIL: streamed scores differ from the in-memory path",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and result["stall_fraction"] >= STALL_CEILING:
        print(
            f"FAIL: prefetch stall {result['stall_fraction']:.1%} of read "
            f"time is above the {STALL_CEILING:.0%} ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
