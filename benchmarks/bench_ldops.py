"""Streaming LD pruning & clumping: bit-exactness and window residency.

The :mod:`repro.core.ldops` operators consume block-rows of the Gram
output and keep only a trailing window of kept-site state, so they
must produce *bit-identical* decisions no matter how the site stream
is chunked.  This bench builds a correlated site-major panel and
demonstrates, for both operators:

* **chunk invariance** -- the chunked streaming pass (small
  ``chunk_rows``) equals a single-chunk in-memory pass, kept sets,
  blockers and clump assignments alike;
* **reference agreement** -- both equal a brute-force dense reference
  evaluated over the full ``sites x sites`` count matrix with the same
  exact-integer r^2 predicate;
* **bounded residency** -- ``ldops.window_peak_sites`` never exceeds
  the window, the O(window^2) resident-state claim CI gates exactly;
* **determinism** -- the ``ldops.*`` counters are exact functions of
  the pinned problem and are regression-gated.

Runs two ways:

* under pytest-benchmark, like the other benches::

      PYTHONPATH=src python -m pytest benchmarks/bench_ldops.py --benchmark-only

* standalone, for the CI jobs (writes a JSON the regression gate
  ingests)::

      PYTHONPATH=src python benchmarks/bench_ldops.py --smoke --json ldops.json
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.ldops import ld_clump, ld_prune, r2_exceeds

#: Full problem: a chromosome-arm-sized scan (window in sites).
FULL_PROBLEM = dict(
    n_sites=1536, n_obs=256, window=64, prune_r2=0.2, clump_r2=0.5,
    chunk_rows=192,
)

#: CI smoke problem: a few chunks on a cold shared runner.
SMOKE_PROBLEM = dict(
    n_sites=160, n_obs=64, window=24, prune_r2=0.2, clump_r2=0.5,
    chunk_rows=48,
)


def make_panel(problem, seed=0):
    """Correlated site-major panel plus per-site clump scores."""
    rng = np.random.default_rng(seed)
    sites = rng.integers(
        0, 2, size=(problem["n_sites"], problem["n_obs"]), dtype=np.uint8
    )
    # Every third site is a noisy copy of its predecessor so the window
    # actually prunes/absorbs instead of scanning independent noise.
    for i in range(1, problem["n_sites"]):
        if i % 3 == 0:
            sites[i] = sites[i - 1]
            flips = rng.integers(
                0, problem["n_obs"], size=max(1, problem["n_obs"] // 16)
            )
            sites[i, flips] ^= 1
    scores = rng.random(problem["n_sites"])
    return sites, scores


def dense_prune_reference(sites, window, r2):
    """Brute-force greedy pruning over the dense count matrix."""
    wide = sites.astype(np.int64)
    joint = wide @ wide.T
    counts = sites.sum(axis=1).astype(int)
    n_obs = int(sites.shape[1])
    kept = []
    for i in range(sites.shape[0]):
        blocked = any(
            i - j <= window - 1
            and r2_exceeds(
                int(joint[i, j]), counts[j], counts[i], n_obs, r2, strict=True
            )
            for j in kept
        )
        if not blocked:
            kept.append(i)
    return kept


def dense_clump_reference(sites, scores, window, r2):
    """Brute-force rank-order greedy clumping over the dense counts."""
    wide = sites.astype(np.int64)
    joint = wide @ wide.T
    counts = sites.sum(axis=1).astype(int)
    n_obs = int(sites.shape[1])
    n = sites.shape[0]
    rank = lambda s: (-float(scores[s]), s)  # noqa: E731
    assignment = np.full(n, -1, dtype=np.int64)
    index_sites = []
    for s in sorted(range(n), key=rank):
        absorbers = [
            j
            for j in index_sites
            if abs(s - j) <= window - 1
            and r2_exceeds(
                int(joint[s, j]), counts[j], counts[s], n_obs, r2,
                strict=False,
            )
        ]
        if absorbers:
            assignment[s] = min(absorbers, key=rank)
        else:
            assignment[s] = s
            index_sites.append(s)
    return assignment


def collect_counters(problem, sites, scores):
    """Deterministic ldops/stream counters for one chunked prune+clump
    pass (untimed, fresh tracer; the two operators' counters sum)."""
    from repro.observability.regress import DETERMINISTIC_COUNTERS
    from repro.observability.tracer import Tracer, set_tracer

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        ld_prune(
            sites, problem["window"], problem["prune_r2"],
            chunk_rows=problem["chunk_rows"], workers=1,
        )
        ld_clump(
            sites, scores, problem["window"], problem["clump_r2"],
            chunk_rows=problem["chunk_rows"], workers=1,
        )
    finally:
        set_tracer(previous)
    return {
        name: value
        for name, value in sorted(tracer.counters.snapshot().items())
        if name in DETERMINISTIC_COUNTERS
    }


def run_bench(problem):
    """Chunked vs in-memory vs dense reference; returns a JSON-ready dict."""
    sites, scores = make_panel(problem)
    window = problem["window"]
    in_memory_rows = problem["n_sites"] + 1  # single chunk

    start = time.perf_counter()
    prune_chunked = ld_prune(
        sites, window, problem["prune_r2"],
        chunk_rows=problem["chunk_rows"], workers=1,
    )
    prune_wall = time.perf_counter() - start
    prune_whole = ld_prune(
        sites, window, problem["prune_r2"],
        chunk_rows=in_memory_rows, workers=1,
    )

    start = time.perf_counter()
    clump_chunked = ld_clump(
        sites, scores, window, problem["clump_r2"],
        chunk_rows=problem["chunk_rows"], workers=1,
    )
    clump_wall = time.perf_counter() - start
    clump_whole = ld_clump(
        sites, scores, window, problem["clump_r2"],
        chunk_rows=in_memory_rows, workers=1,
    )

    chunked_matches_inmemory = (
        np.array_equal(prune_chunked.kept, prune_whole.kept)
        and np.array_equal(prune_chunked.pruned, prune_whole.pruned)
        and np.array_equal(prune_chunked.blocker, prune_whole.blocker)
        and np.array_equal(clump_chunked.assignment, clump_whole.assignment)
    )
    dense_kept = dense_prune_reference(sites, window, problem["prune_r2"])
    dense_assignment = dense_clump_reference(
        sites, scores, window, problem["clump_r2"]
    )
    matches_dense_reference = (
        prune_chunked.kept.tolist() == dense_kept
        and clump_chunked.assignment.tolist() == dense_assignment.tolist()
    )
    peak = max(
        prune_chunked.peak_window_sites, clump_chunked.peak_window_sites
    )

    return {
        "problem": dict(problem),
        "ldops": {
            "prune_kept": int(prune_chunked.kept.size),
            "prune_pruned": int(prune_chunked.pruned.size),
            "clump_count": len(clump_chunked.clumps),
            "clump_absorbed": int(
                problem["n_sites"] - len(clump_chunked.clumps)
            ),
            "peak_window_sites": int(peak),
            "window": int(window),
            "chunked_matches_inmemory": bool(chunked_matches_inmemory),
            "matches_dense_reference": bool(matches_dense_reference),
            "window_bound_ok": bool(peak <= window),
        },
        "prune_wall_s": prune_wall,
        "clump_wall_s": clump_wall,
        "prune_pairs_tested": prune_chunked.pairs_tested,
        "clump_pairs_tested": clump_chunked.pairs_tested,
        "simulated_s": (
            prune_chunked.simulated_seconds + clump_chunked.simulated_seconds
        ),
    }


def render(result):
    p = result["problem"]
    ld = result["ldops"]
    return "\n".join([
        f"ld prune/clump  ({p['n_sites']} sites x {p['n_obs']} obs, "
        f"window={p['window']}, chunk_rows={p['chunk_rows']})",
        f"  prune r2>{p['prune_r2']}      kept {ld['prune_kept']}, "
        f"pruned {ld['prune_pruned']}  "
        f"({result['prune_pairs_tested']} pairs, "
        f"{result['prune_wall_s']:.4f}s)",
        f"  clump r2>={p['clump_r2']}     {ld['clump_count']} clumps, "
        f"{ld['clump_absorbed']} absorbed  "
        f"({result['clump_pairs_tested']} pairs, "
        f"{result['clump_wall_s']:.4f}s)",
        f"  window residency    {ld['peak_window_sites']} / {ld['window']} "
        f"sites  ({'ok' if ld['window_bound_ok'] else 'EXCEEDED'})",
        f"  chunked == whole    "
        f"{'yes' if ld['chunked_matches_inmemory'] else 'NO'}",
        f"  matches dense ref   "
        f"{'yes' if ld['matches_dense_reference'] else 'NO'}",
    ])


# -- pytest-benchmark entries ---------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.artifact("ldops")
    def bench_ldops_equivalence(benchmark):
        """Time the full equivalence comparison; assert every gate."""
        result = benchmark.pedantic(
            run_bench, args=(FULL_PROBLEM,), rounds=1, iterations=1
        )
        print("\n" + render(result))
        assert result["ldops"]["chunked_matches_inmemory"]
        assert result["ldops"]["matches_dense_reference"]
        assert result["ldops"]["window_bound_ok"]

    @pytest.mark.artifact("ldops")
    def bench_ldops_prune_pass(benchmark):
        """Time one chunked streaming prune over the full problem."""
        sites, _ = make_panel(FULL_PROBLEM)
        result = benchmark(
            ld_prune, sites, FULL_PROBLEM["window"],
            FULL_PROBLEM["prune_r2"],
            chunk_rows=FULL_PROBLEM["chunk_rows"], workers=1,
        )
        assert result.peak_window_sites <= FULL_PROBLEM["window"]


# -- standalone CLI (CI jobs) ----------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem for CI smoke on shared runners",
    )
    parser.add_argument("--json", help="write the result dict to this path")
    args = parser.parse_args(argv)

    problem = SMOKE_PROBLEM if args.smoke else FULL_PROBLEM
    result = run_bench(problem)
    result["mode"] = "smoke" if args.smoke else "full"
    sites, scores = make_panel(problem)
    result["counters"] = collect_counters(problem, sites, scores)
    result["spans"] = [
        {
            "name": "ldops.prune_pass",
            "total_s": result["prune_wall_s"],
        },
        {
            "name": "ldops.clump_pass",
            "total_s": result["clump_wall_s"],
        },
    ]
    print(render(result))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
        print(f"\nwrote {args.json}")

    failed = [
        gate
        for gate in (
            "chunked_matches_inmemory",
            "matches_dense_reference",
            "window_bound_ok",
        )
        if not result["ldops"][gate]
    ]
    if failed:
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
