"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so the package
can be installed in environments without the `wheel` package / network
access (``python setup.py develop`` or ``pip install --no-build-isolation``
with legacy fallbacks).
"""

from setuptools import setup

setup()
