"""Monotonic request deadlines for the serving stack.

A :class:`Deadline` is an absolute point on a monotonic clock; every
layer of the serving path (protocol decode, batcher admission, batch
cut, per-segment fold) can cheaply ask ``remaining()`` or ``check()``
without re-deriving the budget.  The clock is injectable so tests can
step time deterministically instead of sleeping.

Deadlines travel over the JSON-lines protocol as ``deadline_ms`` --
*relative* budgets, converted to an absolute monotonic instant the
moment the server decodes the request, so client and server clocks
never need to agree.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExceededError

__all__ = ["Deadline", "DeadlineExceededError"]


class Deadline:
    """An absolute expiry instant on a monotonic clock.

    Use :meth:`after` to create one from a relative budget::

        deadline = Deadline.after(0.250)       # 250 ms from now
        ...
        deadline.check("pack")                 # raises when expired
        budget = deadline.remaining()          # seconds left (>= 0)
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Deadline ``seconds`` from now on ``clock``."""
        return cls(clock() + float(seconds), clock=clock)

    def remaining(self) -> float:
        """Seconds until expiry, clamped at 0."""
        return max(0.0, self.expires_at - self._clock())

    def overrun(self) -> float:
        """Seconds *past* expiry (0 while the deadline still holds)."""
        return max(0.0, self._clock() - self.expires_at)

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, label: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when expired."""
        over = self._clock() - self.expires_at
        if over >= 0.0:
            raise DeadlineExceededError(
                f"deadline exceeded at {label} "
                f"(overran by {over * 1e3:.1f} ms)",
                overrun_s=over,
            )

    def remaining_ms(self) -> int:
        """Whole milliseconds until expiry (floor, clamped at 0)."""
        return int(self.remaining() * 1e3)

    def __repr__(self) -> str:
        return (
            f"Deadline(expires_at={self.expires_at:.6f}, "
            f"remaining={self.remaining():.6f}s)"
        )
