"""Fault injection and fault-tolerant execution (the unhappy path).

The paper's target workloads run for hours against database-scale
inputs (FastID identity search, PLINK-scale LD scans); a transient
device fault or one corrupted partial result must not invalidate a
whole run.  This package makes the unhappy path a first-class,
*testable* subsystem:

* :mod:`repro.resilience.faults` -- a seeded, deterministic
  :class:`FaultPlan` evaluated by a process-global
  :class:`FaultInjector` at instrumented hook points in the executor,
  device stack, parallel engine and multi-GPU executor (null-injector
  default: one attribute check on the hot path).
* :mod:`repro.resilience.retry` -- :class:`RetryPolicy` (bounded
  exponential backoff, seeded jitter, injectable clock/sleep) and the
  :func:`classify` error classifier mapping the
  :class:`~repro.errors.ReproError` hierarchy onto
  retryable / degradable / fatal dispositions.
* :mod:`repro.resilience.runtime` -- the scoped
  :class:`ResilienceContext` (:func:`resilient`, :func:`get_resilience`)
  carrying the injector, policy and spot-verification rate.
* :mod:`repro.resilience.report` -- :class:`ResilienceReport`, the
  per-run accounting attached to ``ParallelReport`` / ``RunReport`` /
  ``MultiGPUReport``.
* :mod:`repro.resilience.chaos` -- the chaos harness: runs the three
  applications under randomized seeded fault schedules and asserts the
  result is bit-exact against the fault-free reference (CI's
  ``chaos-smoke`` job).

Degradation ladder (see ``docs/RESILIENCE.md``): retry in place with
backoff -> re-queue the shard -> quarantine the shard onto the serial
reference path (bit-exact) -> drop a lost device and re-partition ->
raise :class:`~repro.errors.ShardExecutionError`.  Corrupt results are
never returned silently; the optional spot-verification guard
re-checks sampled output tiles against the serial popcount reference.
"""

from repro.resilience.deadline import Deadline, DeadlineExceededError
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
    NULL_INJECTOR,
    NullInjector,
)
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import (
    DEFAULT_POLICY,
    Disposition,
    RetryPolicy,
    call_with_retry,
    classify,
)
from repro.resilience.runtime import (
    DEFAULT_CONTEXT,
    ResilienceContext,
    get_resilience,
    resilient,
    set_resilience,
)

__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "NULL_INJECTOR",
    "NullInjector",
    "ResilienceReport",
    "DEFAULT_POLICY",
    "Disposition",
    "RetryPolicy",
    "call_with_retry",
    "classify",
    "DEFAULT_CONTEXT",
    "ResilienceContext",
    "get_resilience",
    "resilient",
    "set_resilience",
]
