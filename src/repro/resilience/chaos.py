"""Chaos harness: randomized fault schedules, bit-exact acceptance.

The resilience layer's end-to-end test rig (and CI's ``chaos-smoke``
job): run each application (LD, identity search, mixture analysis)
fault-free to get a reference table, then re-run it under a seeded
:meth:`~repro.resilience.faults.FaultPlan.random` schedule of injected
transient faults with retries, quarantine and full spot verification
engaged, and assert two things:

1. **Bit-exactness** -- the faulted run's table equals the fault-free
   reference exactly.  Transient faults must be absorbed, never
   corrupt the comparison table.
2. **Exact counter gates** -- every scheduled fault fired, and the
   retry / verification counters match what the schedule implies:
   ``retries == #shard + #slow + #kernel`` firings,
   ``verify_mismatches == #bitflip`` firings, ``quarantined == 0``
   (the retry budget always exceeds the scheduled burst lengths).

Datasets are sized so the engine's parallel crossover is exceeded
(the sharded path is what the shard-addressed faults target) and the
shard strategy is pinned to ``"gemm"`` so the persisted host tuner
cannot make runs diverge between hosts.

Usage::

    python -m repro.resilience.chaos --apps ld,identity,mixture \
        --seeds 1,2,3
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.errors import ConfigurationError
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import resilient

__all__ = ["ChaosResult", "run_chaos_case", "run_chaos", "main"]

#: Applications the harness drives (framework algorithm values).
CHAOS_APPS = ("ld", "identity", "mixture")

#: App aliases -> framework Algorithm values.
_APP_ALGORITHMS = {
    "ld": "ld",
    "identity": "fastid_identity",
    "mixture": "fastid_mixture",
}

#: Default problem size: 256 x 256 rows over 2048 sites is 2^22
#: word-ops on a 32-bit-word device -- above the engine's parallel
#: crossover (2^21), so shard-addressed faults have shards to hit.
DEFAULT_ROWS = 256
DEFAULT_SITES = 2048

#: Dataset seed per app (fixed: the *fault schedule* is what varies).
_DATA_SEEDS = {"ld": 101, "identity": 202, "mixture": 303}

#: Retry budget: strictly above the longest per-shard firing sequence
#: FaultPlan.random can schedule (shard count <= 2 plus slow count <= 2
#: on one target), so transient faults always recover without
#: quarantine and the expected counters are exact.
_CHAOS_ATTEMPTS = 5


@dataclass
class ChaosResult:
    """Outcome of one (app, seed) chaos case."""

    app: str
    seed: int
    plan_spec: str
    n_scheduled: int
    bit_exact: bool
    expected: dict[str, int] = field(default_factory=dict)
    observed: dict[str, int] = field(default_factory=dict)

    @property
    def counters_match(self) -> bool:
        return self.expected == self.observed

    @property
    def passed(self) -> bool:
        return self.bit_exact and self.counters_match

    def summary(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] app={self.app} seed={self.seed} "
            f"plan={self.plan_spec!r} scheduled={self.n_scheduled}"
        )
        if not self.bit_exact:
            line += " BIT-MISMATCH"
        if not self.counters_match:
            line += f" expected={self.expected} observed={self.observed}"
        return line


def _chaos_dataset(
    app: str, rows: int, sites: int
) -> tuple[np.ndarray, np.ndarray | None]:
    """Deterministic binary operands for one application."""
    rng = np.random.default_rng(_DATA_SEEDS[app])
    a = rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)
    if app == "ld":
        return a, None  # self-comparison (Gram mode)
    b = rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)
    return a, b


def run_chaos_case(
    app: str,
    seed: int,
    device: str = "GTX 980",
    rows: int = DEFAULT_ROWS,
    sites: int = DEFAULT_SITES,
    workers: int = 4,
) -> ChaosResult:
    """Run one application under one seeded fault schedule.

    The fault-free reference run and the faulted run share the
    framework instance, dataset, worker count and pinned ``"gemm"``
    shard strategy; only the resilience context differs.
    """
    if app not in CHAOS_APPS:
        raise ConfigurationError(
            f"run_chaos_case: unknown app {app!r} "
            f"(valid: {', '.join(CHAOS_APPS)})"
        )
    a_bits, b_bits = _chaos_dataset(app, rows, sites)
    framework = SNPComparisonFramework(
        device, Algorithm(_APP_ALGORITHMS[app]), workers=workers, strategy="gemm"
    )
    reference, _ = framework.run(a_bits, b_bits)

    plan = FaultPlan.random(seed, max_shard_target=1)
    policy = RetryPolicy(
        max_attempts=_CHAOS_ATTEMPTS, base_delay_s=0.0, jitter=0.0, seed=seed
    )
    with resilient(plan=plan, policy=policy, verify_sample=1.0) as ctx:
        table, report = framework.run(a_bits, b_bits)

    res = report.resilience
    assert res is not None  # the context is active by construction
    expected = {
        "faults_injected": plan.n_scheduled,
        "retries": (
            plan.count("shard") + plan.count("slow") + plan.count("kernel")
        ),
        "quarantined": 0,
        "verify_mismatches": plan.count("bitflip"),
        "fired_shard": plan.count("shard"),
        "fired_slow": plan.count("slow"),
        "fired_kernel": plan.count("kernel"),
        "fired_bitflip": plan.count("bitflip"),
    }
    observed = {
        "faults_injected": res.faults_injected,
        "retries": res.retries,
        "quarantined": res.quarantined,
        "verify_mismatches": res.verify_mismatches,
        "fired_shard": ctx.injector.fired_count("shard"),
        "fired_slow": ctx.injector.fired_count("slow"),
        "fired_kernel": ctx.injector.fired_count("kernel"),
        "fired_bitflip": ctx.injector.fired_count("bitflip"),
    }
    return ChaosResult(
        app=app,
        seed=seed,
        plan_spec=plan.to_spec(),
        n_scheduled=plan.n_scheduled,
        bit_exact=bool(np.array_equal(table, reference)),
        expected=expected,
        observed=observed,
    )


def run_chaos(
    apps: tuple[str, ...] = CHAOS_APPS,
    seeds: tuple[int, ...] = (1, 2, 3),
    device: str = "GTX 980",
    rows: int = DEFAULT_ROWS,
    sites: int = DEFAULT_SITES,
    workers: int = 4,
) -> list[ChaosResult]:
    """The full chaos matrix: every app under every seeded schedule."""
    return [
        run_chaos_case(
            app, seed, device=device, rows=rows, sites=sites, workers=workers
        )
        for app in apps
        for seed in seeds
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos harness: seeded fault schedules, bit-exact gates"
    )
    parser.add_argument(
        "--apps",
        default=",".join(CHAOS_APPS),
        help="comma-separated applications (default: all)",
    )
    parser.add_argument(
        "--seeds",
        default="1,2,3",
        help="comma-separated schedule seeds (default: 1,2,3)",
    )
    parser.add_argument("--device", default="GTX 980")
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--sites", type=int, default=DEFAULT_SITES)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    apps = tuple(t.strip() for t in args.apps.split(",") if t.strip())
    seeds = tuple(int(t) for t in args.seeds.split(",") if t.strip())
    results = run_chaos(
        apps=apps,
        seeds=seeds,
        device=args.device,
        rows=args.rows,
        sites=args.sites,
        workers=args.workers,
    )
    for result in results:
        print(result.summary())
    n_failed = sum(1 for r in results if not r.passed)
    print(
        f"chaos: {len(results) - n_failed}/{len(results)} cases passed "
        f"({sum(r.n_scheduled for r in results)} faults scheduled)"
    )
    return 1 if n_failed else 0


if __name__ == "__main__":
    sys.exit(main())
