"""Retry policy with deterministic backoff, plus the error classifier.

The policy is the host-side analogue of what a production driver does
when a transient device fault interrupts a long batch run: wait an
exponentially growing interval (with seeded jitter, so concurrent
retriers do not stampede in lockstep yet every run is reproducible)
and try again, up to a bounded attempt budget.  Both the clock and the
sleep function are injectable so tests can assert the exact backoff
schedule without waiting on wall time.

:func:`classify` maps the :class:`~repro.errors.ReproError` hierarchy
onto three dispositions:

* ``RETRY`` -- transient by construction: injected kernel-launch,
  allocation, shard and slow-shard faults
  (:class:`~repro.errors.FaultInjectedError`), plus
  :class:`~repro.errors.AllocationError` (memory pressure a real
  driver may see clear between attempts).
* ``DEGRADE`` -- the resource is gone but the work is not: a lost
  device (``kind="device"``); the caller should drop the resource and
  re-partition, not retry against it.
* ``FATAL`` -- deterministic misuse or data problems
  (:class:`~repro.errors.ConfigurationError`,
  :class:`~repro.errors.PackingError`,
  :class:`~repro.errors.DatasetError`,
  :class:`~repro.errors.ModelError`, real
  :class:`~repro.errors.KernelLaunchError`); retrying cannot help.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import (
    AllocationError,
    ConfigurationError,
    DatasetError,
    DeviceError,
    FaultInjectedError,
    ModelError,
    PackingError,
    ReproError,
)

__all__ = [
    "Disposition",
    "classify",
    "RetryPolicy",
    "DEFAULT_POLICY",
    "call_with_retry",
]

T = TypeVar("T")


class Disposition(enum.Enum):
    """What the resilience layer should do about one error."""

    RETRY = "retry"
    DEGRADE = "degrade"
    FATAL = "fatal"


#: Injected fault kinds that are transient (safe to retry in place).
_TRANSIENT_KINDS = frozenset({"kernel", "alloc", "shard", "slow"})


def classify(exc: BaseException) -> Disposition:
    """Map one exception to its retry disposition (see module docstring)."""
    if isinstance(exc, FaultInjectedError):
        if exc.kind == "device":
            return Disposition.DEGRADE
        if exc.kind in _TRANSIENT_KINDS:
            return Disposition.RETRY
        return Disposition.FATAL
    if isinstance(exc, AllocationError):
        return Disposition.RETRY
    if isinstance(
        exc, (ConfigurationError, PackingError, DatasetError, ModelError)
    ):
        return Disposition.FATAL
    if isinstance(exc, (DeviceError, ReproError)):
        return Disposition.FATAL
    return Disposition.FATAL


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included).  ``1`` disables retries
        -- the process default, so the hot path is unchanged unless a
        caller opts in (CLI ``--retries``, chaos harness).
    base_delay_s / multiplier / max_delay_s:
        Backoff ``min(max_delay_s, base_delay_s * multiplier**n)``
        before the ``n``-th retry (n = 0 for the first retry).
    jitter:
        Fraction of the backoff added as seeded uniform noise in
        ``[0, jitter)`` -- deterministic per policy instance.
    seed:
        Seed of the jitter stream.
    sleep / clock:
        Injectable effects for tests; production uses ``time.sleep``
        and ``time.monotonic``.
    quarantine:
        Whether shard-level failures that exhaust ``max_attempts`` may
        fall back to the serial reference recompute.  ``False`` turns
        budget exhaustion into :class:`~repro.errors.ShardExecutionError`.
    """

    max_attempts: int = 1
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    jitter: float = 0.5
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    quarantine: bool = True
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError(
                f"RetryPolicy: max_attempts must be positive, "
                f"got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError(
                "RetryPolicy: delays must be non-negative"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"RetryPolicy: multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"RetryPolicy: jitter must be in [0, 1], got {self.jitter}"
            )
        self._rng = random.Random(self.seed)

    @property
    def retries_allowed(self) -> int:
        """Retries after the first attempt."""
        return self.max_attempts - 1

    def backoff_delay(self, retry_index: int) -> float:
        """Seconds to wait before retry ``retry_index`` (0-based).

        Deterministic for a given policy instance: the jitter stream
        is seeded and consumed one draw per call.
        """
        base = min(
            self.max_delay_s, self.base_delay_s * self.multiplier**retry_index
        )
        return base * (1.0 + self.jitter * self._rng.random())

    def wait(self, retry_index: int) -> float:
        """Sleep the backoff for retry ``retry_index``; returns the delay."""
        delay = self.backoff_delay(retry_index)
        if delay > 0:
            self.sleep(delay)
        return delay


#: The inactive default: one attempt, no quarantine pressure, no cost.
DEFAULT_POLICY = RetryPolicy(max_attempts=1)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run ``fn``, retrying RETRY-classified errors under ``policy``.

    ``on_retry(retry_index, exc)`` is invoked before each backoff wait
    (counter hooks).  FATAL and DEGRADE errors propagate unchanged, as
    does the final error once the attempt budget is exhausted.
    """
    retry_index = 0
    while True:
        try:
            return fn()
        except ReproError as exc:
            if (
                classify(exc) is not Disposition.RETRY
                or retry_index >= policy.retries_allowed
            ):
                raise
            if on_retry is not None:
                on_retry(retry_index, exc)
            policy.wait(retry_index)
            retry_index += 1
