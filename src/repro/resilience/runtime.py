"""Process-global resilience context (injector + policy + verification).

Mirrors the tracer's global-with-null-default pattern
(:mod:`repro.observability.tracer`): instrumented layers fetch the
active :class:`ResilienceContext` with :func:`get_resilience`; the
default context carries the :data:`~repro.resilience.faults.NULL_INJECTOR`
and a one-attempt :class:`~repro.resilience.retry.RetryPolicy`, so
every hook costs one attribute check when resilience is not engaged.

:func:`resilient` is the scoped entry point the CLI and the chaos
harness use::

    with resilient(plan=FaultPlan.from_spec("shard@0:1"),
                   policy=RetryPolicy(max_attempts=3),
                   verify_sample=1.0):
        framework.run(...)
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import ConfigurationError
from repro.resilience.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    NullInjector,
)
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy

__all__ = [
    "ResilienceContext",
    "DEFAULT_CONTEXT",
    "get_resilience",
    "set_resilience",
    "resilient",
]

AnyInjector = Union[FaultInjector, NullInjector]


@dataclass(frozen=True)
class ResilienceContext:
    """Everything the instrumented layers need for one resilient run.

    Attributes
    ----------
    injector:
        The fault injector hooks consult (null by default).
    policy:
        Retry/backoff policy; ``max_attempts=1`` disables retries.
    verify_sample:
        Fraction of output tiles the spot-verification guard re-checks
        against the serial popcount reference (0 disables, 1 checks
        every tile).  Sampling is seeded and shard-addressed, so the
        same shards are verified on every run.
    verify_seed:
        Seed of the verification sampling stream.
    """

    injector: AnyInjector = NULL_INJECTOR
    policy: RetryPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    verify_sample: float = 0.0
    verify_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.verify_sample <= 1.0:
            raise ConfigurationError(
                f"ResilienceContext: verify_sample must be in [0, 1], "
                f"got {self.verify_sample}"
            )

    @property
    def active(self) -> bool:
        """Whether any resilience feature is engaged."""
        return (
            self.injector.enabled
            or self.policy.max_attempts > 1
            or self.verify_sample > 0.0
        )

    def should_verify(self, shard_id: int) -> bool:
        """Deterministic spot-verification sampling for one shard."""
        if self.verify_sample <= 0.0:
            return False
        if self.verify_sample >= 1.0:
            return True
        draw = random.Random((self.verify_seed << 16) ^ (shard_id + 1)).random()
        return draw < self.verify_sample


#: The inactive process default.
DEFAULT_CONTEXT = ResilienceContext()

_active: ResilienceContext = DEFAULT_CONTEXT
_active_lock = threading.Lock()


def get_resilience() -> ResilienceContext:
    """The process-global resilience context hooks consult."""
    return _active


def set_resilience(context: ResilienceContext | None) -> ResilienceContext:
    """Install ``context`` (``None`` = default); returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = context if context is not None else DEFAULT_CONTEXT
    return previous


@contextlib.contextmanager
def resilient(
    plan: FaultPlan | str | None = None,
    policy: RetryPolicy | None = None,
    verify_sample: float = 0.0,
    verify_seed: int = 0,
) -> Iterator[ResilienceContext]:
    """Scoped resilience: install a context, restore the previous on exit.

    ``plan`` may be a :class:`FaultPlan`, a spec string, or ``None``
    (no injection); ``policy=None`` keeps the inactive one-attempt
    default.
    """
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    injector: AnyInjector = (
        FaultInjector(plan) if plan is not None else NULL_INJECTOR
    )
    context = ResilienceContext(
        injector=injector,
        policy=policy if policy is not None else DEFAULT_POLICY,
        verify_sample=verify_sample,
        verify_seed=verify_seed,
    )
    previous = set_resilience(context)
    try:
        yield context
    finally:
        set_resilience(previous)
