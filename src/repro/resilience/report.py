"""ResilienceReport: what the fault-tolerance layer did during one run.

The value-object counterpart of
:class:`~repro.observability.report.MetricsReport`: results objects
(:class:`repro.parallel.engine.ParallelReport`,
:class:`repro.core.profiles.RunReport`,
:class:`repro.multigpu.executor.MultiGPUReport`) carry one so callers
can see -- without a live tracer -- how many faults fired, what was
retried, quarantined, verified, or dropped while their result was
produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.resilience.faults import FiredFault

__all__ = ["ResilienceReport"]


@dataclass
class ResilienceReport:
    """Aggregate resilience accounting for one scoped stretch of work."""

    faults_injected: int = 0
    retries: int = 0
    quarantined: int = 0
    tiles_verified: int = 0
    verify_mismatches: int = 0
    devices_dropped: int = 0
    workers_lost: int = 0
    events: tuple[FiredFault, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        """True when nothing unusual happened (the production norm)."""
        return (
            self.faults_injected == 0
            and self.retries == 0
            and self.quarantined == 0
            and self.verify_mismatches == 0
            and self.devices_dropped == 0
            and self.workers_lost == 0
        )

    def merged(self, other: "ResilienceReport") -> "ResilienceReport":
        """Element-wise sum (aggregating sub-run reports)."""
        return ResilienceReport(
            faults_injected=self.faults_injected + other.faults_injected,
            retries=self.retries + other.retries,
            quarantined=self.quarantined + other.quarantined,
            tiles_verified=self.tiles_verified + other.tiles_verified,
            verify_mismatches=self.verify_mismatches + other.verify_mismatches,
            devices_dropped=self.devices_dropped + other.devices_dropped,
            workers_lost=self.workers_lost + other.workers_lost,
            events=self.events + other.events,
        )

    @classmethod
    def combine(cls, reports: Iterable["ResilienceReport"]) -> "ResilienceReport":
        """Sum many reports (skipping ``None`` entries is the caller's job)."""
        total = cls()
        for report in reports:
            total = total.merged(report)
        return total

    def summary_lines(self) -> list[str]:
        """Human-readable block (CLI output when faults were injected)."""
        lines = [
            f"faults injected   : {self.faults_injected}",
            f"shard retries     : {self.retries}",
            f"shards quarantined: {self.quarantined}",
            f"tiles verified    : {self.tiles_verified}",
            f"verify mismatches : {self.verify_mismatches}",
            f"devices dropped   : {self.devices_dropped}",
            f"workers lost      : {self.workers_lost}",
        ]
        if self.events:
            fired = ", ".join(
                f"{e.kind}@{e.target}#{e.attempt}" for e in self.events
            )
            lines.append(f"fired             : {fired}")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
