"""Deterministic fault injection for the simulated device stack.

A :class:`FaultPlan` is a *schedule*: a seeded, fully deterministic
description of which simulated faults fire at which instrumented hook
points.  The instrumented layers (:mod:`repro.gpu.executor`,
:mod:`repro.gpu.device`, :mod:`repro.parallel.engine`,
:mod:`repro.multigpu.executor`) consult the process-global injector at
their hook *sites*; with the default :data:`NULL_INJECTOR` installed
every hook is a no-op attribute check plus an empty call -- the same
zero-overhead pattern as the null tracer.

Fault kinds and their addressing:

``kernel`` / ``alloc``
    Ordinal-indexed: every check of that kind consumes one invocation
    ordinal (kernel launches and buffer allocations are enqueued
    sequentially, so ordinals are deterministic).  A spec
    ``kernel@t:c`` fires on ordinals ``t .. t+c-1`` -- with a retry
    loop around the hook this models *transient* failure: ``c``
    consecutive attempts fail, the next succeeds.
``shard`` / ``slow``
    Shard-addressed: a spec targets one shard id, and the shard's
    attempt number indexes into the target's scheduled sequence --
    all ``shard`` firings first, then all ``slow`` firings, one per
    attempt (shards run concurrently, so attempt-based addressing
    keeps the schedule deterministic under any thread interleaving,
    and sequential consumption guarantees every scheduled firing
    actually fires given a sufficient retry budget).  ``slow`` sleeps
    :attr:`FaultPlan.slow_delay_s` first, modeling a hung shard that a
    watchdog eventually kills; both raise a retryable
    :class:`~repro.errors.FaultInjectedError`.
``device``
    Device-addressed: the device is *lost* -- every check against that
    device index fires, so retrying on the same device can never
    succeed; the multi-GPU executor must drop it and re-partition.
``bitflip``
    Shard-addressed silent corruption: the shard's computed output
    tile has one bit flipped (position drawn from the plan seed) and
    *no error is raised* -- only the spot-verification guard can catch
    it.
``worker-lost``
    Worker-addressed process death: a spec ``worker-lost@W`` schedules
    worker process ``W`` of the process shard executor
    (:mod:`repro.parallel.procpool`) to die abruptly (``os._exit``)
    when it next claims a shard.  The *worker-side* injector only
    decides the death (:meth:`FaultInjector.check_worker` consumes the
    budget and returns ``True``); the parent records the fired event
    and the ``resilience.workers_lost`` counter when it detects the
    dead process, because a dying worker cannot ship its own event
    log.  Threaded and serial runs have no worker processes, so the
    kind never fires there.
``latency``
    Ordinal-indexed service-tier delay: each serving micro-batch
    consults :meth:`FaultInjector.service_delay` before executing, and
    a scheduled firing sleeps :attr:`FaultPlan.slow_delay_s` *without
    raising* -- modeling a slow backend that deadline propagation and
    admission control must absorb (the serve-tier chaos harness's
    ``latency@service`` plans).
``disk-corrupt``
    Shard-file corruption: ``disk-corrupt@S`` schedules sealed shard
    file ``S`` of a serving index to have one bit flipped *on disk*
    (the serve chaos harness flips the bit; the injector only decides
    and records via :meth:`FaultInjector.should_corrupt_disk`).  The
    SNPBIN02 per-chunk CRCs must turn this into a loud
    :class:`~repro.errors.IntegrityError`, never a wrong answer.
``client-disconnect``
    Ordinal-indexed client death: the Nth client connection of a chaos
    run hangs up right after sending its request
    (:meth:`FaultInjector.should_disconnect`); the server must absorb
    the broken pipe without failing unrelated requests.

Spec strings (CLI ``--inject-faults``) are comma-separated tokens
``kind[@target][:count]`` plus an optional ``seed=N``::

    kernel:1,shard@0:2,slow@1,bitflip@0,seed=7
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, FaultInjectedError
from repro.observability.counters import FAULTS_INJECTED
from repro.observability.tracer import get_tracer

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FiredFault",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
]

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "kernel", "alloc", "device", "shard", "slow", "bitflip", "worker-lost",
    "latency", "disk-corrupt", "client-disconnect",
)

#: Kinds addressed by invocation ordinal (sequential hook sites).
_ORDINAL_KINDS = frozenset({"kernel", "alloc"})

#: Kinds addressed by (shard id, attempt).
_SHARD_KINDS = frozenset({"shard", "slow", "bitflip"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``count`` firings at ``target``."""

    kind: str
    target: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"FaultSpec: unknown fault kind {self.kind!r} "
                f"(valid: {', '.join(FAULT_KINDS)})"
            )
        if self.target < 0:
            raise ConfigurationError(
                f"FaultSpec: target must be >= 0, got {self.target}"
            )
        if self.count <= 0:
            raise ConfigurationError(
                f"FaultSpec: count must be positive, got {self.count}"
            )

    def to_token(self) -> str:
        """The spec-string token this spec round-trips through."""
        token = self.kind
        if self.target:
            token += f"@{self.target}"
        if self.count != 1:
            token += f":{self.count}"
        return token


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of simulated faults."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    slow_delay_s: float = 0.002

    @classmethod
    def from_spec(cls, spec: str, slow_delay_s: float = 0.002) -> "FaultPlan":
        """Parse a CLI spec string (see module docstring)."""
        specs: list[FaultSpec] = []
        seed = 0
        for raw_token in spec.split(","):
            token = raw_token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed="):])
                except ValueError as exc:
                    raise ConfigurationError(
                        f"FaultPlan: bad seed in {token!r}"
                    ) from exc
                continue
            kind, target, count = token, 0, 1
            if ":" in kind:
                kind, count_text = kind.rsplit(":", 1)
                try:
                    count = int(count_text)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"FaultPlan: bad count in {token!r}"
                    ) from exc
            if "@" in kind:
                kind, target_text = kind.split("@", 1)
                try:
                    target = int(target_text)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"FaultPlan: bad target in {token!r}"
                    ) from exc
            specs.append(FaultSpec(kind=kind, target=target, count=count))
        return cls(specs=tuple(specs), seed=seed, slow_delay_s=slow_delay_s)

    @classmethod
    def random(
        cls,
        seed: int,
        max_shard_target: int = 1,
        kinds: Sequence[str] = ("kernel", "shard", "slow", "bitflip"),
        slow_delay_s: float = 0.001,
    ) -> "FaultPlan":
        """A randomized (but seed-deterministic) chaos schedule.

        Shard-addressed faults target ids in
        ``[0, max_shard_target]`` -- callers should pick a bound that
        is guaranteed to exist in the runs they drive.
        """
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for kind in kinds:
            n = rng.randint(0, 2)
            for _ in range(n):
                if kind in _ORDINAL_KINDS:
                    specs.append(
                        FaultSpec(kind=kind, target=0, count=rng.randint(1, 2))
                    )
                    break  # ordinal kinds: one contiguous burst
                target = rng.randint(0, max_shard_target)
                count = 1 if kind == "bitflip" else rng.randint(1, 2)
                if any(
                    s.kind == kind and s.target == target for s in specs
                ):
                    continue
                specs.append(FaultSpec(kind=kind, target=target, count=count))
        return cls(specs=tuple(specs), seed=seed, slow_delay_s=slow_delay_s)

    def to_spec(self) -> str:
        """Round-trippable spec string (includes the seed)."""
        tokens = [spec.to_token() for spec in self.specs]
        tokens.append(f"seed={self.seed}")
        return ",".join(tokens)

    def count(self, kind: str) -> int:
        """Total scheduled firings of one kind."""
        return sum(s.count for s in self.specs if s.kind == kind)

    @property
    def n_scheduled(self) -> int:
        """Total scheduled firings across every kind."""
        return sum(s.count for s in self.specs)


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired (the injector's event log)."""

    kind: str
    target: int
    attempt: int
    site: str


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the instrumented hook sites.

    Thread-safe: shard hooks run concurrently on the engine pool.  The
    injector keeps an event log of fired faults
    (:meth:`fired`), which the chaos harness diffs around a run the
    same way metrics scoping diffs counters.
    """

    enabled = True

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._ordinals: dict[str, int] = {}
        self._consumed: dict[tuple[str, int], int] = {}
        self._fired: list[FiredFault] = []

    # -- internals -------------------------------------------------------------

    def _record(self, kind: str, target: int, attempt: int, site: str) -> None:
        with self._lock:
            self._fired.append(
                FiredFault(kind=kind, target=target, attempt=attempt, site=site)
            )
        get_tracer().counters.add(FAULTS_INJECTED)

    def _next_ordinal(self, kind: str) -> int:
        with self._lock:
            ordinal = self._ordinals.get(kind, 0)
            self._ordinals[kind] = ordinal + 1
            return ordinal

    def _ordinal_spec_hit(self, kind: str, ordinal: int) -> bool:
        return any(
            s.kind == kind and s.target <= ordinal < s.target + s.count
            for s in self.plan.specs
        )

    def _shard_budget(self, kind: str, shard_id: int) -> int:
        return sum(
            s.count
            for s in self.plan.specs
            if s.kind == kind and s.target == shard_id
        )

    # -- hook sites ------------------------------------------------------------

    def check(self, kind: str, target: int | None = None, attempt: int = 0) -> None:
        """Ordinal/device hook: raise if the plan schedules a fault here.

        ``kernel`` and ``alloc`` consume one invocation ordinal per
        call; ``device`` checks the given device index (lost devices
        fire on every check).
        """
        if kind in _ORDINAL_KINDS:
            ordinal = self._next_ordinal(kind)
            if self._ordinal_spec_hit(kind, ordinal):
                self._record(kind, ordinal, attempt, site=kind)
                raise FaultInjectedError(
                    f"injected {kind} fault (ordinal {ordinal}, "
                    f"attempt {attempt})",
                    kind=kind,
                    target=ordinal,
                    attempt=attempt,
                )
            return
        if kind == "device":
            device = 0 if target is None else target
            if any(
                s.kind == "device" and s.target == device
                for s in self.plan.specs
            ):
                self._record("device", device, attempt, site="device")
                raise FaultInjectedError(
                    f"injected device-lost fault (device {device})",
                    kind="device",
                    target=device,
                    attempt=attempt,
                )
            return
        raise ConfigurationError(
            f"FaultInjector.check: unsupported kind {kind!r} at this site"
        )

    def check_shard(self, shard_id: int, attempt: int) -> None:
        """Shard hook: transient shard failure and hung-shard faults.

        The attempt number indexes into the shard's scheduled firing
        sequence (``shard`` firings first, then ``slow``), so every
        scheduled fault fires exactly once given a sufficient retry
        budget -- even when both kinds target the same shard.
        """
        shard_budget = self._shard_budget("shard", shard_id)
        if attempt < shard_budget:
            self._record("shard", shard_id, attempt, site="shard")
            raise FaultInjectedError(
                f"injected shard fault (shard {shard_id}, attempt {attempt})",
                kind="shard",
                target=shard_id,
                attempt=attempt,
            )
        if attempt < shard_budget + self._shard_budget("slow", shard_id):
            self._record("slow", shard_id, attempt, site="shard")
            if self.plan.slow_delay_s > 0:
                self._sleep(self.plan.slow_delay_s)
            raise FaultInjectedError(
                f"injected slow-shard timeout (shard {shard_id}, "
                f"attempt {attempt})",
                kind="slow",
                target=shard_id,
                attempt=attempt,
            )

    def check_worker(self, worker_id: int) -> bool:
        """Worker hook: ``True`` when the plan schedules this worker's death.

        Consumes one firing of the ``worker-lost`` budget for
        ``worker_id`` per call.  Unlike the raising hooks this one does
        *not* record a fired event or counter: the caller is a worker
        process about to ``os._exit``, so its in-memory event log would
        be lost -- the parent process records the event when it detects
        the death instead.
        """
        with self._lock:
            key = ("worker-lost", worker_id)
            used = self._consumed.get(key, 0)
            budget = sum(
                s.count
                for s in self.plan.specs
                if s.kind == "worker-lost" and s.target == worker_id
            )
            if used >= budget:
                return False
            self._consumed[key] = used + 1
        return True

    def service_delay(self, site: str = "serve.batch") -> float:
        """Service-tier latency hook: sleep when the plan schedules it.

        Each call consumes one ``latency`` invocation ordinal (serving
        micro-batches execute sequentially per dispatcher, so ordinals
        are deterministic).  A scheduled firing sleeps
        :attr:`FaultPlan.slow_delay_s` and returns the delay -- it does
        *not* raise, modeling a slow backend rather than a broken one.
        Returns 0.0 when nothing fired.
        """
        ordinal = self._next_ordinal("latency")
        if not self._ordinal_spec_hit("latency", ordinal):
            return 0.0
        self._record("latency", ordinal, 0, site=site)
        if self.plan.slow_delay_s > 0:
            self._sleep(self.plan.slow_delay_s)
        return self.plan.slow_delay_s

    def should_corrupt_disk(self, shard_seq: int) -> bool:
        """Disk-corruption hook: ``True`` when shard file ``shard_seq``
        is scheduled for an on-disk bit flip.

        Consumes one firing of the ``disk-corrupt`` budget for the
        target per call and records the fired event; the caller (the
        serve chaos harness) performs the actual on-disk flip.
        """
        with self._lock:
            key = ("disk-corrupt", shard_seq)
            used = self._consumed.get(key, 0)
            budget = sum(
                s.count
                for s in self.plan.specs
                if s.kind == "disk-corrupt" and s.target == shard_seq
            )
            if used >= budget:
                return False
            self._consumed[key] = used + 1
        self._record("disk-corrupt", shard_seq, used, site="disk")
        return True

    def should_disconnect(self) -> bool:
        """Client-disconnect hook: ``True`` when this connection ordinal
        is scheduled to hang up after sending its request.

        Each call consumes one ``client-disconnect`` invocation ordinal
        (the chaos harness opens connections sequentially).
        """
        ordinal = self._next_ordinal("client-disconnect")
        if not self._ordinal_spec_hit("client-disconnect", ordinal):
            return False
        self._record("client-disconnect", ordinal, 0, site="client")
        return True

    def corrupt_block(self, block: np.ndarray, shard_id: int) -> np.ndarray:
        """Bit-flip hook: silently corrupt one element of an output tile.

        Fires at most ``count`` times per targeted shard; the flipped
        bit position is drawn from the plan seed, so the corruption is
        reproducible.  Returns the (possibly corrupted) tile.
        """
        with self._lock:
            key = ("bitflip", shard_id)
            used = self._consumed.get(key, 0)
            budget = sum(
                s.count
                for s in self.plan.specs
                if s.kind == "bitflip" and s.target == shard_id
            )
            if used >= budget:
                return block
            self._consumed[key] = used + 1
        self._record("bitflip", shard_id, used, site="shard_output")
        rng = np.random.default_rng((self.plan.seed << 8) ^ (shard_id + 1))
        corrupted = block.copy()
        index = int(rng.integers(corrupted.size))
        bit = int(rng.integers(8))
        corrupted.flat[index] = int(corrupted.flat[index]) ^ (1 << bit)
        return corrupted

    # -- inspection ------------------------------------------------------------

    def fired(self) -> list[FiredFault]:
        """Every fault fired so far, in firing order."""
        with self._lock:
            return list(self._fired)

    def n_fired(self) -> int:
        with self._lock:
            return len(self._fired)

    def fired_count(self, kind: str) -> int:
        """Fired faults of one kind."""
        with self._lock:
            return sum(1 for f in self._fired if f.kind == kind)

    def absorb(self, events: Iterable[FiredFault]) -> None:
        """Append faults fired elsewhere to this injector's log.

        The process executor rebuilds injectors from spec inside each
        worker; their firings ship back with shard results, and the
        parent absorbs them here so ``fired``/``fired_count`` stay the
        single source of truth across executors.  Budgets are *not*
        consumed -- the worker-side clones already consumed theirs.
        """
        with self._lock:
            self._fired.extend(events)


class NullInjector:
    """Disabled injector: every hook is a no-op (the process default)."""

    enabled = False

    def check(self, kind: str, target: int | None = None, attempt: int = 0) -> None:
        pass

    def check_shard(self, shard_id: int, attempt: int) -> None:
        pass

    def check_worker(self, worker_id: int) -> bool:
        return False

    def service_delay(self, site: str = "serve.batch") -> float:
        return 0.0

    def should_corrupt_disk(self, shard_seq: int) -> bool:
        return False

    def should_disconnect(self) -> bool:
        return False

    def corrupt_block(self, block: np.ndarray, shard_id: int) -> np.ndarray:
        return block

    def fired(self) -> list[FiredFault]:
        return []

    def n_fired(self) -> int:
        return 0

    def fired_count(self, kind: str) -> int:
        return 0

    def absorb(self, events: Iterable[FiredFault]) -> None:
        pass


#: The process-wide disabled injector (one attribute check per hook).
NULL_INJECTOR = NullInjector()
