"""Theoretical peak throughput (the dotted lines of Fig. 5).

Peaks are computed from the per-pipe functional-unit counts and the
kernel instruction mix via the bottleneck rule of Section V-D: "The
peak throughput per functional unit can be determined by identifying
the bottleneck (i.e. the minimum throughput on all pipelines in use)."

Units: *word-ops per second*, where one word-op is the full comparison
(logical op + POPC + ADD) of one packed 32-bit word.  The CPU peak is
normalized to 32-bit-equivalent word-ops so devices are directly
comparable (the Xeon's POPCNT processes 64-bit words).
"""

from __future__ import annotations

from repro.blis.microkernel import ComparisonOp
from repro.cpu.arch import CPUArchitecture, XEON_E5_2620_V2
from repro.gpu.arch import ALL_GPUS, GPUArchitecture
from repro.gpu.cycles import bottleneck_pipe, peak_word_ops_per_second

__all__ = [
    "device_peak_word_ops",
    "cpu_peak_word32_ops",
    "device_peak_summary",
    "gpops",
]


def gpops(word_ops_per_second: float) -> float:
    """Convert word-ops/s to giga-word-ops/s (the figures' axis unit)."""
    return word_ops_per_second / 1e9


def device_peak_word_ops(
    arch: GPUArchitecture,
    op: ComparisonOp | str = ComparisonOp.AND,
    n_cores: int | None = None,
) -> float:
    """GPU theoretical peak for one micro-kernel (word-ops/s)."""
    return peak_word_ops_per_second(arch, op, n_cores)


def cpu_peak_word32_ops(arch: CPUArchitecture = XEON_E5_2620_V2) -> float:
    """CPU theoretical peak in 32-bit-equivalent word-ops/s."""
    return arch.peak_word32_ops_per_second()


def device_peak_summary(
    op: ComparisonOp | str = ComparisonOp.AND,
) -> list[dict[str, object]]:
    """Per-device peak table for one micro-kernel (plus the CPU row)."""
    rows: list[dict[str, object]] = []
    for arch in ALL_GPUS:
        peak = device_peak_word_ops(arch, op)
        rows.append(
            {
                "device": arch.name,
                "microarchitecture": arch.microarchitecture,
                "peak_gpops": round(gpops(peak), 1),
                "bottleneck_pipe": bottleneck_pipe(arch, op).value,
            }
        )
    cpu = XEON_E5_2620_V2
    rows.append(
        {
            "device": cpu.name,
            "microarchitecture": cpu.microarchitecture,
            "peak_gpops": round(gpops(cpu_peak_word32_ops(cpu)), 1),
            "bottleneck_pipe": "popc",
        }
    )
    return rows
