"""Per-core scaling curves (Fig. 7).

The paper's Fig. 7 runs the largest supported LD tile *per core* (weak
scaling) and plots each device's performance per core relative to its
own single-core measurement.  In the model this relative quantity is

    rel(c) = [scaling_eff(c) * f(c)] / [scaling_eff(1) * f(1)]

with ``scaling_eff(1) = 1`` by construction, so the curve is shaped by
the contention decay past the knee and -- on the Titan V -- by the
single-core DVFS term that pushes mid-range counts above 100 %
(Section VI-C's hypothesis, encoded in the architecture preset).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import effective_frequency_hz, scaling_efficiency

__all__ = ["relative_per_core_performance", "scaling_curve"]


def relative_per_core_performance(arch: GPUArchitecture, n_cores: int) -> float:
    """Fig. 7's y-axis: per-core performance relative to one core."""
    if not (1 <= n_cores <= arch.n_c):
        raise ModelError(
            f"relative_per_core_performance: n_cores={n_cores} outside "
            f"[1, {arch.n_c}]"
        )
    baseline = scaling_efficiency(arch, 1) * effective_frequency_hz(arch, 1)
    at_n = scaling_efficiency(arch, n_cores) * effective_frequency_hz(arch, n_cores)
    return at_n / baseline


def scaling_curve(
    arch: GPUArchitecture, core_counts: list[int] | None = None
) -> list[tuple[int, float]]:
    """(cores, relative per-core performance) series for one device.

    Defaults to powers of two up to the device core count, plus the
    full device -- the sampling Fig. 7 uses.
    """
    if core_counts is None:
        core_counts = []
        c = 1
        while c < arch.n_c:
            core_counts.append(c)
            c *= 2
        core_counts.append(arch.n_c)
    return [(c, relative_per_core_performance(arch, c)) for c in core_counts]
