"""Design-space exploration: systematic what-if studies over the model.

Generalizes the ad-hoc what-if benches into a small API: sweep one
architecture parameter, evaluate a metric at each point, and report
the curve with its saturation point.  Useful for the questions the
paper's conclusion raises (how many POPC units are worth building?
when does shared memory stop paying?) and for sanity-checking that the
model responds to parameters the way the bottleneck analysis predicts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp
from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import kernel_cycles, peak_word_ops_per_second

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_parameter",
    "peak_metric",
    "kernel_time_metric",
]

Metric = Callable[[GPUArchitecture], float]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a parameter sweep."""

    value: object
    metric: float


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep with convenience analysis."""

    parameter: str
    points: tuple[SweepPoint, ...]
    higher_is_better: bool

    @property
    def best(self) -> SweepPoint:
        key = (lambda p: p.metric) if self.higher_is_better else (lambda p: -p.metric)
        return max(self.points, key=key)

    def saturation_value(self, tolerance: float = 0.02) -> object:
        """Smallest parameter value within ``tolerance`` of the best.

        The "knee" question: how little of the resource achieves
        (1 - tolerance) of the best metric?  Assumes the sweep was
        given in increasing resource order.
        """
        best = self.best.metric
        for point in self.points:
            if self.higher_is_better:
                if point.metric >= best * (1.0 - tolerance):
                    return point.value
            else:
                if point.metric <= best * (1.0 + tolerance):
                    return point.value
        return self.points[-1].value

    def improvements(self) -> list[float]:
        """Successive metric ratios (shape diagnostics)."""
        out = []
        for earlier, later in zip(self.points, self.points[1:]):
            if earlier.metric == 0:
                out.append(float("inf"))
            else:
                out.append(later.metric / earlier.metric)
        return out


def sweep_parameter(
    base: GPUArchitecture,
    parameter: str,
    values: Sequence[object],
    metric: Metric,
    higher_is_better: bool = True,
) -> SweepResult:
    """Evaluate ``metric`` across variants of ``base``.

    ``parameter`` must be a field of :class:`GPUArchitecture` (nested
    memory-model fields use a ``memory.`` prefix).
    """
    if not values:
        raise ModelError("sweep_parameter: empty value list")
    arch_fields = {f.name for f in dataclasses.fields(GPUArchitecture)}
    memory_fields = {f.name for f in dataclasses.fields(type(base.memory))}
    points = []
    for value in values:
        if parameter in arch_fields:
            variant = dataclasses.replace(base, **{parameter: value})
        elif parameter.startswith("memory.") and parameter[7:] in memory_fields:
            memory = dataclasses.replace(base.memory, **{parameter[7:]: value})
            variant = dataclasses.replace(base, memory=memory)
        else:
            raise ModelError(
                f"sweep_parameter: unknown parameter {parameter!r}"
            )
        points.append(SweepPoint(value=value, metric=metric(variant)))
    return SweepResult(
        parameter=parameter,
        points=tuple(points),
        higher_is_better=higher_is_better,
    )


def peak_metric(op: ComparisonOp | str = ComparisonOp.AND) -> Metric:
    """Metric: theoretical peak word-ops/s for one micro-kernel."""

    def metric(arch: GPUArchitecture) -> float:
        return peak_word_ops_per_second(arch, op)

    return metric


def kernel_time_metric(
    m: int,
    n: int,
    k_words: int,
    m_c: int = 32,
    k_c: int = 256,
    m_r: int = 4,
    n_r: int = 384,
    grid: tuple[int, int] | None = None,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> Metric:
    """Metric: modeled kernel seconds for a fixed problem/blocking."""

    def metric(arch: GPUArchitecture) -> float:
        rows, cols = grid if grid else (1, arch.n_c)
        plan = BlockingPlan(
            m=m, n=n, k=k_words, m_c=m_c, k_c=k_c, m_r=m_r, n_r=n_r,
            grid_rows=rows, grid_cols=cols,
        )
        return kernel_cycles(arch, plan, op).seconds

    return metric
