"""Analytical performance models: peaks, end-to-end estimates, scaling.

These compose the GPU cycle model and the device stack's scheduling
into the quantities the paper's figures plot:

* :mod:`repro.model.peak` -- theoretical peak throughput per device and
  micro-kernel (the dotted lines of Fig. 5) and the CPU peak.
* :mod:`repro.model.endtoend` -- end-to-end time estimation at
  arbitrary (including paper-scale) problem sizes, by driving the
  *same* double-buffered pipeline scheduling in timing-only mode.
* :mod:`repro.model.scaling` -- the per-core scaling curves of Fig. 7.
"""

from repro.model.peak import (
    device_peak_word_ops,
    device_peak_summary,
    cpu_peak_word32_ops,
    gpops,
)
from repro.model.endtoend import EndToEndEstimate, estimate_end_to_end, estimate_cpu_seconds
from repro.model.scaling import relative_per_core_performance, scaling_curve
from repro.model.roofline import RooflinePoint, host_roofline, kernel_roofline
from repro.model.design_space import (
    SweepResult,
    kernel_time_metric,
    peak_metric,
    sweep_parameter,
)

__all__ = [
    "device_peak_word_ops",
    "device_peak_summary",
    "cpu_peak_word32_ops",
    "gpops",
    "EndToEndEstimate",
    "estimate_end_to_end",
    "estimate_cpu_seconds",
    "relative_per_core_performance",
    "scaling_curve",
    "RooflinePoint",
    "host_roofline",
    "kernel_roofline",
    "SweepResult",
    "kernel_time_metric",
    "peak_metric",
    "sweep_parameter",
]
