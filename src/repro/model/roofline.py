"""Roofline analysis: where each workload sits on each device.

The roofline model bounds attainable throughput by

    min( pipe peak,  arithmetic_intensity * memory bandwidth )

with arithmetic intensity in word-ops per byte of *global-memory*
traffic.  For the tiled SNP kernel, traffic per core tile is dominated
by the streamed B panel plus the staged A panel and the C write-back:

    bytes/word-op ~ 4/m_c  (B)  +  4/n_per_core (A)  +  4/k_words (C)

so the intensity grows with the tile height ``m_c`` -- the reuse
argument behind the paper's shared-memory staging.  The analysis
classifies each (device, workload) pair as compute- or bandwidth-bound
and quantifies the margin; it also exposes the *host-link* roofline
that dominates end-to-end FastID (the Fig. 8 regime), where intensity
is measured against PCIe bytes instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.microkernel import ComparisonOp
from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import peak_word_ops_per_second

__all__ = ["RooflinePoint", "kernel_roofline", "host_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position against one ceiling pair."""

    device: str
    label: str
    arithmetic_intensity: float      # word-ops per byte
    compute_peak_ops: float          # word-ops/s
    bandwidth_bytes_per_s: float
    attainable_ops: float

    @property
    def bound(self) -> str:
        """"compute" or "bandwidth" -- which ceiling binds."""
        bandwidth_ceiling = self.arithmetic_intensity * self.bandwidth_bytes_per_s
        return "compute" if self.compute_peak_ops <= bandwidth_ceiling else "bandwidth"

    @property
    def ridge_intensity(self) -> float:
        """Intensity at which the two ceilings intersect."""
        return self.compute_peak_ops / self.bandwidth_bytes_per_s

    @property
    def headroom(self) -> float:
        """attainable / binding-ceiling margin against the other ceiling."""
        bandwidth_ceiling = self.arithmetic_intensity * self.bandwidth_bytes_per_s
        return min(self.compute_peak_ops, bandwidth_ceiling) / max(
            self.compute_peak_ops, bandwidth_ceiling
        )


def kernel_roofline(
    arch: GPUArchitecture,
    m_c: int,
    n_per_core: float,
    k_words: int,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> RooflinePoint:
    """Device-memory roofline of the tiled kernel.

    Traffic model per word-op: the B stream amortized over the ``m_c``
    tile rows, the A panel amortized over the per-core output columns,
    and the C write-back amortized over the reduction length.
    """
    if m_c <= 0 or n_per_core <= 0 or k_words <= 0:
        raise ModelError("kernel_roofline: extents must be positive")
    word_bytes = arch.word_bytes
    bytes_per_op = (
        word_bytes / m_c          # B word shared by the tile's rows
        + word_bytes / n_per_core  # A word reused across the columns
        + 4.0 / k_words            # C accumulator written once per k sweep
    )
    intensity = 1.0 / bytes_per_op
    compute = peak_word_ops_per_second(arch, op)
    bandwidth = arch.memory.global_bandwidth_gbs * 1e9
    attainable = min(compute, intensity * bandwidth)
    return RooflinePoint(
        device=arch.name,
        label=f"kernel m_c={m_c}",
        arithmetic_intensity=intensity,
        compute_peak_ops=compute,
        bandwidth_bytes_per_s=bandwidth,
        attainable_ops=attainable,
    )


def host_roofline(
    arch: GPUArchitecture,
    m: int,
    k_words: int,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> RooflinePoint:
    """Host-link roofline of the end-to-end pipeline.

    Every database row crosses PCIe once (k_words words in, one
    4-byte count per query out), and contributes ``m * k_words``
    word-ops -- so intensity grows with the query count ``m``, which is
    why FastID with 32 queries is hopelessly transfer-bound (Fig. 8)
    while large-query problems become compute-bound end to end.
    """
    if m <= 0 or k_words <= 0:
        raise ModelError("host_roofline: extents must be positive")
    word_bytes = arch.word_bytes
    bytes_per_row = k_words * word_bytes + m * 4.0
    ops_per_row = m * k_words
    intensity = ops_per_row / bytes_per_row
    compute = peak_word_ops_per_second(arch, op)
    bandwidth = arch.memory.host_bandwidth_gbs * 1e9
    attainable = min(compute, intensity * bandwidth)
    return RooflinePoint(
        device=arch.name,
        label=f"host link m={m}",
        arithmetic_intensity=intensity,
        compute_peak_ops=compute,
        bandwidth_bytes_per_s=bandwidth,
        attainable_ops=attainable,
    )
