"""End-to-end time estimation at arbitrary problem scale.

Drives the *same* double-buffered pipeline structure as
:func:`repro.core.pipeline.run_pipeline` through the device stack's
timing-only commands, so a 20-million-profile FastID database (Fig. 8)
is priced through the identical scheduling code that executes small
problems functionally.  The test suite asserts dry == wet timing on
problems small enough to run both ways.

The estimate follows the paper's end-to-end methodology (Section VI):

* OpenCL initialization included (context creation);
* host -> device transfer of A once and of B tile-by-tile;
* kernel launches per tile;
* device -> host read-back of each C tile;
* kernel compilation excluded;
* host-side packing excluded (it overlaps transfers in the real
  implementation: "allowing the CPU to pack inputs into one buffer
  while reading from another").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.blocking import tile_ranges
from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.core.config import KernelConfig
from repro.cpu.timing import CPUTimingModel
from repro.errors import AllocationError, ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.device import Device
from repro.gpu.event import Event
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.util.bitops import words_needed

__all__ = ["EndToEndEstimate", "estimate_end_to_end", "estimate_cpu_seconds"]

_MEMORY_FILL_FRACTION = 0.90
_RESULT_BYTES = 4


@dataclass(frozen=True)
class EndToEndEstimate:
    """Itemized end-to-end prediction for one device/problem pair."""

    device: str
    algorithm: str
    m: int
    n: int
    k_bits: int
    init_s: float
    h2d_s: float
    kernel_s: float
    d2h_s: float
    end_to_end_s: float
    n_tiles: int
    kernel_word_ops: int

    @property
    def kernel_throughput_word_ops(self) -> float:
        return self.kernel_word_ops / self.kernel_s if self.kernel_s > 0 else 0.0

    @property
    def overlap_s(self) -> float:
        serial = self.init_s + self.h2d_s + self.kernel_s + self.d2h_s
        return max(0.0, serial - self.end_to_end_s)


def _pad_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def estimate_end_to_end(
    arch: GPUArchitecture,
    algorithm: Algorithm | str,
    m: int,
    n: int,
    k_bits: int,
    config: KernelConfig | None = None,
    double_buffering: bool = True,
    include_init: bool = True,
) -> EndToEndEstimate:
    """Price one end-to-end run without materializing operands.

    Mirrors :func:`repro.core.pipeline.run_pipeline` step for step:
    tile planning, resident-A upload, per-tile write/kernel/read with
    the same event dependencies.
    """
    algorithm = Algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    if min(m, n, k_bits) <= 0:
        raise ModelError("estimate_end_to_end: extents must be positive")
    if config is None:
        config = derive_config(arch, algorithm)
    kernel = SnpKernel.compile(
        arch,
        config.op,
        m_c=config.m_c,
        m_r=config.m_r,
        k_c=config.k_c,
        n_r=config.n_r,
        grid_rows=config.grid_rows,
        grid_cols=config.grid_cols,
    )
    word_bytes = arch.word_bytes
    k_words = words_needed(k_bits, arch.word_bits)
    m_padded = _pad_up(m, config.m_r)
    n_padded = _pad_up(n, config.m_r)

    # Tile planning (same arithmetic as repro.core.pipeline.plan_tiles).
    budget = int(arch.global_memory_bytes * _MEMORY_FILL_FRACTION)
    a_bytes = m_padded * k_words * word_bytes
    per_row = k_words * word_bytes + m_padded * _RESULT_BYTES
    available = budget - a_bytes
    if available <= 0:
        raise AllocationError(
            f"estimate_end_to_end: operand A alone exceeds memory on {arch.name}"
        )
    rows_by_total = available // (2 * per_row)
    rows_by_b = arch.max_alloc_bytes // (k_words * word_bytes)
    rows_by_c = arch.max_alloc_bytes // max(1, m_padded * _RESULT_BYTES)
    tile_rows = int(min(rows_by_total, rows_by_b, rows_by_c))
    if tile_rows >= kernel.n_r:
        tile_rows = tile_rows // kernel.n_r * kernel.n_r
    if tile_rows <= 0:
        raise AllocationError(
            f"estimate_end_to_end: no feasible tile on {arch.name}"
        )
    tile_rows = min(tile_rows, n_padded)
    ranges = tile_ranges(n_padded, tile_rows)

    device = Device(arch)
    context = device.create_context()
    if not include_init:
        context.ready_at = 0.0
    queue = context.create_queue()

    a_event = queue.enqueue_write_dry(a_bytes, label="write:A")
    n_slots = 2 if double_buffering and len(ranges) > 1 else 1
    slot_free: list[list[Event]] = [[] for _ in range(n_slots)]
    prev_read: Event | None = None
    kernel_ops = 0
    for tile_idx, (n0, n1) in enumerate(ranges):
        slot = tile_idx % n_slots
        rows = n1 - n0
        deps = list(slot_free[slot])
        if not double_buffering and prev_read is not None:
            deps.append(prev_read)
        write_ev = queue.enqueue_write_dry(
            rows * k_words * word_bytes, wait_for=deps, label=f"write:B[{tile_idx}]"
        )
        kernel_ev, profile = queue.enqueue_kernel_dry(
            kernel,
            KernelArgs(m=m_padded, n=rows, k=k_words),
            wait_for=[a_event, write_ev],
            label=f"kernel[{tile_idx}]",
        )
        kernel_ops += profile.breakdown.word_ops
        read_ev = queue.enqueue_read_dry(
            m_padded * rows * _RESULT_BYTES,
            wait_for=[kernel_ev],
            label=f"read:C[{tile_idx}]",
        )
        slot_free[slot] = [read_ev]
        prev_read = read_ev

    busy = queue.busy_summary()
    return EndToEndEstimate(
        device=arch.name,
        algorithm=algorithm.value,
        m=m,
        n=n,
        k_bits=k_bits,
        init_s=context.ready_at,
        h2d_s=busy["h2d"],
        kernel_s=busy["compute"],
        d2h_s=busy["d2h"],
        end_to_end_s=queue.finish(),
        n_tiles=len(ranges),
        kernel_word_ops=kernel_ops,
    )


def estimate_cpu_seconds(
    m: int, n: int, k_bits: int, model: CPUTimingModel | None = None
) -> float:
    """The Fig. 6 CPU-baseline line ([11]'s efficiency band midpoint)."""
    return (model or CPUTimingModel()).execution_time(m, n, k_bits)
