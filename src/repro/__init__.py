"""repro -- a reproduction of "A Portable GPU Framework for SNP Comparisons".

Binder, Low & Popovici (2019) present an OpenCL framework that maps the
BLIS matrix-multiplication structure onto GPUs to compute three
SNP-comparison workloads -- linkage disequilibrium, FastID identity
search and FastID mixture analysis -- with the software configuration
derived analytically from a model GPU architecture.

This package reimplements the full system in Python.  Real GPUs are
replaced by a simulated device substrate (see DESIGN.md for the
substitution rationale): results are computed bit-exactly on packed
bitvectors, while execution times come from an analytical model of the
paper's model GPU architecture calibrated to the three evaluation
devices (GTX 980, Titan V, Vega 64).

Quickstart::

    import numpy as np
    from repro import linkage_disequilibrium
    from repro.snp import generate_population, PopulationModel

    data = generate_population(
        PopulationModel(n_samples=200, n_sites=1000), rng=0)
    result = linkage_disequilibrium(data, device="Titan V")
    print(result.r_squared.shape)       # (1000, 1000)
    print(result.report)                # itemized simulated timing

Package map::

    repro.core    the portable framework (the paper's contribution)
    repro.snp     genetics substrate (datasets, generators, oracles)
    repro.blis    shared BLIS structure (blocking, packing, micro-kernels)
    repro.gpu     simulated GPU substrate (arch model, device stack,
                  core simulator, microbenchmarks, cycle model)
    repro.cpu     CPU baseline of Alachiotis et al. [11]
    repro.model   peak / end-to-end / scaling performance models
    repro.bench   experiment harness regenerating every table & figure
    repro.parallel host-side sharded execution engine (thread pool,
                  packed-panel cache; the ``workers=`` entry points)
"""

from repro.core import (
    Algorithm,
    KernelConfig,
    SNPComparisonFramework,
    identity_search,
    linkage_disequilibrium,
    mixture_analysis,
    derive_config,
    published_config,
    render_header,
)
from repro.errors import ReproError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64, get_gpu
from repro.parallel import ParallelEngine, bit_gemm_parallel

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "KernelConfig",
    "SNPComparisonFramework",
    "identity_search",
    "linkage_disequilibrium",
    "mixture_analysis",
    "derive_config",
    "published_config",
    "render_header",
    "ReproError",
    "ParallelEngine",
    "bit_gemm_parallel",
    "ALL_GPUS",
    "GTX_980",
    "TITAN_V",
    "VEGA_64",
    "get_gpu",
    "__version__",
]
