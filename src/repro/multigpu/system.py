"""Multi-GPU node descriptions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture, GTX_980, TITAN_V
from repro.multigpu.interconnect import (
    InterconnectModel,
    NVLINK_DEDICATED,
    PCIE_SHARED,
)

__all__ = ["MultiGPUSystem", "DGX2_LIKE", "QUAD_GTX980"]


@dataclass(frozen=True)
class MultiGPUSystem:
    """``n_devices`` identical GPUs behind one interconnect."""

    name: str
    device: GPUArchitecture
    n_devices: int
    interconnect: InterconnectModel

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ModelError(f"MultiGPUSystem {self.name!r}: n_devices must be positive")

    @property
    def total_global_memory_bytes(self) -> int:
        """The "collective memory" the paper's remark highlights."""
        return self.n_devices * self.device.global_memory_bytes

    @property
    def total_cores(self) -> int:
        return self.n_devices * self.device.n_c

    def subsystem(self, n_devices: int) -> "MultiGPUSystem":
        """The same node restricted to ``n_devices`` (scaling sweeps)."""
        if not (1 <= n_devices <= self.n_devices):
            raise ModelError(
                f"subsystem: n_devices={n_devices} outside [1, {self.n_devices}]"
            )
        return MultiGPUSystem(
            name=f"{self.name} ({n_devices} devices)",
            device=self.device,
            n_devices=n_devices,
            interconnect=self.interconnect,
        )


#: A DGX-2-like node: 16 Volta-class devices on a dedicated fabric.
DGX2_LIKE = MultiGPUSystem(
    name="DGX-2-like (16x Volta)",
    device=TITAN_V,
    n_devices=16,
    interconnect=NVLINK_DEDICATED,
)

#: A commodity quad-GPU workstation on a shared PCIe switch.
QUAD_GTX980 = MultiGPUSystem(
    name="quad GTX 980 workstation",
    device=GTX_980,
    n_devices=4,
    interconnect=PCIE_SHARED,
)
