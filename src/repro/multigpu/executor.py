"""Multi-GPU execution: functional runs and end-to-end estimation.

Each device runs the *single-device* double-buffered pipeline on its
database slice; the host link model adjusts the per-device staging
bandwidth (shared switch: divided by active devices; dedicated links:
full rate).  The node's end-to-end time is the makespan across devices
-- device pipelines are independent once partitioned, exactly the
embarrassing parallelism the column partition buys.

``run_multi_gpu`` executes functionally (bit-exact, slices
concatenated); ``estimate_multi_gpu`` prices arbitrary scale through
the same per-device estimator the single-GPU benches use.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.planner import derive_config
from repro.errors import ModelError, ReproError, ShardExecutionError
from repro.gpu.arch import GPUArchitecture
from repro.model.endtoend import EndToEndEstimate, estimate_end_to_end
from repro.multigpu.partition import DeviceSlice, partition_database
from repro.multigpu.system import MultiGPUSystem
from repro.observability.counters import DEVICES_DROPPED
from repro.observability.tracer import get_tracer
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import Disposition, classify
from repro.resilience.runtime import get_resilience

__all__ = ["MultiGPUReport", "run_multi_gpu", "estimate_multi_gpu", "scaling_series"]


@dataclass
class MultiGPUReport:
    """Node-level timing of one multi-GPU run.

    ``dropped_devices`` lists device indices lost during the run (their
    database slices were re-partitioned across the survivors);
    ``resilience`` carries the fault-tolerance accounting when a
    resilience context was active.
    """

    system: str
    algorithm: str
    n_devices_used: int
    slices: list[DeviceSlice]
    per_device: list[EndToEndEstimate] = field(default_factory=list)
    dropped_devices: list[int] = field(default_factory=list)
    resilience: ResilienceReport | None = None

    @property
    def makespan_s(self) -> float:
        """Node end-to-end time: the slowest device's pipeline."""
        return max((e.end_to_end_s for e in self.per_device), default=0.0)

    @property
    def total_kernel_word_ops(self) -> int:
        return sum(e.kernel_word_ops for e in self.per_device)

    def speedup_over(self, single_device_seconds: float) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return single_device_seconds / self.makespan_s

    def parallel_efficiency(self, single_device_seconds: float) -> float:
        """Speedup divided by device count (1.0 = perfect scaling)."""
        return self.speedup_over(single_device_seconds) / max(1, self.n_devices_used)


def _adjusted_arch(system: MultiGPUSystem, n_active: int) -> GPUArchitecture:
    """The device architecture with the interconnect-adjusted host link."""
    per_device_bw = system.interconnect.effective_host_bandwidth(n_active)
    memory = dataclasses.replace(
        system.device.memory, host_bandwidth_gbs=per_device_bw
    )
    return dataclasses.replace(system.device, memory=memory)


def run_multi_gpu(
    system: MultiGPUSystem,
    algorithm: Algorithm | str,
    a_bits: np.ndarray,
    b_bits: np.ndarray,
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> tuple[np.ndarray, MultiGPUReport]:
    """Functional multi-GPU run: bit-exact table plus node timing.

    The full query operand goes to every device; database columns are
    partitioned.  The returned table equals the single-device result
    exactly (asserted by tests).

    ``workers > 1`` computes every device slice on the sharded host
    engine; because the engine registry keys pools by worker count
    (:func:`repro.parallel.get_engine`), all simulated devices share
    **one** thread pool rather than spawning one per device.

    ``gram``/``strategy``/``backend``/``executor`` forward to each
    device's framework.  Note a
    partitioned run rarely benefits from Gram mode: each device
    compares the full query against a *slice* of the database, which
    is not a self-comparison (only the degenerate single-device,
    full-slice case qualifies).
    """
    algorithm = Algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    a = np.asarray(a_bits)
    b = np.asarray(b_bits)
    if a.ndim != 2 or b.ndim != 2:
        raise ModelError("run_multi_gpu: operands must be 2-D binary matrices")
    config = derive_config(system.device, algorithm)
    slices = partition_database(b.shape[0], system.n_devices, align=config.n_r)
    active = [s for s in slices if not s.is_empty]
    if not active:
        raise ModelError("run_multi_gpu: empty database")
    arch = _adjusted_arch(system, len(active))

    obs = get_tracer()
    res = get_resilience()
    events_before = res.injector.n_fired()
    table = np.zeros((a.shape[0], b.shape[0]), dtype=np.int64)
    report = MultiGPUReport(
        system=system.name,
        algorithm=algorithm.value,
        n_devices_used=len(active),
        slices=slices,
    )
    sub_reports: list[ResilienceReport] = []
    dropped: list[int] = []
    # Work queue of (device, rows) assignments.  The happy path drains
    # it in partition order; a device-lost fault re-partitions the
    # failed assignment's rows across the surviving devices and keeps
    # draining (graceful degradation; see docs/RESILIENCE.md).
    pending: deque[DeviceSlice] = deque(active)
    with obs.span(
        "multigpu.run",
        system=system.name,
        algorithm=algorithm.value,
        devices=len(active),
    ):
        while pending:
            dev_slice = pending.popleft()
            try:
                with obs.span(
                    "multigpu.device",
                    device=dev_slice.device_index,
                    rows=dev_slice.n_rows,
                ):
                    res.injector.check(
                        "device", target=dev_slice.device_index
                    )
                    framework = SNPComparisonFramework(
                        arch,
                        algorithm,
                        workers=workers,
                        gram=gram,
                        strategy=strategy,
                        backend=backend,
                        executor=executor,
                    )
                    slice_table, run_report = framework.run(
                        a, b[dev_slice.row_start : dev_slice.row_stop]
                    )
            except ReproError as exc:
                if classify(exc) is not Disposition.DEGRADE:
                    raise
                dropped.append(dev_slice.device_index)
                obs.counters.add(DEVICES_DROPPED)
                survivors = [
                    s.device_index
                    for s in active
                    if s.device_index not in dropped
                ]
                if not survivors:
                    raise ShardExecutionError(
                        f"run_multi_gpu: every device lost (last: device "
                        f"{dev_slice.device_index}); no survivors to "
                        f"re-partition onto"
                    ) from exc
                for sub in partition_database(
                    dev_slice.n_rows, len(survivors), align=config.n_r
                ):
                    if sub.is_empty:
                        continue
                    pending.append(
                        DeviceSlice(
                            device_index=survivors[sub.device_index],
                            row_start=dev_slice.row_start + sub.row_start,
                            row_stop=dev_slice.row_start + sub.row_stop,
                        )
                    )
                continue
            table[:, dev_slice.row_start : dev_slice.row_stop] = slice_table
            if run_report.resilience is not None:
                sub_reports.append(run_report.resilience)
            report.per_device.append(
                EndToEndEstimate(
                    device=arch.name,
                    algorithm=algorithm.value,
                    m=run_report.m,
                    n=run_report.n,
                    k_bits=run_report.k_bits,
                    init_s=run_report.init_s,
                    h2d_s=run_report.h2d_s,
                    kernel_s=run_report.kernel_s,
                    d2h_s=run_report.d2h_s,
                    end_to_end_s=run_report.end_to_end_s,
                    n_tiles=run_report.n_tiles,
                    kernel_word_ops=run_report.word_ops,
                )
            )
    report.dropped_devices = dropped
    report.n_devices_used = len(active) - len(dropped)
    if res.active:
        events = tuple(res.injector.fired()[events_before:])
        totals = ResilienceReport.combine(sub_reports)
        report.resilience = ResilienceReport(
            faults_injected=len(events),
            retries=totals.retries,
            quarantined=totals.quarantined,
            tiles_verified=totals.tiles_verified,
            verify_mismatches=totals.verify_mismatches,
            devices_dropped=len(dropped),
            events=events,
        )
    return table, report


def estimate_multi_gpu(
    system: MultiGPUSystem,
    algorithm: Algorithm | str,
    m: int,
    n: int,
    k_bits: int,
    double_buffering: bool = True,
) -> MultiGPUReport:
    """Price a multi-GPU run at arbitrary (paper+) scale."""
    algorithm = Algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    config = derive_config(system.device, algorithm)
    slices = partition_database(n, system.n_devices, align=config.n_r)
    active = [s for s in slices if not s.is_empty]
    if not active:
        raise ModelError("estimate_multi_gpu: empty database")
    arch = _adjusted_arch(system, len(active))
    report = MultiGPUReport(
        system=system.name,
        algorithm=algorithm.value,
        n_devices_used=len(active),
        slices=slices,
    )
    for dev_slice in active:
        report.per_device.append(
            estimate_end_to_end(
                arch,
                algorithm,
                m,
                dev_slice.n_rows,
                k_bits,
                double_buffering=double_buffering,
            )
        )
    return report


def scaling_series(
    system: MultiGPUSystem,
    algorithm: Algorithm | str,
    m: int,
    n: int,
    k_bits: int,
) -> list[dict[str, float]]:
    """Strong-scaling sweep: 1..n_devices over a fixed problem."""
    single = estimate_multi_gpu(system.subsystem(1), algorithm, m, n, k_bits)
    baseline = single.makespan_s
    series = []
    d = 1
    counts = []
    while d < system.n_devices:
        counts.append(d)
        d *= 2
    counts.append(system.n_devices)
    for count in counts:
        rep = estimate_multi_gpu(system.subsystem(count), algorithm, m, n, k_bits)
        series.append(
            {
                "devices": count,
                "makespan_s": rep.makespan_s,
                "speedup": rep.speedup_over(baseline),
                "efficiency": rep.parallel_efficiency(baseline),
            }
        )
    return series
