"""Multi-GPU extension (the paper's Section VII future work).

"We believe that our framework can be extended to handle even larger
problem sizes [by] exploit[ing] multi-GPU systems such as the DGX-2
... the increased number of functional units (especially the
population count instruction) and the collective memory on the GPUs
would facilitate the storage of even larger datasets ... However, this
comes at the cost of having to communicate between multi-GPUs."

This package implements that extension over the simulated substrate:

* :mod:`repro.multigpu.interconnect` -- host-link topology model:
  a shared PCIe switch (transfers to different GPUs serialize) or
  per-device dedicated links (NVLink/NVSwitch-class, transfers run in
  parallel).
* :mod:`repro.multigpu.system` -- :class:`MultiGPUSystem`: N identical
  devices plus an interconnect; presets for a DGX-2-like 16x Volta
  node and a quad GTX 980 workstation.
* :mod:`repro.multigpu.partition` -- database-dimension partitioning
  across devices (each device owns a contiguous slice of profiles and
  the full query set -- the natural FastID/LD decomposition).
* :mod:`repro.multigpu.executor` -- functional execution (bit-exact,
  per-device slices concatenated) and end-to-end estimation with the
  per-device double-buffered pipelines sharing or not sharing the host
  link; scaling reports.
"""

from repro.multigpu.interconnect import InterconnectModel, PCIE_SHARED, NVLINK_DEDICATED
from repro.multigpu.system import MultiGPUSystem, DGX2_LIKE, QUAD_GTX980
from repro.multigpu.partition import partition_database
from repro.multigpu.executor import (
    MultiGPUReport,
    run_multi_gpu,
    estimate_multi_gpu,
    scaling_series,
)

__all__ = [
    "InterconnectModel",
    "PCIE_SHARED",
    "NVLINK_DEDICATED",
    "MultiGPUSystem",
    "DGX2_LIKE",
    "QUAD_GTX980",
    "partition_database",
    "MultiGPUReport",
    "run_multi_gpu",
    "estimate_multi_gpu",
    "scaling_series",
]
