"""Host-link topology models for multi-GPU systems.

Two topologies bracket the design space the paper's DGX-2 remark opens:

* **shared PCIe switch** -- all devices sit behind one host link;
  concurrent H2D (or D2H) transfers to different devices serialize.
  This is the commodity multi-GPU workstation.
* **dedicated links** -- every device has its own full-bandwidth host
  path (NVSwitch-class fabrics approximate this for staged data);
  transfers to different devices proceed in parallel.

The model prices *host-to-device staging*, which is what the SNP
pipelines move (the comparison itself needs no device-to-device
traffic: each device owns disjoint database rows and the full query
set).  ``d2d_bandwidth_gbs`` is carried for completeness and used by
the scaling analysis to price hypothetical result reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["InterconnectModel", "PCIE_SHARED", "NVLINK_DEDICATED"]


@dataclass(frozen=True)
class InterconnectModel:
    """Host-link topology of one multi-GPU node.

    Parameters
    ----------
    name:
        Human-readable label.
    shared_host_link:
        True when transfers to *different* devices contend for one
        link (PCIe switch); False when each device streams at full
        bandwidth concurrently.
    host_bandwidth_gbs:
        Per-link host bandwidth (GB/s); with a shared link this is the
        total across devices.
    d2d_bandwidth_gbs:
        Device-to-device bandwidth (GB/s) for collective operations.
    """

    name: str
    shared_host_link: bool
    host_bandwidth_gbs: float
    d2d_bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.host_bandwidth_gbs <= 0 or self.d2d_bandwidth_gbs <= 0:
            raise ModelError(f"InterconnectModel {self.name!r}: bandwidths must be positive")

    def effective_host_bandwidth(self, n_active_devices: int) -> float:
        """Per-device host bandwidth with ``n_active_devices`` streaming."""
        if n_active_devices <= 0:
            raise ModelError("effective_host_bandwidth: need >= 1 active device")
        if self.shared_host_link:
            return self.host_bandwidth_gbs / n_active_devices
        return self.host_bandwidth_gbs


#: Commodity workstation: devices behind one PCIe 3.0 x16 switch.
PCIE_SHARED = InterconnectModel(
    name="shared PCIe 3.0 x16 switch",
    shared_host_link=True,
    host_bandwidth_gbs=12.0,
    d2d_bandwidth_gbs=10.0,
)

#: NVSwitch-class fabric: every device streams host data at full rate.
NVLINK_DEDICATED = InterconnectModel(
    name="dedicated NVLink/NVSwitch links",
    shared_host_link=False,
    host_bandwidth_gbs=12.0,
    d2d_bandwidth_gbs=120.0,
)
