"""Database partitioning across devices.

Both SNP applications decompose naturally along the database (N)
dimension: each device receives the full query operand A and a
contiguous, disjoint slice of the database B, computes its slice of
the output columns, and the host concatenates -- no inter-device
communication during compute (the "distributed-memory computing"
the paper anticipates reduces to an embarrassingly parallel column
partition for these kernels).

Slices are aligned to the kernel's ``n_r`` so no device receives
fractional micro-panels (except the tail of the final device).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.blocking import split_evenly
from repro.errors import ModelError

__all__ = ["DeviceSlice", "partition_database"]


@dataclass(frozen=True)
class DeviceSlice:
    """One device's share of the database rows."""

    device_index: int
    row_start: int
    row_stop: int

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def is_empty(self) -> bool:
        return self.n_rows == 0


def partition_database(
    n_rows: int, n_devices: int, align: int = 1
) -> list[DeviceSlice]:
    """Split ``n_rows`` database rows over ``n_devices``, aligned.

    Boundaries land on multiples of ``align`` (the kernel's ``n_r``);
    remainder alignment units go to the leading devices.  Devices may
    receive empty slices when rows are scarce.
    """
    if n_rows < 0:
        raise ModelError(f"partition_database: n_rows must be >= 0, got {n_rows}")
    if n_devices <= 0:
        raise ModelError(
            f"partition_database: n_devices must be positive, got {n_devices}"
        )
    if align <= 0:
        raise ModelError(f"partition_database: align must be positive, got {align}")
    n_units = -(-n_rows // align) if n_rows else 0
    unit_ranges = split_evenly(n_units, n_devices)
    slices = []
    for idx, (u0, u1) in enumerate(unit_ranges):
        start = min(u0 * align, n_rows)
        stop = min(u1 * align, n_rows)
        slices.append(DeviceSlice(device_index=idx, row_start=start, row_stop=stop))
    return slices
