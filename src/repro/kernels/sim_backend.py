"""Simulated-device backend: the gpu executor's tile walk as an ABI entry.

The simulated ``repro.gpu`` executor computes its functional results
with the BLIS five-loop walk (packed micro-panels, popcount
micro-kernel).  Registering that walk here makes the simulator *just
another backend* behind the kernel ABI: the registry iteration, the
conformance suite and ``--backend sim`` all reach the same tile
structure the device model prices.

It is deliberately ``tunable=False`` -- the walk exists to mirror the
device's execution shape, not to win throughput races -- and
``compiled=False``, so the bench speedup gate never applies to it.
"""

from __future__ import annotations

import numpy as np

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.blis.packing import pack_a_panel, pack_b_panel
from repro.kernels.abi import BackendInfo, KernelBackend, check_panel_operands

__all__ = ["SimulatedDeviceBackend"]

#: The device-class blocking the simulated walk tiles with (matches the
#: host default in :mod:`repro.parallel.engine`).
_SIM_BLOCKING = {"m_c": 32, "k_c": 256, "m_r": 4, "n_r": 64}


class SimulatedDeviceBackend(KernelBackend):
    """The simulator's blocked tile walk, registered behind the ABI."""

    @property
    def info(self) -> BackendInfo:
        return BackendInfo(
            name="sim",
            kind="simulated",
            version="blis-walk/1",
            available=True,
            compiled=False,
            tunable=False,
            description=(
                "simulated-device BLIS tile walk (packed micro-panels, "
                "popcount micro-kernel) behind the kernel ABI"
            ),
        )

    def bit_gemm_panel(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
    ) -> np.ndarray:
        # Lazy import: repro.blis.gemm lazily imports this package for
        # its backend driver, so the module-level edge must stay one-way.
        from repro.blis.gemm import _micro_update, _panel_ranges

        a, b, op = check_panel_operands(a, b, op)
        kernel = get_microkernel(op)
        m, k = a.shape
        n = b.shape[0]
        c = np.zeros((m, n), dtype=np.int64)
        if m == 0 or n == 0 or k == 0:
            return c
        plan = BlockingPlan(m=m, n=n, k=k, **_SIM_BLOCKING)
        for k0, k1 in plan.k_panels():
            for pm0, pm1 in _panel_ranges(0, m, plan.m_c):
                a_packed = pack_a_panel(a[pm0:pm1, k0:k1], plan.m_r)
                for pn0, pn1 in _panel_ranges(0, n, plan.n_r):
                    b_packed = pack_b_panel(b[pn0:pn1, k0:k1].T, plan.n_r)
                    _micro_update(
                        c, a_packed, b_packed, kernel.combine,
                        pm0, pm1, pn0, pn1, plan.m_r,
                    )
        return c
