"""Reference backend: the literal NumPy popcount word-walk.

This is the exact inner loop :func:`repro.blis.gemm.bit_gemm_reference`
has always run -- a row-blocked broadcast of ``op(a, b)`` followed by a
vectorised popcount-sum -- moved behind the kernel ABI so compiled
backends have a bit-exact oracle to race against.  ``bit_gemm_reference``
now delegates here, so the oracle and the registered reference backend
cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.blis.microkernel import ComparisonOp, MicroKernel, get_microkernel
from repro.kernels.abi import BackendInfo, KernelBackend, check_panel_operands
from repro.util.bitops import popcount

__all__ = ["DEFAULT_ROW_BLOCK", "NumPyBackend", "reference_panel"]

#: Rows per broadcast block: bounds the (rows, n, k) word temporary.
DEFAULT_ROW_BLOCK = 64


def reference_panel(
    a: np.ndarray,
    b: np.ndarray,
    kernel: MicroKernel,
    row_block: int = DEFAULT_ROW_BLOCK,
) -> np.ndarray:
    """The literal popcount-GEMM evaluation (pre-validated operands)."""
    m = a.shape[0]
    n = b.shape[0]
    c = np.zeros((m, n), dtype=np.int64)
    for start in range(0, m, row_block):
        stop = min(start + row_block, m)
        combined = kernel.combine(a[start:stop, None, :], b[None, :, :])
        c[start:stop] = popcount(combined).sum(axis=2)
    return c


class NumPyBackend(KernelBackend):
    """The always-available reference implementation of the ABI."""

    def __init__(self, row_block: int = DEFAULT_ROW_BLOCK) -> None:
        self.row_block = row_block

    @property
    def info(self) -> BackendInfo:
        return BackendInfo(
            name="numpy",
            kind="reference",
            version=np.__version__,
            available=True,
            compiled=False,
            tunable=True,
            description=(
                "pure-NumPy popcount word-walk (the bit-exact oracle "
                "every other backend is gated against)"
            ),
        )

    def bit_gemm_panel(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
    ) -> np.ndarray:
        a, b, op = check_panel_operands(a, b, op)
        return reference_panel(a, b, get_microkernel(op), self.row_block)
