"""Kernel ABI: the narrow compute contract every backend implements.

The paper's portability argument rests on one observation: the whole
SNP-comparison family needs only three primitives --

* ``pack``            -- genotypes to bit-words,
* ``bit_gemm_panel``  -- ``C[i, j] = sum_k POPC(op(A[i,k], B[j,k]))``
  over one row/column panel of packed words,
* ``popcount_reduce`` -- summed population count of a word array,

and everything else (blocking, sharding, streaming, resilience) is
orchestration *around* that contract.  This module pins the contract
down as :class:`KernelBackend` plus a :class:`BackendInfo` capability
descriptor, and keeps a process-wide registry so the engine, the gpu
executor, the autotuner and the CLI all resolve backends the same way.

Resolution rules (shared by every layer):

* an explicit backend name must exist and be available, else
  :class:`~repro.errors.ConfigurationError`;
* ``"auto"`` honours the ``REPRO_BACKEND`` environment variable when
  set (the CI backend matrix forces legs this way), otherwise it
  defaults to the reference backend -- the persisted host autotuner
  (:mod:`repro.parallel.tuner`) is what upgrades ``"auto"`` to a
  measured per-machine winner;
* :func:`backend_fingerprint` summarises the installed backend set
  (names + versions) so tuning records are invalidated when a backend
  appears, disappears, or changes version.

Backends accept any packed word dtype the drivers accept
(``uint8``/``uint16``/``uint32``/``uint64``); compiled backends
canonicalise operands to zero-padded ``uint64`` rows first --
:func:`canonicalize_words` -- which is popcount- and bitwise-op
neutral, so results stay bit-exact with the reference walk.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import ConfigurationError, PackingError
from repro.util.bitops import WORD_BITS_32, pack_bits, popcount

__all__ = [
    "REPRO_BACKEND_ENV",
    "DEFAULT_BACKEND_NAME",
    "OPCODES",
    "BackendInfo",
    "KernelBackend",
    "canonicalize_words",
    "check_panel_operands",
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_names",
    "get_backend",
    "backend_available",
    "env_backend_name",
    "resolve_backend",
    "resolve_backend_name",
    "backend_fingerprint",
]

#: Environment variable that forces the backend ``"auto"`` resolves to
#: (the CI backend matrix sets it per leg).
REPRO_BACKEND_ENV = "REPRO_BACKEND"

#: What ``"auto"`` resolves to absent an environment override and a
#: tuning record: the reference backend, always available.
DEFAULT_BACKEND_NAME = "numpy"

#: Stable integer codes compiled backends dispatch the comparison op
#: on (AND_PRENEGATED is AND on pre-negated words by construction).
OPCODES: dict[ComparisonOp, int] = {
    ComparisonOp.AND: 0,
    ComparisonOp.XOR: 1,
    ComparisonOp.ANDNOT: 2,
    ComparisonOp.AND_PRENEGATED: 0,
}


@dataclass(frozen=True)
class BackendInfo:
    """Capability/availability descriptor of one registered backend.

    ``available`` means the backend can compute *at all* on this host
    (the Numba backend stays available through its pure-python
    fallback; the native-C backend goes unavailable when no C compiler
    is found).  ``compiled`` marks a machine-code inner loop -- the
    bench-regression speedup gate applies only to compiled backends.
    ``tunable`` backends are raced by the persisted host autotuner;
    the simulated-device registration opts out (it exists for ABI
    uniformity, not throughput).
    """

    name: str
    kind: str  # "reference" | "jit" | "native" | "simulated"
    version: str
    available: bool
    compiled: bool
    tunable: bool
    description: str
    unavailable_reason: str | None = None


def check_panel_operands(
    a: np.ndarray, b: np.ndarray, op: ComparisonOp | str
) -> tuple[np.ndarray, np.ndarray, ComparisonOp]:
    """Validate one panel call; returns normalised ``(a, b, op)``.

    Same contract as the :mod:`repro.blis.gemm` drivers: 2-D packed
    words of a shared unsigned dtype with matching k extents.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    for name, arr in (("A", a), ("B", b)):
        if arr.ndim != 2:
            raise PackingError(
                f"bit_gemm_panel: {name} must be 2-D packed words"
            )
        if arr.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
            raise PackingError(
                f"bit_gemm_panel: {name} has non-word dtype {arr.dtype}"
            )
    if a.dtype != b.dtype:
        raise PackingError(
            f"bit_gemm_panel: dtype mismatch ({a.dtype} vs {b.dtype})"
        )
    if a.shape[1] != b.shape[1]:
        raise PackingError(
            f"bit_gemm_panel: k mismatch (A has {a.shape[1]} words, "
            f"B has {b.shape[1]})"
        )
    return a, b, get_microkernel(op).op


def canonicalize_words(words: np.ndarray) -> np.ndarray:
    """Reinterpret packed rows as contiguous zero-padded ``uint64``.

    Narrow word dtypes are zero-padded to an 8-byte multiple per row
    and byte-reinterpreted.  Both steps preserve the multiset of set
    bits per row *and* positional alignment across operands, so AND /
    XOR / ANDNOT popcount sums over the canonical form equal the sums
    over the original words (padding contributes ``POPC(op(0, 0)) = 0``
    for every supported op).
    """
    w = np.ascontiguousarray(words)
    if w.ndim != 2:
        raise PackingError(
            f"canonicalize_words: expected 2-D packed words, got ndim={w.ndim}"
        )
    if w.dtype == np.uint64:
        return w
    if w.dtype not in (np.uint8, np.uint16, np.uint32):
        raise PackingError(
            f"canonicalize_words: unsupported dtype {w.dtype}"
        )
    per = 8 // w.dtype.itemsize
    rows, k = w.shape
    pad = (-k) % per
    if pad:
        padded = np.zeros((rows, k + pad), dtype=w.dtype)
        padded[:, :k] = w
        w = padded
    return np.ascontiguousarray(w).view(np.uint64)


class KernelBackend(ABC):
    """One implementation of the three-primitive compute contract.

    Subclasses must provide :attr:`info` and :meth:`bit_gemm_panel`;
    :meth:`pack` and :meth:`popcount_reduce` have reference defaults
    (NumPy) that backends may override with compiled equivalents.
    ``bit_gemm_panel`` must be thread-safe and release the GIL where it
    can -- the parallel engine calls it concurrently from pool threads.
    """

    @property
    @abstractmethod
    def info(self) -> BackendInfo:
        """The backend's capability/availability descriptor."""

    def pack(
        self,
        bits: np.ndarray,
        word_bits: int = WORD_BITS_32,
        pad_to_words: int | None = None,
    ) -> np.ndarray:
        """Pack a binary matrix row-wise into unsigned machine words."""
        return pack_bits(bits, word_bits, pad_to_words)

    @abstractmethod
    def bit_gemm_panel(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
    ) -> np.ndarray:
        """``C[i, j] = sum_k POPC(op(A[i,k], B[j,k]))`` for one panel.

        Operands are row-major packed words: A is ``(m, k)``, B is
        ``(n, k)`` (row-per-output-column).  Returns ``(m, n)`` int64,
        bit-exact with :func:`repro.blis.gemm.bit_gemm_reference`.
        """

    def popcount_reduce(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        """Summed population count along ``axis`` (all elements if None)."""
        counts = popcount(np.asarray(words))
        result = counts.sum(axis=axis)
        return int(result) if axis is None else result

    def __repr__(self) -> str:
        info = self.info
        state = "available" if info.available else "unavailable"
        return f"<KernelBackend {info.name} ({info.kind}, {state})>"


# -- registry --------------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(
    backend: KernelBackend, replace: bool = False
) -> KernelBackend:
    """Add ``backend`` to the process-wide registry (returns it).

    Registration is by descriptor name; duplicate names raise unless
    ``replace=True`` (tests use replacement to shadow a backend).
    """
    name = backend.info.name
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ConfigurationError(
                f"register_backend: backend {name!r} is already registered"
            )
        _REGISTRY[name] = backend
    return backend


def registered_backends() -> tuple[KernelBackend, ...]:
    """Every registered backend, registration order preserved."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY.values())


def available_backends() -> tuple[KernelBackend, ...]:
    """Registered backends whose descriptors report availability."""
    return tuple(b for b in registered_backends() if b.info.available)


def backend_names() -> tuple[str, ...]:
    """Registered backend names (the CLI builds its choices from this)."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY.keys())


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    (listing what is registered) -- misspelled ``--backend`` values and
    stale tuning records fail loudly instead of silently degrading.
    """
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown kernel backend {name!r} "
            f"(registered: {', '.join(backend_names()) or 'none'})"
        )
    return backend


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and reports availability."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    return backend is not None and backend.info.available


def env_backend_name() -> str | None:
    """The validated ``REPRO_BACKEND`` override, or ``None`` if unset.

    An unknown or unavailable name raises -- a CI leg that asks for a
    backend the container cannot provide must fail, not silently fall
    back to the reference path.
    """
    name = os.environ.get(REPRO_BACKEND_ENV)
    if not name or name == "auto":
        return None
    backend = get_backend(name)
    if not backend.info.available:
        raise ConfigurationError(
            f"{REPRO_BACKEND_ENV}={name!r} names an unavailable backend: "
            f"{backend.info.unavailable_reason or 'no reason recorded'}"
        )
    return name


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a backend spec to a concrete registered name.

    ``None``/``"auto"`` resolves to the ``REPRO_BACKEND`` override or
    the reference default; explicit names are validated for existence
    and availability.  (The parallel engine layers the autotuner's
    per-machine choice on top of this for untuned ``"auto"`` runs.)
    """
    if name is None or name == "auto":
        return env_backend_name() or DEFAULT_BACKEND_NAME
    backend = get_backend(name)
    if not backend.info.available:
        raise ConfigurationError(
            f"kernel backend {name!r} is unavailable on this host: "
            f"{backend.info.unavailable_reason or 'no reason recorded'}"
        )
    return name


def resolve_backend(name: str | None = None) -> KernelBackend:
    """:func:`resolve_backend_name`, returning the backend object."""
    return get_backend(resolve_backend_name(name))


def backend_fingerprint() -> str:
    """Name=version summary of the tunable backend set, sorted.

    Part of the tuning-cache key: installing Numba (or losing the C
    compiler) changes the fingerprint, so records measured against the
    old backend set stop matching instead of pinning a stale winner.
    Unavailable backends contribute their name with an ``!`` marker so
    availability flips alone also invalidate.
    """
    parts = []
    for backend in registered_backends():
        info = backend.info
        if not info.tunable:
            continue
        marker = "" if info.available else "!"
        parts.append(f"{info.name}{marker}={info.version}")
    return ",".join(sorted(parts))
