"""Compiled backend: Numba ``@njit`` word-level popcount bit-GEMM.

When Numba is installed, the panel is a machine-code triple loop over
canonical ``uint64`` words with a SWAR popcount (LLVM lowers it to the
native ``popcnt`` where the target has one); ``nogil=True`` lets the
parallel engine's pool threads genuinely overlap panel calls.  The JIT
is built lazily on first use, so importing the package never pays
compilation time.

When Numba is *absent* the backend stays importable and computable
through a pure-python fallback (``int.bit_count`` over python-int
rows).  The fallback is orders of magnitude slower -- it exists so the
import path, the ABI conformance suite and the ``no-optional-deps`` CI
job work without the optional dependency, and its descriptor reports
``compiled=False``/``tunable=False`` so neither the autotuner nor the
bench speedup gate ever treats it as an accelerated path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.blis.microkernel import ComparisonOp
from repro.kernels.abi import (
    OPCODES,
    BackendInfo,
    KernelBackend,
    canonicalize_words,
    check_panel_operands,
)

__all__ = ["HAVE_NUMBA", "NUMBA_VERSION", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: str = str(numba.__version__)
except ImportError:
    HAVE_NUMBA = False
    NUMBA_VERSION = "absent"


_PanelFn = Callable[[np.ndarray, np.ndarray, int, np.ndarray], None]
_PopsumFn = Callable[[np.ndarray], int]

_JIT_LOCK = threading.Lock()
_JIT_PANEL: _PanelFn | None = None
_JIT_POPSUM: _PopsumFn | None = None


def _build_jit() -> tuple[_PanelFn, _PopsumFn]:  # pragma: no cover - numba only
    """Compile the njit kernels (called once, under the module lock)."""
    from numba import njit

    @njit(cache=False, nogil=True)
    def panel(
        a: np.ndarray, b: np.ndarray, opcode: int, out: np.ndarray
    ) -> None:
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
        m = a.shape[0]
        n = b.shape[0]
        k = a.shape[1]
        for i in range(m):
            for j in range(n):
                acc = np.uint64(0)
                for t in range(k):
                    if opcode == 0:
                        x = a[i, t] & b[j, t]
                    elif opcode == 1:
                        x = a[i, t] ^ b[j, t]
                    else:
                        x = a[i, t] & (b[j, t] ^ full)
                    x = x - ((x >> np.uint64(1)) & m1)
                    x = (x & m2) + ((x >> np.uint64(2)) & m2)
                    x = (x + (x >> np.uint64(4))) & m4
                    acc += (x * h01) >> np.uint64(56)
                out[i, j] = acc

    @njit(cache=False, nogil=True)
    def popsum(w: np.ndarray) -> int:
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        acc = np.uint64(0)
        for t in range(w.size):
            x = w[t]
            x = x - ((x >> np.uint64(1)) & m1)
            x = (x & m2) + ((x >> np.uint64(2)) & m2)
            x = (x + (x >> np.uint64(4))) & m4
            acc += (x * h01) >> np.uint64(56)
        return np.int64(acc)

    return panel, popsum


def _get_jit() -> tuple[_PanelFn, _PopsumFn]:  # pragma: no cover - numba only
    global _JIT_PANEL, _JIT_POPSUM
    with _JIT_LOCK:
        if _JIT_PANEL is None or _JIT_POPSUM is None:
            _JIT_PANEL, _JIT_POPSUM = _build_jit()
        return _JIT_PANEL, _JIT_POPSUM


def _python_panel(a: np.ndarray, b: np.ndarray, opcode: int) -> np.ndarray:
    """Pure-python fallback: ``int.bit_count`` over python-int rows.

    Bit-exact with the jit path by construction (same canonical words,
    same op semantics); only suitable for small panels.
    """
    mask = (1 << 64) - 1
    a_rows: list[list[int]] = a.tolist()
    b_rows: list[list[int]] = b.tolist()
    out = np.zeros((len(a_rows), len(b_rows)), dtype=np.int64)
    for i, row_a in enumerate(a_rows):
        for j, row_b in enumerate(b_rows):
            acc = 0
            if opcode == 0:
                for x, y in zip(row_a, row_b):
                    acc += (x & y).bit_count()
            elif opcode == 1:
                for x, y in zip(row_a, row_b):
                    acc += (x ^ y).bit_count()
            else:
                for x, y in zip(row_a, row_b):
                    acc += (x & (~y & mask)).bit_count()
            out[i, j] = acc
    return out


class NumbaBackend(KernelBackend):
    """``@njit`` popcount bit-GEMM with a pure-python fallback."""

    @property
    def info(self) -> BackendInfo:
        if HAVE_NUMBA:  # pragma: no cover - numba only
            return BackendInfo(
                name="numba",
                kind="jit",
                version=NUMBA_VERSION,
                available=True,
                compiled=True,
                tunable=True,
                description=(
                    "Numba @njit word-level SWAR popcount panel "
                    "(nogil, lazily compiled)"
                ),
            )
        return BackendInfo(
            name="numba",
            kind="jit",
            version=NUMBA_VERSION,
            available=True,
            compiled=False,
            tunable=False,
            description=(
                "numba not installed: pure-python int.bit_count fallback "
                "(correct but slow; install numba for the compiled path)"
            ),
        )

    def bit_gemm_panel(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
    ) -> np.ndarray:
        a, b, op = check_panel_operands(a, b, op)
        m, n = a.shape[0], b.shape[0]
        if m == 0 or n == 0 or a.shape[1] == 0:
            return np.zeros((m, n), dtype=np.int64)
        opcode = OPCODES[op]
        ca = canonicalize_words(a)
        cb = canonicalize_words(b)
        if HAVE_NUMBA:  # pragma: no cover - numba only
            panel, _ = _get_jit()
            out = np.zeros((m, n), dtype=np.int64)
            panel(ca, cb, opcode, out)
            return out
        return _python_panel(ca, cb, opcode)

    def popcount_reduce(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        w = np.asarray(words)
        if axis is None and HAVE_NUMBA and w.size:  # pragma: no cover
            flat: Any = canonicalize_words(w.reshape(1, w.size)).ravel()
            _, popsum = _get_jit()
            return int(popsum(flat))
        return super().popcount_reduce(w, axis)
