"""``repro.kernels``: the kernel ABI and its registered backends.

See :mod:`repro.kernels.abi` for the contract and resolution rules,
and ``docs/KERNELS.md`` for the narrative.  Importing this package
registers the built-in backends:

* ``numpy``   -- the reference word-walk (always available);
* ``numba``   -- ``@njit`` compiled panel, pure-python fallback when
  Numba is absent;
* ``cnative`` -- C panel compiled with the host toolchain (unavailable
  without a C compiler);
* ``sim``     -- the simulated-device BLIS tile walk.

Registration is import-side-effect only; nothing is JIT- or
C-compiled until a backend is actually probed or used.
"""

from repro.kernels.abi import (
    DEFAULT_BACKEND_NAME,
    OPCODES,
    REPRO_BACKEND_ENV,
    BackendInfo,
    KernelBackend,
    available_backends,
    backend_available,
    backend_fingerprint,
    backend_names,
    canonicalize_words,
    check_panel_operands,
    env_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    resolve_backend_name,
)
from repro.kernels.cnative_backend import CNativeBackend
from repro.kernels.numba_backend import HAVE_NUMBA, NumbaBackend
from repro.kernels.numpy_backend import NumPyBackend
from repro.kernels.sim_backend import SimulatedDeviceBackend

__all__ = [
    "DEFAULT_BACKEND_NAME",
    "OPCODES",
    "REPRO_BACKEND_ENV",
    "HAVE_NUMBA",
    "BackendInfo",
    "KernelBackend",
    "NumPyBackend",
    "NumbaBackend",
    "CNativeBackend",
    "SimulatedDeviceBackend",
    "available_backends",
    "backend_available",
    "backend_fingerprint",
    "backend_names",
    "canonicalize_words",
    "check_panel_operands",
    "env_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "resolve_backend_name",
]

# Built-in registrations (idempotent under module re-execution because
# the registry lives in repro.kernels.abi, which is imported once).
if "numpy" not in backend_names():
    register_backend(NumPyBackend())
    register_backend(NumbaBackend())
    register_backend(CNativeBackend())
    register_backend(SimulatedDeviceBackend())
