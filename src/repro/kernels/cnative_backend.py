"""Compiled backend: a C popcount bit-GEMM built with the host toolchain.

ROADMAP item 2 names "a Cython/C extension or Numba" as the unlock for
the inner loop; this is the C-extension half.  A small fixed C source
(triple loop over canonical ``uint64`` words, ``__builtin_popcountll``
inner op) is compiled once per host into a per-user cache directory --
keyed by a hash of the source, the compiler and the flags -- and loaded
through :mod:`ctypes`.  ctypes calls release the GIL, so panel calls
from the parallel engine's pool threads overlap.

No compiler, a failed compile, or a failed load all leave the backend
*registered but unavailable* with the reason recorded in its
descriptor: ``--backend cnative`` then fails loudly while ``"auto"``
and the registry iteration keep working.  Nothing is compiled at
import time -- the first availability probe (or panel call) pays the
one-time build.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError
from repro.kernels.abi import (
    OPCODES,
    BackendInfo,
    KernelBackend,
    canonicalize_words,
    check_panel_operands,
)
from repro.util.cachedir import repro_cache_dir

__all__ = ["KERNEL_CACHE_ENV", "DEFAULT_KERNEL_CACHE", "CNativeBackend"]

#: Environment variable overriding where compiled kernels are cached.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Default compiled-kernel cache directory (per-user, survives
#: checkouts); honours ``XDG_CACHE_HOME`` via
#: :func:`repro.util.cachedir.repro_cache_dir` -- kept as a constant
#: name for documentation, resolved per call in :func:`_cache_dir`.
DEFAULT_KERNEL_CACHE = "~/.cache/repro/kernels"

#: Compilers probed in order when ``$CC`` is unset.
_COMPILERS = ("cc", "gcc", "clang")

_CFLAGS = ("-O3", "-shared", "-fPIC")

_SOURCE = """\
#include <stdint.h>

#if defined(__GNUC__) || defined(__clang__)
static inline int64_t popc64(uint64_t x) { return __builtin_popcountll(x); }
#else
static inline int64_t popc64(uint64_t x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int64_t)((x * 0x0101010101010101ULL) >> 56);
}
#endif

void repro_bit_gemm_panel(const uint64_t *a, const uint64_t *b, int64_t *c,
                          int64_t m, int64_t n, int64_t k, int32_t opcode) {
    for (int64_t i = 0; i < m; ++i) {
        const uint64_t *ar = a + i * k;
        int64_t *cr = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const uint64_t *br = b + j * k;
            int64_t acc = 0;
            if (opcode == 0) {
                for (int64_t t = 0; t < k; ++t) acc += popc64(ar[t] & br[t]);
            } else if (opcode == 1) {
                for (int64_t t = 0; t < k; ++t) acc += popc64(ar[t] ^ br[t]);
            } else {
                for (int64_t t = 0; t < k; ++t) acc += popc64(ar[t] & ~br[t]);
            }
            cr[j] = acc;
        }
    }
}

int64_t repro_popcount_sum(const uint64_t *w, int64_t n_words) {
    int64_t acc = 0;
    for (int64_t t = 0; t < n_words; ++t) acc += popc64(w[t]);
    return acc;
}
"""


def _find_compiler() -> str | None:
    """``$CC`` if set, else the first of cc/gcc/clang on PATH."""
    cc = os.environ.get("CC")
    if cc:
        return cc if os.path.sep in cc else shutil.which(cc)
    for candidate in _COMPILERS:
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _cache_dir() -> Path:
    override = os.environ.get(KERNEL_CACHE_ENV)
    if override:
        return Path(override).expanduser()
    return repro_cache_dir() / "kernels"


def _build_library(cc: str) -> Path:
    """Compile the kernel source into the cache (idempotent, atomic).

    The output name hashes source + compiler + flags, so a toolchain
    or source change compiles a fresh object instead of reusing a
    stale one; concurrent builders race benignly through ``os.replace``.
    """
    tag = hashlib.sha256(
        "\x00".join((_SOURCE, cc, " ".join(_CFLAGS))).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"bitgemm-{tag}.so"
    if target.exists():
        return target
    cache.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        src = Path(tmp) / "bitgemm.c"
        obj = Path(tmp) / "bitgemm.so"
        src.write_text(_SOURCE)
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", str(obj), str(src)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise ConfigurationError(
                f"cnative: {cc} failed ({proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(obj, target)
    return target


class CNativeBackend(KernelBackend):
    """ctypes-loaded C implementation of the kernel ABI."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._probed = False
        self._lib: ctypes.CDLL | None = None
        self._cc: str | None = None
        self._error: str | None = None

    # -- lazy toolchain probe --------------------------------------------------

    def _ensure(self) -> ctypes.CDLL | None:
        """Compile/load once; failures latch into the descriptor."""
        with self._lock:
            if self._probed:
                return self._lib
            self._probed = True
            cc = _find_compiler()
            if cc is None:
                self._error = "no C compiler found ($CC, cc, gcc, clang)"
                return None
            self._cc = cc
            try:
                path = _build_library(cc)
                lib = ctypes.CDLL(str(path))
            except (ConfigurationError, OSError, subprocess.SubprocessError) as exc:
                self._error = str(exc)
                return None
            lib.repro_bit_gemm_panel.argtypes = [
                ctypes.c_void_p,
                ctypes.c_void_p,
                ctypes.c_void_p,
                ctypes.c_int64,
                ctypes.c_int64,
                ctypes.c_int64,
                ctypes.c_int32,
            ]
            lib.repro_bit_gemm_panel.restype = None
            lib.repro_popcount_sum.argtypes = [ctypes.c_void_p, ctypes.c_int64]
            lib.repro_popcount_sum.restype = ctypes.c_int64
            self._lib = lib
            return lib

    @property
    def info(self) -> BackendInfo:
        lib = self._ensure()
        available = lib is not None
        cc_name = os.path.basename(self._cc) if self._cc else "none"
        return BackendInfo(
            name="cnative",
            kind="native",
            version=f"cc-{cc_name}",
            available=available,
            compiled=available,
            tunable=available,
            description=(
                "C popcount bit-GEMM compiled with the host toolchain "
                "(ctypes, GIL-releasing)"
            ),
            unavailable_reason=self._error,
        )

    # -- ABI -------------------------------------------------------------------

    def bit_gemm_panel(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
    ) -> np.ndarray:
        a, b, op = check_panel_operands(a, b, op)
        lib = self._ensure()
        if lib is None:
            raise ConfigurationError(
                f"cnative backend unavailable: {self._error}"
            )
        m, n = a.shape[0], b.shape[0]
        out = np.zeros((m, n), dtype=np.int64)
        if m == 0 or n == 0 or a.shape[1] == 0:
            return out
        ca = canonicalize_words(a)
        cb = canonicalize_words(b)
        lib.repro_bit_gemm_panel(
            ca.ctypes.data,
            cb.ctypes.data,
            out.ctypes.data,
            m,
            n,
            ca.shape[1],
            OPCODES[op],
        )
        return out

    def popcount_reduce(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        w = np.asarray(words)
        lib = self._lib if self._probed else self._ensure()
        if axis is None and lib is not None and w.size:
            flat = canonicalize_words(w.reshape(1, w.size)).ravel()
            return int(lib.repro_popcount_sum(flat.ctypes.data, flat.size))
        return super().popcount_reduce(w, axis)
