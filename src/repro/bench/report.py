"""Text rendering of the regenerated tables and figure series."""

from __future__ import annotations

from repro.bench.figures import (
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
    fig9_series,
)
from repro.bench.tables import table1_report, table2_report
from repro.gpu.arch import ALL_GPUS
from repro.util.tables import render_kv, render_table

__all__ = ["render_figure_report", "render_all_reports"]


def _render_table1() -> str:
    blocks = [
        render_kv(row.items(), title=f"Table I -- {device}")
        for device, row in table1_report().items()
    ]
    return "\n\n".join(blocks)


def _render_table2() -> str:
    report = table2_report()
    headers = ["Configuration", "Core configuration", "m_r", "n_r", "k_c", "m_c"]
    rows = [
        [name, row["Core configuration"], row["m_r"], row["n_r"], row["k_c"], row["m_c"]]
        for name, row in report.items()
    ]
    return render_table(headers, rows, title="Table II -- software configurations")


def _render_fig5() -> str:
    blocks = []
    for arch in ALL_GPUS:
        series = fig5_series(arch)
        rows = [
            [p["snp_strings"], f"{p['gpops']:.1f}", f"{p['peak_gpops']:.1f}",
             f"{p['efficiency'] * 100:.1f}%"]
            for p in series
        ]
        blocks.append(
            render_table(
                ["SNP strings", "GPOPS", "peak GPOPS", "efficiency"],
                rows,
                title=f"Fig. 5 -- LD kernel throughput, {arch.name} "
                f"({series[0]['snps']} SNPs)",
            )
        )
    return "\n\n".join(blocks)


def _render_fig6() -> str:
    series = fig6_series()
    headers = ["sequences", "CPU (s)"]
    for arch in ALL_GPUS:
        headers += [f"{arch.name} (s)", f"{arch.name} speedup"]
    rows = []
    for point in series:
        row = [point["sequences"], f"{point['cpu_s']:.3f}"]
        for arch in ALL_GPUS:
            key = arch.name.lower().replace(" ", "_")
            row += [f"{point[f'{key}_s']:.3f}", f"{point[f'{key}_speedup']:.2f}x"]
        rows.append(row)
    return render_table(
        headers, rows, title="Fig. 6 -- end-to-end LD, 10,000 SNPs (CPU from [11] model)"
    )


def _render_fig7() -> str:
    blocks = []
    for arch in ALL_GPUS:
        series = fig7_series(arch)
        rows = [[p["cores"], f"{p['relative_per_core'] * 100:.1f}%"] for p in series]
        blocks.append(
            render_table(
                ["cores", "per-core relative"],
                rows,
                title=f"Fig. 7 -- scalability, {arch.name}",
            )
        )
    return "\n\n".join(blocks)


def _render_fig8() -> str:
    series = fig8_series()
    headers = ["SNPs"]
    for arch in ALL_GPUS:
        headers += [f"{arch.name} (s)", f"{arch.name} tiles"]
    rows = []
    for point in series:
        row = [point["snps"]]
        for arch in ALL_GPUS:
            key = arch.name.lower().replace(" ", "_")
            row += [f"{point[f'{key}_s']:.3f}", point[f"{key}_tiles"]]
        rows.append(row)
    return render_table(
        headers,
        rows,
        title=f"Fig. 8 -- FastID end-to-end, {series[0]['queries']} queries vs "
        f"{series[0]['db_rows']:,} profiles",
    )


def _render_fig9() -> str:
    rows = [
        [
            p["device"],
            f"{p['and_gpops']:.1f}",
            f"{p['andnot_gpops']:.1f}",
            f"{p['andnot_penalty'] * 100:.1f}%",
        ]
        for p in fig9_series()
    ]
    return render_table(
        ["device", "AND GPOPS", "AND-NOT GPOPS", "penalty"],
        rows,
        title="Fig. 9 -- AND vs AND-NOT, one compute core",
    )


def _render_ext_sparse() -> str:
    from repro.sparse.cost import SparseCostModel, density_crossover

    model = SparseCostModel()
    d_star = density_crossover(model)
    rows = []
    for density in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5):
        ratio = model.sparse_ops(64, 64, 10_000, density) / model.dense_ops(
            64, 64, 10_000
        )
        winner = "sparse" if ratio < 1 else "dense"
        rows.append([f"{density:.3f}", f"{ratio:.2f}", winner])
    table = render_table(
        ["density (mean MAF)", "sparse/dense cost", "winner"],
        rows,
        title="Extension -- sparse representation crossover (SVII future work)",
    )
    return table + f"\n\ncrossover density d* = {d_star:.3f}"


def _render_ext_multigpu() -> str:
    from repro.core.config import Algorithm
    from repro.multigpu.executor import scaling_series
    from repro.multigpu.system import DGX2_LIKE, QUAD_GTX980

    blocks = []
    for system, algo, m, n, k in (
        (DGX2_LIKE, Algorithm.LD, 8192, 131_072, 25_600),
        (QUAD_GTX980, Algorithm.FASTID_IDENTITY, 32, 8 * 1024 * 1024, 1024),
    ):
        series = scaling_series(system, algo, m, n, k)
        rows = [
            [p["devices"], f"{p['makespan_s']:.3f}", f"{p['speedup']:.2f}x",
             f"{p['efficiency'] * 100:.0f}%"]
            for p in series
        ]
        blocks.append(
            render_table(
                ["devices", "makespan (s)", "speedup", "efficiency"],
                rows,
                title=f"Extension -- {system.name}, {algo.value} "
                f"(m={m:,}, n={n:,}, k={k:,} bits)",
            )
        )
    return "\n\n".join(blocks)


_RENDERERS = {
    "table1": _render_table1,
    "table2": _render_table2,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "ext-sparse": _render_ext_sparse,
    "ext-multigpu": _render_ext_multigpu,
}


def render_figure_report(name: str) -> str:
    """Render one artifact report by name (``table1`` ... ``fig9``)."""
    key = name.strip().lower()
    if key not in _RENDERERS:
        valid = ", ".join(sorted(_RENDERERS))
        raise KeyError(f"render_figure_report: unknown artifact {name!r} ({valid})")
    return _RENDERERS[key]()


def render_all_reports() -> str:
    """Every table and figure, concatenated."""
    return "\n\n\n".join(_RENDERERS[k]() for k in _RENDERERS)
