"""Series builders for Figures 5-9.

Every builder returns plain data (lists of dicts) so the pytest
benches, the CLI report renderer and EXPERIMENTS.md generation all
consume one source of truth.  Paper-scale points are priced through
the timing-only pipeline (see :mod:`repro.model.endtoend`); the
functional executor is exercised separately by the test suite at
reduced scale.
"""

from __future__ import annotations

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.gpu.arch import ALL_GPUS, GPUArchitecture
from repro.gpu.cycles import peak_word_ops_per_second
from repro.gpu.executor import price_kernel
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.model.endtoend import estimate_cpu_seconds, estimate_end_to_end
from repro.model.peak import gpops
from repro.model.scaling import scaling_curve

__all__ = [
    "FIG5_LIMITS",
    "FIG8_DB_ROWS",
    "fig5_series",
    "fig6_series",
    "fig7_series",
    "fig8_series",
    "fig9_series",
]

#: Fig. 5 axis limits per device, from the figure caption: maximum
#: SNPs per device tile and maximum SNP-string counts.
FIG5_LIMITS: dict[str, tuple[int, int]] = {
    "GTX 980": (15_360, 12_256),
    "Titan V": (25_600, 12_256),
    "Vega 64": (40_960, 16_384),
}

#: Fig. 8 database size: "more than 20 million entries", sized after
#: the FBI NDIS database (paper footnote 4).
FIG8_DB_ROWS = 20 * 1024 * 1024


def _kernel_for(arch: GPUArchitecture, algorithm: Algorithm) -> SnpKernel:
    cfg = derive_config(arch, algorithm)
    return SnpKernel.compile(
        arch,
        cfg.op,
        m_c=cfg.m_c,
        m_r=cfg.m_r,
        k_c=cfg.k_c,
        n_r=cfg.n_r,
        grid_rows=cfg.grid_rows,
        grid_cols=cfg.grid_cols,
    )


def fig5_series(
    arch: GPUArchitecture, n_points: int = 12
) -> list[dict[str, float]]:
    """LD kernel throughput as the SNP-string count grows (Fig. 5).

    SNP count fixed near the device's per-tile maximum; string count
    sweeps geometrically up to the device maximum.  Each point carries
    throughput (GPOPS), the theoretical peak and the efficiency.
    """
    snps, max_strings = FIG5_LIMITS[arch.name]
    k_words = snps // 32
    kernel = _kernel_for(arch, Algorithm.LD)
    peak = gpops(peak_word_ops_per_second(arch, ComparisonOp.AND))
    points = []
    strings = 128
    values: list[int] = []
    while strings < max_strings:
        values.append(strings)
        strings *= 2
    values.append(max_strings)
    for m in values[-n_points:]:
        profile = price_kernel(kernel, KernelArgs(m=m, n=m, k=k_words))
        points.append(
            {
                "device": arch.name,
                "snp_strings": m,
                "snps": snps,
                "gpops": gpops(profile.throughput_word_ops),
                "peak_gpops": peak,
                "efficiency": profile.efficiency,
            }
        )
    return points


def fig6_series(
    n_values: list[int] | None = None, k_bits: int = 10_000
) -> list[dict[str, float]]:
    """End-to-end LD time, CPU baseline vs the three GPUs (Fig. 6)."""
    if n_values is None:
        n_values = [1_000, 2_000, 4_000, 6_000, 8_000, 10_000, 12_000]
    rows = []
    for n in n_values:
        cpu_s = estimate_cpu_seconds(n, n, k_bits)
        row: dict[str, float] = {"sequences": n, "cpu_s": cpu_s}
        for arch in ALL_GPUS:
            est = estimate_end_to_end(arch, Algorithm.LD, n, n, k_bits)
            key = arch.name.lower().replace(" ", "_")
            row[f"{key}_s"] = est.end_to_end_s
            row[f"{key}_speedup"] = cpu_s / est.end_to_end_s
        rows.append(row)
    return rows


def fig7_series(arch: GPUArchitecture) -> list[dict[str, float]]:
    """Per-core relative performance vs active cores (Fig. 7)."""
    return [
        {"device": arch.name, "cores": c, "relative_per_core": v}
        for c, v in scaling_curve(arch)
    ]


def fig8_series(
    k_bits_values: list[int] | None = None,
    n_queries: int = 32,
    db_rows: int = FIG8_DB_ROWS,
) -> list[dict[str, float]]:
    """FastID end-to-end time vs SNP count (Fig. 8).

    32 queries (the smallest count that fills the shared-memory banks,
    per the paper) against the NDIS-scale database.
    """
    if k_bits_values is None:
        k_bits_values = [128, 256, 512, 1024]
    rows = []
    for k_bits in k_bits_values:
        row: dict[str, float] = {"snps": k_bits, "queries": n_queries, "db_rows": db_rows}
        for arch in ALL_GPUS:
            est = estimate_end_to_end(
                arch, Algorithm.FASTID_IDENTITY, n_queries, db_rows, k_bits
            )
            key = arch.name.lower().replace(" ", "_")
            row[f"{key}_s"] = est.end_to_end_s
            row[f"{key}_tiles"] = est.n_tiles
        rows.append(row)
    return rows


def fig9_series(
    m: int = 32, n: int = 4096, k_bits: int = 16_384
) -> list[dict[str, float]]:
    """AND vs AND-NOT kernel throughput on one core (Fig. 9).

    One compute core ("to lessen the impact of scalability"), mixture
    shapes.  NVIDIA devices show no difference (fused AND-NOT); the
    Vega 64 loses throughput because the extra NOT lands on the
    ALU pipe that already bounds the kernel.
    """
    rows = []
    k_words = k_bits // 32
    for arch in ALL_GPUS:
        cfg = derive_config(arch, Algorithm.FASTID_MIXTURE)
        results = {}
        for label, op in (("and", ComparisonOp.AND), ("andnot", ComparisonOp.ANDNOT)):
            kernel = SnpKernel.compile(
                arch, op,
                m_c=cfg.m_c, m_r=cfg.m_r, k_c=cfg.k_c, n_r=cfg.n_r,
                grid_rows=1, grid_cols=1,
            )
            profile = price_kernel(kernel, KernelArgs(m=m, n=n, k=k_words))
            results[label] = gpops(profile.throughput_word_ops)
        rows.append(
            {
                "device": arch.name,
                "and_gpops": results["and"],
                "andnot_gpops": results["andnot"],
                "andnot_penalty": 1.0 - results["andnot"] / results["and"],
            }
        )
    return rows
