"""Table I and Table II regeneration.

* **Table I** combines the architecture presets (the spec-sheet rows)
  with the microbenchmark suite's *recovered* values for the
  measurement-derived rows (POPC latency and per-pipe unit counts) --
  mirroring how the paper filled in the parameters it could not find
  on spec sheets.
* **Table II** is regenerated entirely by the planner from the
  hardware features (plus the published ``n_r``/grid tunings the
  paper's Eq. 7 inequality leaves open; see DESIGN.md Section 4).
"""

from __future__ import annotations

from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.cpu.arch import XEON_E5_2620_V2
from repro.gpu.arch import ALL_GPUS
from repro.gpu.microbench import run_microbench_suite

__all__ = ["table1_report", "table2_report"]


def table1_report(include_microbench: bool = True) -> dict[str, dict[str, object]]:
    """Table I as {device: {parameter: value}} including the CPU column."""
    cpu = XEON_E5_2620_V2
    report: dict[str, dict[str, object]] = {
        cpu.name: {
            "Microarchitecture": cpu.microarchitecture,
            "Frequency (GHz)": cpu.frequency_ghz,
            "Thread Group Size (N_T)": 1,
            "Compute Cores (N_c)": cpu.n_cores,
            "Compute Clusters (N_cl)": 1,
            "32-bit addition units (N_fn^+)": cpu.add_units,
            "32-bit logical and units (N_fn^&)": cpu.and_units,
            "32-bit population count units (N_fn^popc)": cpu.popcount_units,
            "Instruction Latency (L_fn)": cpu.popcount_latency,
        }
    }
    for arch in ALL_GPUS:
        row = arch.describe()
        if include_microbench:
            mb = run_microbench_suite(arch)
            row["POPC latency (measured, cycles)"] = round(mb.popc_latency, 2)
            row["POPC units (measured, per cluster)"] = round(mb.popc_throughput, 2)
            row["ALU units (measured, per cluster)"] = round(mb.alu_throughput, 2)
            row["POPC/ALU pipes shared (measured)"] = mb.popc_alu_shared
            row["ADD/AND pipes shared (measured)"] = mb.add_and_shared
        report[arch.name] = row
    return report


def table2_report() -> dict[str, dict[str, object]]:
    """Table II: software configurations per (device, algorithm)."""
    report: dict[str, dict[str, object]] = {}
    for algorithm in (Algorithm.LD, Algorithm.FASTID_IDENTITY):
        label = (
            "Linkage disequilibrium" if algorithm is Algorithm.LD else "FastID"
        )
        for arch in ALL_GPUS:
            cfg = derive_config(arch, algorithm)
            report[f"{label} / {arch.name}"] = dict(cfg.as_table_row())
    return report
