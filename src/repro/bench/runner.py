"""Command-line bench runner: ``repro-bench [artifact ...]``.

Prints the regenerated reports for the requested artifacts (``table1``,
``table2``, ``fig5`` ... ``fig9``), or everything with ``all`` (the
default).  This is the quickest way to see paper-vs-model numbers
without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.report import render_all_reports, render_figure_report

__all__ = ["main"]

_ARTIFACTS = (
    "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
    "ext-sparse", "ext-multigpu",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures from the model.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        default=["all"],
        help=f"artifacts to render: {', '.join(_ARTIFACTS)}, or 'all'",
    )
    args = parser.parse_args(argv)

    requested = args.artifacts
    if "all" in requested:
        print(render_all_reports())
        return 0
    status = 0
    for name in requested:
        try:
            print(render_figure_report(name))
            print()
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
