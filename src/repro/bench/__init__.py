"""Experiment harness: regenerates every table and figure of the paper.

Each evaluation artifact has a series builder here and a pytest-
benchmark target under ``benchmarks/``:

==========  ===========================================  =====================
Artifact    Content                                      Builder
==========  ===========================================  =====================
Table I     Hardware parameters + microbenchmarks        tables.table1_report
Table II    Software configurations per device/algo      tables.table2_report
Fig. 5      LD kernel throughput vs #SNP strings         figures.fig5_series
Fig. 6      End-to-end LD vs CPU baseline                figures.fig6_series
Fig. 7      Per-core scaling                             figures.fig7_series
Fig. 8      FastID end-to-end, 32 queries vs 20M DB      figures.fig8_series
Fig. 9      AND vs AND-NOT on one core                   figures.fig9_series
==========  ===========================================  =====================

``python -m repro.bench.runner all`` prints every report.
"""

from repro.bench.figures import (
    FIG5_LIMITS,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
    fig9_series,
)
from repro.bench.tables import table1_report, table2_report
from repro.bench.report import render_figure_report, render_all_reports

__all__ = [
    "FIG5_LIMITS",
    "fig5_series",
    "fig6_series",
    "fig7_series",
    "fig8_series",
    "fig9_series",
    "table1_report",
    "table2_report",
    "render_figure_report",
    "render_all_reports",
]
