"""ASCII Gantt charts of simulated pipeline schedules.

Renders a :class:`~repro.gpu.device.CommandQueue`'s three engine
timelines (H2D, compute, D2H) as aligned bars, making the double-
buffering overlap of Section VI-A1 *visible*::

    h2d     |AABBBB CCCC DDDD        |
    compute |      11111 2222 3333   |
    d2h     |           aaaa bbbb cccc

Each character cell is one time quantum; distinct commands alternate
glyphs so adjacent transfers are distinguishable.
"""

from __future__ import annotations

from repro.gpu.device import CommandQueue
from repro.util.timing import TimeLine

__all__ = ["render_gantt", "overlap_fraction"]

_GLYPHS = {
    "h2d": "AB",
    "compute": "12",
    "d2h": "ab",
}


def _render_lane(
    timeline: TimeLine,
    glyphs: str,
    t0: float,
    quantum: float,
    width: int,
) -> str:
    lane = [" "] * width
    for idx, interval in enumerate(timeline.intervals):
        start = int((interval.start - t0) / quantum)
        stop = max(start + 1, int((interval.end - t0) / quantum))
        glyph = glyphs[idx % len(glyphs)]
        for cell in range(start, min(stop, width)):
            lane[cell] = glyph
    return "".join(lane)


def render_gantt(queue: CommandQueue, width: int = 72) -> str:
    """Render the queue's engine occupancy as an ASCII Gantt chart.

    Time spans from the first command start to the queue makespan;
    the OpenCL initialization period is annotated, not drawn.
    """
    lanes = {
        "h2d": queue.transfers.h2d,
        "compute": queue.compute,
        "d2h": queue.transfers.d2h,
    }
    starts = [tl.intervals[0].start for tl in lanes.values() if tl.intervals]
    if not starts:
        return "(no commands enqueued)"
    t0 = min(starts)
    t1 = queue.finish()
    span = max(t1 - t0, 1e-12)
    quantum = span / width

    label_width = max(len(name) for name in lanes)
    lines = [
        f"simulated schedule on {queue.arch.name} "
        f"(init {queue.context.ready_at * 1e3:.0f} ms not drawn; "
        f"span {span * 1e3:.3f} ms, 1 cell = {quantum * 1e6:.1f} us)"
    ]
    for name, timeline in lanes.items():
        bar = _render_lane(timeline, _GLYPHS[name], t0, quantum, width)
        lines.append(f"{name.ljust(label_width)} |{bar}|")
    lines.append(
        f"engine busy: h2d {queue.transfers.h2d.busy_time() * 1e3:.3f} ms, "
        f"compute {queue.compute.busy_time() * 1e3:.3f} ms, "
        f"d2h {queue.transfers.d2h.busy_time() * 1e3:.3f} ms; "
        f"overlap {overlap_fraction(queue) * 100:.0f}%"
    )
    return "\n".join(lines)


def overlap_fraction(queue: CommandQueue) -> float:
    """Fraction of engine busy-time hidden by overlap.

    ``1 - (makespan - idle_head) / total_busy`` clamped to [0, 1);
    0 means fully serialized engines.
    """
    busy = (
        queue.transfers.h2d.busy_time()
        + queue.compute.busy_time()
        + queue.transfers.d2h.busy_time()
    )
    if busy <= 0:
        return 0.0
    starts = [
        tl.intervals[0].start
        for tl in (queue.transfers.h2d, queue.compute, queue.transfers.d2h)
        if tl.intervals
    ]
    span = queue.finish() - min(starts)
    return max(0.0, min(1.0, 1.0 - span / busy))
