"""Machine-readable export of every regenerated artifact.

Writes the figure series and tables as CSV plus one JSON manifest, so
plots and downstream analyses can consume the reproduction's numbers
without importing the library::

    python -m repro.bench.export out_dir/

Produces ``table1.json``, ``table2.csv``, ``fig5.csv`` ... ``fig9.csv``
and ``manifest.json`` (artifact -> file, with the paper-vs-measured
headline values inline).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
from pathlib import Path

from repro.bench.figures import (
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
    fig9_series,
)
from repro.bench.tables import table1_report, table2_report
from repro.gpu.arch import ALL_GPUS

__all__ = ["export_all", "main"]


def _write_csv(path: Path, rows: list[dict[str, object]]) -> None:
    if not rows:
        path.write_text("", encoding="utf-8")
        return
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def export_all(out_dir: str | os.PathLike) -> dict[str, str]:
    """Write every artifact; returns {artifact: filename}."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, str] = {}

    t1 = table1_report()
    (out / "table1.json").write_text(
        json.dumps(t1, indent=2, default=str), encoding="utf-8"
    )
    written["table1"] = "table1.json"

    t2_rows = [
        {"configuration": name, **row} for name, row in table2_report().items()
    ]
    _write_csv(out / "table2.csv", t2_rows)
    written["table2"] = "table2.csv"

    fig5_rows = [point for arch in ALL_GPUS for point in fig5_series(arch)]
    _write_csv(out / "fig5.csv", fig5_rows)
    written["fig5"] = "fig5.csv"

    _write_csv(out / "fig6.csv", fig6_series())
    written["fig6"] = "fig6.csv"

    fig7_rows = [point for arch in ALL_GPUS for point in fig7_series(arch)]
    _write_csv(out / "fig7.csv", fig7_rows)
    written["fig7"] = "fig7.csv"

    _write_csv(out / "fig8.csv", fig8_series())
    written["fig8"] = "fig8.csv"

    _write_csv(out / "fig9.csv", fig9_series())
    written["fig9"] = "fig9.csv"

    headline = {
        "fig5_efficiency": {
            arch.name: round(fig5_series(arch)[-1]["efficiency"], 4)
            for arch in ALL_GPUS
        },
        "fig5_efficiency_paper": {
            "GTX 980": 0.907, "Titan V": 0.971, "Vega 64": 0.549,
        },
    }
    manifest = {"artifacts": written, "headline": headline}
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    written["manifest"] = "manifest.json"
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.export",
        description="Export all regenerated tables/figures as CSV/JSON.",
    )
    parser.add_argument("out_dir", help="output directory (created if missing)")
    args = parser.parse_args(argv)
    written = export_all(args.out_dir)
    for artifact, filename in sorted(written.items()):
        print(f"{artifact:10s} -> {filename}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
