"""CPU timing model: the [11] baseline the paper's Fig. 6 plots against.

The paper does not rerun the CPU; it reports "the calculated theoretical
peak that would be achievable or [uses] execution time reported in [11]"
(Section V-D).  [11]'s parallel implementation attains 80-90 % of the
popcount-bound theoretical peak, so the model here is

    time = word_ops / (efficiency * peak_word_ops_per_second)

with ``efficiency`` defaulting to the middle of that band.  The model
also exposes the two endpoints so benches can draw the uncertainty
band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.arch import CPUArchitecture, XEON_E5_2620_V2
from repro.errors import ModelError

__all__ = ["CPUTimingModel"]


@dataclass(frozen=True)
class CPUTimingModel:
    """Popcount-throughput-bound execution-time model for the CPU baseline.

    Parameters
    ----------
    arch:
        CPU description.
    efficiency:
        Fraction of theoretical peak attained (0.85 = middle of [11]'s
        80-90 % band).
    efficiency_low, efficiency_high:
        Band endpoints for uncertainty reporting.
    """

    arch: CPUArchitecture = XEON_E5_2620_V2
    efficiency: float = 0.85
    efficiency_low: float = 0.80
    efficiency_high: float = 0.90

    def __post_init__(self) -> None:
        for name in ("efficiency", "efficiency_low", "efficiency_high"):
            value = getattr(self, name)
            if not (0.0 < value <= 1.0):
                raise ModelError(f"CPUTimingModel: {name} must be in (0, 1], got {value}")
        if not (self.efficiency_low <= self.efficiency <= self.efficiency_high):
            raise ModelError(
                "CPUTimingModel: efficiency must lie within "
                "[efficiency_low, efficiency_high]"
            )

    def word_ops(self, m: int, n: int, k_bits: int) -> int:
        """Packed-word operations for an ``(m x n)`` table over ``k_bits`` sites.

        The CPU packs into ``arch.word_bits``-bit words; partial words
        are padded and still cost a full operation.
        """
        if min(m, n, k_bits) < 0:
            raise ModelError("word_ops: extents must be non-negative")
        k_words = -(-k_bits // self.arch.word_bits)
        return m * n * k_words

    def execution_time(self, m: int, n: int, k_bits: int) -> float:
        """Modeled wall time in seconds at the nominal efficiency."""
        peak = self.arch.peak_word_ops_per_second()
        return self.word_ops(m, n, k_bits) / (self.efficiency * peak)

    def execution_time_band(
        self, m: int, n: int, k_bits: int
    ) -> tuple[float, float]:
        """(fastest, slowest) modeled times over the efficiency band."""
        peak = self.arch.peak_word_ops_per_second()
        ops = self.word_ops(m, n, k_bits)
        return (
            ops / (self.efficiency_high * peak),
            ops / (self.efficiency_low * peak),
        )

    def throughput_word32_ops(self, m: int, n: int, k_bits: int) -> float:
        """Achieved throughput in 32-bit-equivalent word-ops/s.

        Normalizing to 32-bit words makes the CPU number directly
        comparable with the GPU kernel throughputs in Fig. 5.
        """
        time = self.execution_time(m, n, k_bits)
        ops32 = self.word_ops(m, n, k_bits) * (self.arch.word_bits / 32)
        return ops32 / time if time > 0 else 0.0
