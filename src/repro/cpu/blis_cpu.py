"""Functional CPU implementation: blocked popcount-GEMM on 64-bit words.

This is the Alachiotis et al. [11] algorithm the paper's Section III
describes: inputs packed into 64-bit bitvectors, BLIS blocking, and a
micro-kernel of ``AND``/``XOR``/``ANDN`` -> ``POPCNT`` -> ``ADD``.

The implementation is *functional* (it computes exact results via the
shared :mod:`repro.blis` drivers); the performance claims of the
baseline come from :mod:`repro.cpu.timing`, not from timing this Python
code.  The blocking defaults are scaled to Ivy Bridge's cache sizes the
same way [11]/BLIS derive them:

* ``k_c`` so an ``m_r x k_c`` A micro-panel plus a ``k_c x n_r``
  B micro-panel fit in half the 32 KiB L1D,
* ``m_c`` so the packed ``m_c x k_c`` A panel fills half the 256 KiB L2,
* ``m_r x n_r`` register tile bounded by the 16 architectural GPRs.
"""

from __future__ import annotations

import numpy as np

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast
from repro.blis.microkernel import ComparisonOp
from repro.cpu.arch import CPUArchitecture, XEON_E5_2620_V2
from repro.errors import PackingError
from repro.util.units import kib

__all__ = ["default_cpu_blocking", "cpu_snp_comparison"]

# Ivy Bridge cache geometry used for the default blocking derivation.
_L1D_BYTES = kib(32)
_L2_BYTES = kib(256)


def default_cpu_blocking(
    m: int,
    n: int,
    k: int,
    arch: CPUArchitecture = XEON_E5_2620_V2,
) -> BlockingPlan:
    """Derive a BLIS blocking for the CPU from cache capacities.

    Mirrors the analytical derivation of Low et al. [21] in miniature:
    register tile first, then ``k_c`` from L1, then ``m_c`` from L2.
    """
    word_bytes = arch.word_bits // 8
    # Register tile: with 16 GPRs, [11] uses a small m_r and keeps n_r
    # wide enough to amortize loop overhead; 4 x 8 accumulators exceed
    # 16 registers so accumulators spill partially -- [11] tolerates
    # this; we keep the canonical 4 x 8.
    m_r, n_r = 4, 8
    # k_c: (m_r + n_r) * k_c * word_bytes <= L1/2
    k_c = max(1, (_L1D_BYTES // 2) // ((m_r + n_r) * word_bytes))
    # m_c: m_c * k_c * word_bytes <= L2/2, rounded down to m_r multiple
    m_c = max(m_r, ((_L2_BYTES // 2) // (k_c * word_bytes)) // m_r * m_r)
    return BlockingPlan(
        m=m, n=n, k=k, m_c=m_c, k_c=k_c, m_r=m_r, n_r=n_r,
        grid_rows=1, grid_cols=1,
    )


def cpu_snp_comparison(
    a_words: np.ndarray,
    b_words: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    arch: CPUArchitecture = XEON_E5_2620_V2,
    use_blocked_path: bool | None = None,
) -> np.ndarray:
    """Compute the comparison table on the CPU baseline.

    Parameters
    ----------
    a_words, b_words:
        Packed 64-bit operands, shapes ``(m, k)`` and ``(n, k)``.
    op:
        Comparison micro-kernel to apply.
    arch:
        CPU description (only ``word_bits`` is semantically relevant).
    use_blocked_path:
        Force the blocked 5-loop walk (True) or the fast identity path
        (False).  Default: blocked for small problems (exercises the
        real structure), fast for large ones.

    Returns
    -------
    numpy.ndarray
        ``int64`` comparison counts of shape ``(m, n)``.
    """
    a = np.asarray(a_words)
    b = np.asarray(b_words)
    expected_dtype = np.uint64 if arch.word_bits == 64 else np.uint32
    if a.dtype != expected_dtype or b.dtype != expected_dtype:
        raise PackingError(
            f"cpu_snp_comparison: operands must be {expected_dtype.__name__} "
            f"words for {arch.name}, got {a.dtype}/{b.dtype}"
        )
    m, k = a.shape
    n = b.shape[0]
    if use_blocked_path is None:
        use_blocked_path = m * n * max(k, 1) <= 2_000_000
    if use_blocked_path:
        plan = default_cpu_blocking(m, n, k, arch)
        return bit_gemm_blocked(a, b, op, plan)
    return bit_gemm_fast(a, b, op)
