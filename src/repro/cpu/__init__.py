"""CPU baseline: the BLIS-style algorithm of Alachiotis et al. [11].

The paper compares its GPU framework against the CPU implementation of
[11] -- a BLIS-structured popcount-GEMM running on a dual-socket
Xeon E5-2620 v2 that attains 80-90 % of the CPU's theoretical peak
(which is bound by 64-bit population-count throughput: one POPC per
core per cycle on Ivy Bridge).

* :mod:`repro.cpu.arch` -- the CPU architecture description and the
  Table I column for the Xeon.
* :mod:`repro.cpu.blis_cpu` -- the functional blocked implementation
  operating on 64-bit packed words.
* :mod:`repro.cpu.timing` -- the timing model reproducing [11]'s
  reported performance band (the paper reuses [11]'s numbers rather
  than rerunning the CPU; see Section V-D, last paragraph).
"""

from repro.cpu.arch import CPUArchitecture, XEON_E5_2620_V2
from repro.cpu.blis_cpu import cpu_snp_comparison, default_cpu_blocking
from repro.cpu.timing import CPUTimingModel

__all__ = [
    "CPUArchitecture",
    "XEON_E5_2620_V2",
    "cpu_snp_comparison",
    "default_cpu_blocking",
    "CPUTimingModel",
]
