"""CPU architecture description (the Xeon column of Table I).

The paper maps CPU features onto the same model as the GPU: a CPU core
is one "compute core" with one "compute cluster"; SIMD units play the
role of thread groups of size ``N_T = 1`` (scalar 64-bit POPCNT on Ivy
Bridge -- there is no vector popcount before AVX-512 VPOPCNTDQ).

The theoretical peak follows [11]: the bottleneck is the POPCNT
instruction, one per core per cycle, operating on 64-bit words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CPUArchitecture", "XEON_E5_2620_V2"]


@dataclass(frozen=True)
class CPUArchitecture:
    """Model-CPU parameters (Table I, CPU column).

    Parameters
    ----------
    name, microarchitecture:
        Human-readable identification.
    frequency_ghz:
        Sustained clock under all-core load.
    n_cores:
        Total physical cores (both sockets).
    word_bits:
        Packed-word width the popcount operates on (64 on x86).
    add_units, and_units:
        Integer ALU ports able to execute ADD / AND per core
        (4 on Ivy Bridge per Fog's tables [26]).
    popcount_units:
        POPCNT-capable ports per core (1 on Ivy Bridge).
    popcount_latency:
        POPCNT latency in cycles (3 on Ivy Bridge).
    """

    name: str
    microarchitecture: str
    frequency_ghz: float
    n_cores: int
    word_bits: int = 64
    add_units: int = 4
    and_units: int = 4
    popcount_units: int = 1
    popcount_latency: int = 3

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("CPUArchitecture: frequency must be positive")
        if self.n_cores <= 0:
            raise ConfigurationError("CPUArchitecture: n_cores must be positive")
        if self.word_bits not in (32, 64):
            raise ConfigurationError(
                f"CPUArchitecture: word_bits must be 32 or 64, got {self.word_bits}"
            )

    @property
    def frequency_hz(self) -> float:
        return self.frequency_ghz * 1e9

    def peak_word_ops_per_second(self) -> float:
        """Peak popcount-GEMM word-ops/s (words of ``word_bits`` bits).

        One comparison word-op = op + POPC + ADD; POPC throughput (one
        per core-cycle) is the binding constraint since AND/ADD have
        ``add_units``-fold more ports.
        """
        return self.n_cores * self.frequency_hz * self.popcount_units

    def peak_word32_ops_per_second(self) -> float:
        """Peak normalized to 32-bit word-ops (comparable across devices)."""
        return self.peak_word_ops_per_second() * (self.word_bits / 32)


#: The evaluation workstation of [11] and this paper's Fig. 6: two
#: Intel Xeon E5-2620 v2 (Ivy Bridge) 6-core processors at 2.10 GHz.
XEON_E5_2620_V2 = CPUArchitecture(
    name="2x Intel Xeon E5-2620 v2",
    microarchitecture="Ivy Bridge",
    frequency_ghz=2.1,
    n_cores=12,
    word_bits=64,
    add_units=4,
    and_units=4,
    popcount_units=1,
    popcount_latency=3,
)
