"""Dataset persistence: NPZ (binary) and a PLINK-inspired text format.

Two formats are supported:

* **NPZ** -- the fast path for round-tripping :class:`SNPDataset` and
  :class:`ForensicDatabase` objects between runs.
* **``.snptxt``** -- a human-readable, PLINK-``.tped``-inspired format
  for small datasets and test fixtures::

      # repro snptxt v1
      #samples: s0 s1 s2
      rs1  0 1 0
      rs2  1 1 0

  One line per site: site id followed by one 0/1 token per sample
  (site-major, like ``.tped``).  Lines starting with ``#`` other than
  the two headers are comments.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import ForensicDatabase

__all__ = [
    "save_dataset_npz",
    "load_dataset_npz",
    "save_database_npz",
    "load_database_npz",
    "write_snptxt",
    "read_snptxt",
]

_SNPTXT_MAGIC = "# repro snptxt v1"


def _npz_path(path: str | os.PathLike) -> Path:
    """Normalize an NPZ target path to carry the ``.npz`` suffix.

    ``np.savez_compressed`` appends ``.npz`` to suffixless paths, so a
    save/load pair given the same bare path used to disagree about the
    file name (save wrote ``<path>.npz``, load opened ``<path>`` and
    died with a raw ``FileNotFoundError``).  Both directions normalize
    through this helper so they always agree.
    """
    p = Path(path)
    return p if p.suffix == ".npz" else p.with_name(p.name + ".npz")


def _open_npz(path: str | os.PathLike, loader: str) -> Path:
    """Resolve the on-disk NPZ for ``path``, wrapping missing files.

    Prefers the path exactly as given (files written by other tools may
    lack the suffix), then the suffix-normalized variant; a miss on
    both raises :class:`DatasetError` instead of a raw OS error.
    """
    exact = Path(path)
    if exact.is_file():
        return exact
    normalized = _npz_path(path)
    if normalized.is_file():
        return normalized
    raise DatasetError(f"{loader}: no such file: {exact} (or {normalized})")


def save_dataset_npz(path: str | os.PathLike, dataset: SNPDataset) -> None:
    """Save a dataset to ``path`` (NPZ, compressed; ``.npz`` appended
    when missing, matching what :func:`load_dataset_npz` will open)."""
    np.savez_compressed(
        _npz_path(path),
        matrix=np.packbits(dataset.matrix, axis=1),
        n_sites=np.int64(dataset.n_sites),
        sample_ids=np.array(dataset.sample_ids, dtype=np.str_),
        site_ids=np.array(dataset.site_ids, dtype=np.str_),
    )


def load_dataset_npz(path: str | os.PathLike) -> SNPDataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    with np.load(_open_npz(path, "load_dataset_npz"), allow_pickle=False) as data:
        try:
            packed = data["matrix"]
            n_sites = int(data["n_sites"])
            sample_ids = [str(s) for s in data["sample_ids"]]
            site_ids = [str(s) for s in data["site_ids"]]
        except KeyError as exc:
            raise DatasetError(f"load_dataset_npz: missing field {exc}") from exc
    matrix = np.unpackbits(packed, axis=1)[:, :n_sites].astype(np.uint8)
    return SNPDataset(matrix=matrix, sample_ids=sample_ids, site_ids=site_ids)


def save_database_npz(path: str | os.PathLike, database: ForensicDatabase) -> None:
    """Save a forensic database to ``path`` (NPZ, compressed; ``.npz``
    appended when missing, matching :func:`load_database_npz`)."""
    np.savez_compressed(
        _npz_path(path),
        profiles=np.packbits(database.profiles, axis=1),
        n_sites=np.int64(database.n_sites),
        frequencies=database.frequencies,
    )


def load_database_npz(path: str | os.PathLike) -> ForensicDatabase:
    """Load a database previously written by :func:`save_database_npz`."""
    with np.load(_open_npz(path, "load_database_npz"), allow_pickle=False) as data:
        try:
            packed = data["profiles"]
            n_sites = int(data["n_sites"])
            frequencies = data["frequencies"]
        except KeyError as exc:
            raise DatasetError(f"load_database_npz: missing field {exc}") from exc
    profiles = np.unpackbits(packed, axis=1)[:, :n_sites].astype(np.uint8)
    return ForensicDatabase(profiles=profiles, frequencies=frequencies)


def write_snptxt(path: str | os.PathLike, dataset: SNPDataset) -> None:
    """Write a dataset in the ``.snptxt`` text format (site-major)."""
    lines = [_SNPTXT_MAGIC, "#samples: " + " ".join(dataset.sample_ids)]
    for j, site_id in enumerate(dataset.site_ids):
        tokens = " ".join(str(int(v)) for v in dataset.matrix[:, j])
        lines.append(f"{site_id} {tokens}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_snptxt(path: str | os.PathLike) -> SNPDataset:
    """Read a ``.snptxt`` file written by :func:`write_snptxt`."""
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines or lines[0].strip() != _SNPTXT_MAGIC:
        raise DatasetError(f"read_snptxt: {path} is not a snptxt v1 file")
    sample_ids: list[str] | None = None
    site_ids: list[str] = []
    rows: list[list[int]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#samples:"):
            sample_ids = stripped[len("#samples:") :].split()
            continue
        if stripped.startswith("#"):
            continue
        tokens = stripped.split()
        site_ids.append(tokens[0])
        try:
            values = [int(t) for t in tokens[1:]]
        except ValueError as exc:
            raise DatasetError(
                f"read_snptxt: non-integer genotype at line {lineno}"
            ) from exc
        if any(v not in (0, 1) for v in values):
            raise DatasetError(f"read_snptxt: non-binary genotype at line {lineno}")
        rows.append(values)
    if sample_ids is None:
        raise DatasetError("read_snptxt: missing '#samples:' header")
    if not rows:
        matrix = np.zeros((len(sample_ids), 0), dtype=np.uint8)
        return SNPDataset(matrix=matrix, sample_ids=sample_ids, site_ids=[])
    widths = {len(r) for r in rows}
    if widths != {len(sample_ids)}:
        raise DatasetError(
            f"read_snptxt: rows have sample counts {sorted(widths)}, "
            f"expected {len(sample_ids)}"
        )
    site_major = np.array(rows, dtype=np.uint8)
    return SNPDataset(
        matrix=site_major.T.copy(), sample_ids=sample_ids, site_ids=site_ids
    )
