"""Pedigree simulation: genetically related profiles with known truth.

The kinship screen (:mod:`repro.snp.kinship`) needs validation data
where relatedness is *known by construction*.  This module simulates
presence/absence profiles under a simple transmission model consistent
with the library's binary representation:

* a **founder** carries each site's minor allele with probability
  ``p_k`` (the panel frequency);
* a **child** of two parents carries the minor allele if it inherits
  it from either parent -- each parental minor allele transmits
  independently with probability 1/2 (one of two chromosomes), so

      P(child has allele) = 1 - (1 - m/2)^(parents with allele m in {0,1,2})
                            adjusted for the population allele the
                            untransmitted chromosome may carry.

  We use the standard presence-state approximation: a parent showing
  the allele transmits it with probability 1/2; a parent not showing
  it contributes population background with probability ``p_k / 2``
  (the untyped second haplotype).  This yields the qualitative IBS
  ordering the screen must recover: duplicates > parent-child ≈
  siblings > unrelated.

Expected IBS values under this model are exposed analytically
(:func:`expected_ibs`) so tests can check the screen against theory,
not just against sampled data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError

__all__ = ["Pedigree", "expected_ibs"]


@dataclass
class Pedigree:
    """A growing set of profiles with recorded parentage.

    Parameters
    ----------
    frequencies:
        Per-site minor-allele frequencies of the founding population.
    rng:
        Seed or generator for reproducibility.
    """

    frequencies: np.ndarray
    rng: np.random.Generator | int | None = None
    profiles: list[np.ndarray] = field(default_factory=list)
    parents: list[tuple[int, int] | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=np.float64)
        if self.frequencies.ndim != 1 or self.frequencies.size == 0:
            raise DatasetError("Pedigree: frequencies must be a non-empty vector")
        if self.frequencies.min() < 0 or self.frequencies.max() > 1:
            raise DatasetError("Pedigree: frequencies outside [0, 1]")
        if not isinstance(self.rng, np.random.Generator):
            self.rng = np.random.default_rng(self.rng)

    @property
    def n_sites(self) -> int:
        return int(self.frequencies.size)

    @property
    def n_individuals(self) -> int:
        return len(self.profiles)

    def add_founder(self) -> int:
        """Draw an unrelated individual from the population; returns id."""
        profile = (self.rng.random(self.n_sites) < self.frequencies).astype(np.uint8)
        self.profiles.append(profile)
        self.parents.append(None)
        return len(self.profiles) - 1

    def add_child(self, mother: int, father: int) -> int:
        """Simulate a child of two existing individuals; returns id."""
        for name, idx in (("mother", mother), ("father", father)):
            if not (0 <= idx < self.n_individuals):
                raise DatasetError(f"add_child: unknown {name} index {idx}")
        p = self.frequencies
        child = np.zeros(self.n_sites, dtype=np.uint8)
        for parent_idx in (mother, father):
            parent = self.profiles[parent_idx]
            # A displaying parent transmits the allele w.p. 1/2; a
            # non-displaying parent's transmitted haplotype carries the
            # population allele w.p. p/2 (one untyped chromosome).
            transmit_prob = np.where(parent == 1, 0.5, p / 2.0)
            transmitted = self.rng.random(self.n_sites) < transmit_prob
            child |= transmitted.astype(np.uint8)
        self.profiles.append(child)
        self.parents.append((mother, father))
        return len(self.profiles) - 1

    def matrix(self) -> np.ndarray:
        """All profiles as a (n_individuals, n_sites) binary matrix."""
        if not self.profiles:
            return np.zeros((0, self.n_sites), dtype=np.uint8)
        return np.vstack(self.profiles)

    def relationship(self, a: int, b: int) -> str:
        """"self", "parent-child", "siblings", or "unrelated" (by records)."""
        if a == b:
            return "self"
        pa, pb = self.parents[a], self.parents[b]
        if pa is not None and b in pa:
            return "parent-child"
        if pb is not None and a in pb:
            return "parent-child"
        if pa is not None and pb is not None and set(pa) & set(pb):
            return "siblings"
        return "unrelated"


def expected_ibs(frequencies: np.ndarray, relationship: str = "unrelated") -> float:
    """Analytical mean IBS between two profiles of a given relationship.

    Computed *exactly* under the transmission model of
    :meth:`Pedigree.add_child` by enumerating the four parent-state
    combinations per site: with transmit probabilities
    ``t(1) = 1/2`` and ``t(0) = p/2``, a child shows the allele with
    ``P(C=1 | M, D) = 1 - (1 - t(M))(1 - t(D))``.

    * unrelated: ``mean(p^2 + (1-p)^2)``;
    * parent-child: agreement of (M, C) marginalized over D;
    * siblings: agreement of two conditionally independent children
      marginalized over (M, D);
    * self: 1.
    """
    p = np.asarray(frequencies, dtype=np.float64)
    if relationship == "unrelated":
        return float(np.mean(p**2 + (1 - p) ** 2))
    if relationship == "self":
        return 1.0
    if relationship not in ("parent-child", "siblings"):
        raise DatasetError(f"expected_ibs: unknown relationship {relationship!r}")

    def transmit(state: int) -> np.ndarray:
        return np.full_like(p, 0.5) if state else p / 2.0

    parent_child = np.zeros_like(p)
    siblings = np.zeros_like(p)
    for m_state in (0, 1):
        w_m = p if m_state else 1 - p
        for d_state in (0, 1):
            w = w_m * (p if d_state else 1 - p)
            child_shows = 1.0 - (1.0 - transmit(m_state)) * (1.0 - transmit(d_state))
            agree_mc = child_shows if m_state else 1.0 - child_shows
            parent_child += w * agree_mc
            # Two children are i.i.d. given the parents.
            siblings += w * (child_shows**2 + (1.0 - child_shows) ** 2)
    chosen = parent_child if relationship == "parent-child" else siblings
    return float(np.mean(chosen))
