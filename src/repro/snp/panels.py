"""Named SNP panel presets: parameterized workload families.

The evaluation workloads of the paper and the broader literature fall
into a few recognizable families.  This module names them, so benches
and examples can say *which* kind of panel they model instead of
passing bare numbers:

* ``FORENSIC_CORE`` -- a compact identity panel (dozens of highly
  informative common SNPs, in the spirit of selected AISNP/IISNP core
  sets).
* ``FORENSIC_EXTENDED`` -- the FastID-scale kilosnp panel the paper's
  Fig. 8 sweeps toward (hundreds to ~1024 sites).
* ``GWAS_ARRAY`` -- genotyping-array scale for LD scans (tens of
  thousands of sites, rare-skewed spectrum, block structure).
* ``WGS_COMMON`` -- sequencing-derived common variants (large site
  count, strongly rare-skewed).

Each preset bundles the site count, the frequency-spectrum parameters
of the generators, and block structure, and knows how to materialize
datasets/databases.  All panels are synthetic; the names encode the
*shape*, not real marker lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import ForensicDatabase, generate_database
from repro.snp.generator import PopulationModel, generate_population

__all__ = [
    "PanelSpec",
    "FORENSIC_CORE",
    "FORENSIC_EXTENDED",
    "GWAS_ARRAY",
    "WGS_COMMON",
    "ALL_PANELS",
    "get_panel",
]


@dataclass(frozen=True)
class PanelSpec:
    """A named SNP panel family."""

    name: str
    description: str
    n_sites: int
    maf_alpha: float
    maf_beta: float
    block_size: int = 1
    founders_per_block: int = 4

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise DatasetError(f"PanelSpec {self.name!r}: n_sites must be positive")

    def population(
        self, n_samples: int, rng: np.random.Generator | int | None = None
    ) -> SNPDataset:
        """A cohort genotyped on this panel."""
        model = PopulationModel(
            n_samples=n_samples,
            n_sites=self.n_sites,
            maf_alpha=self.maf_alpha,
            maf_beta=self.maf_beta,
            block_size=self.block_size,
            founders_per_block=self.founders_per_block,
        )
        return generate_population(model, rng=rng)

    def database(
        self, n_profiles: int, rng: np.random.Generator | int | None = None
    ) -> ForensicDatabase:
        """A reference database of profiles on this panel."""
        return generate_database(
            n_profiles,
            self.n_sites,
            rng=rng,
            maf_alpha=self.maf_alpha,
            maf_beta=self.maf_beta,
        )

    @property
    def expected_density(self) -> float:
        """Mean MAF implied by the Beta spectrum (clipped at 0.5)."""
        mean = self.maf_alpha / (self.maf_alpha + self.maf_beta)
        return min(mean, 0.5)


FORENSIC_CORE = PanelSpec(
    name="forensic-core",
    description="compact identity panel of highly informative common SNPs",
    n_sites=96,
    maf_alpha=6.0,
    maf_beta=6.0,
)

FORENSIC_EXTENDED = PanelSpec(
    name="forensic-extended",
    description="FastID-scale kilosnp identity/mixture panel (Fig. 8 regime)",
    n_sites=1024,
    maf_alpha=2.0,
    maf_beta=3.0,
)

GWAS_ARRAY = PanelSpec(
    name="gwas-array",
    description="genotyping-array LD-scan panel with haplotype blocks",
    n_sites=20_000,
    maf_alpha=0.9,
    maf_beta=4.0,
    block_size=50,
    founders_per_block=6,
)

WGS_COMMON = PanelSpec(
    name="wgs-common",
    description="sequencing-derived panel, strongly rare-skewed spectrum",
    n_sites=50_000,
    maf_alpha=0.4,
    maf_beta=8.0,
    block_size=100,
    founders_per_block=8,
)

ALL_PANELS: tuple[PanelSpec, ...] = (
    FORENSIC_CORE,
    FORENSIC_EXTENDED,
    GWAS_ARRAY,
    WGS_COMMON,
)

_BY_NAME = {p.name: p for p in ALL_PANELS}


def get_panel(name: str) -> PanelSpec:
    """Look up a panel preset by name."""
    panel = _BY_NAME.get(name.strip().lower())
    if panel is None:
        valid = ", ".join(sorted(_BY_NAME))
        raise DatasetError(f"get_panel: unknown panel {name!r} (valid: {valid})")
    return panel
