"""Population-genetics summary statistics over binary SNP matrices.

Light statistical companions to the LD application (Section II-A's
domain): per-site diversity and between-cohort differentiation.  All
operate on the presence/absence representation, treating each row as a
haploid presence vector (consistent with the rest of the library).

* **Expected heterozygosity** ``H_exp = 2 p (1 - p)`` per site, and its
  mean over sites (gene diversity).
* **Hudson's Fst** between two cohorts, site-wise and as the standard
  ratio-of-averages estimator (Bhatia et al. 2013's recommendation):

      Fst = sum_k N_k / sum_k D_k,
      N_k = (p1 - p2)^2 - p1(1-p1)/(n1-1) - p2(1-p2)/(n2-1),
      D_k = p1(1-p2) + p2(1-p1)

* **Site-frequency spectrum** histogram, the generator-validation tool.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "expected_heterozygosity",
    "gene_diversity",
    "hudson_fst",
    "site_frequency_spectrum",
]


def _as_binary(name: str, matrix: np.ndarray) -> np.ndarray:
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise DatasetError(f"{name}: expected a 2-D binary matrix")
    if m.size and not np.isin(m, (0, 1)).all():
        raise DatasetError(f"{name}: matrix must be binary")
    return m


def expected_heterozygosity(matrix: np.ndarray) -> np.ndarray:
    """Per-site ``2 p (1 - p)`` from sample frequencies."""
    m = _as_binary("expected_heterozygosity", matrix)
    if m.shape[0] == 0:
        raise DatasetError("expected_heterozygosity: no samples")
    p = m.mean(axis=0)
    return 2.0 * p * (1.0 - p)


def gene_diversity(matrix: np.ndarray) -> float:
    """Mean expected heterozygosity over sites (0 for zero sites)."""
    h = expected_heterozygosity(matrix)
    return float(h.mean()) if h.size else 0.0


def hudson_fst(
    cohort_a: np.ndarray, cohort_b: np.ndarray
) -> tuple[float, np.ndarray]:
    """Hudson's Fst between two cohorts.

    Returns ``(ratio_of_averages, per_site_numerator/denominator)``;
    sites with zero denominator contribute NaN site-wise and are
    excluded from the global ratio.
    """
    a = _as_binary("hudson_fst", cohort_a)
    b = _as_binary("hudson_fst", cohort_b)
    if a.shape[1] != b.shape[1]:
        raise DatasetError(
            f"hudson_fst: site counts differ ({a.shape[1]} vs {b.shape[1]})"
        )
    n1, n2 = a.shape[0], b.shape[0]
    if n1 < 2 or n2 < 2:
        raise DatasetError("hudson_fst: each cohort needs >= 2 samples")
    p1 = a.mean(axis=0)
    p2 = b.mean(axis=0)
    num = (
        (p1 - p2) ** 2
        - p1 * (1 - p1) / (n1 - 1)
        - p2 * (1 - p2) / (n2 - 1)
    )
    den = p1 * (1 - p2) + p2 * (1 - p1)
    with np.errstate(invalid="ignore", divide="ignore"):
        per_site = np.where(den > 0, num / den, np.nan)
    informative = den > 0
    if not informative.any():
        raise DatasetError("hudson_fst: no polymorphic sites shared")
    global_fst = float(num[informative].sum() / den[informative].sum())
    return global_fst, per_site


def site_frequency_spectrum(
    matrix: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-site frequencies over (0, 0.5].

    Returns ``(counts, bin_edges)``; monomorphic sites (p = 0) are
    excluded, frequencies above 0.5 are folded (minor-allele
    convention).
    """
    m = _as_binary("site_frequency_spectrum", matrix)
    if m.shape[0] == 0:
        raise DatasetError("site_frequency_spectrum: no samples")
    if n_bins <= 0:
        raise DatasetError("site_frequency_spectrum: n_bins must be positive")
    p = m.mean(axis=0)
    folded = np.minimum(p, 1.0 - p)
    folded = folded[folded > 0]
    counts, edges = np.histogram(folded, bins=n_bins, range=(0.0, 0.5))
    return counts, edges
