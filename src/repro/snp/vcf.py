"""Minimal VCF reader: the interchange format of real SNP pipelines.

Parses the subset of the Variant Call Format (v4.x) the comparison
framework needs -- biallelic SNP records with per-sample ``GT``
genotype fields -- and reduces directly to the binary minor-allele
presence representation of :class:`~repro.snp.dataset.SNPDataset`.

Supported / enforced:

* header ``#CHROM`` line defining sample columns;
* ``GT`` as the first (or only) FORMAT key; separators ``/`` and ``|``;
  haploid calls; missing calls (``.``) treated as absence (matching
  :mod:`repro.snp.alleles`);
* multi-allelic records (``ALT`` with commas): any non-reference
  allele counts as "minor allele present" after reduction, which is
  the only semantics the bit-packed kernels can represent;
* records failing ``FILTER`` (anything but ``PASS`` or ``.``) are
  skipped by default.

Deliberately out of scope: ``##contig`` metadata, INFO parsing,
structural variants, gVCF blocks, bgzip (feed decompressed text).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset

__all__ = ["read_vcf", "write_vcf"]


def _parse_gt(token: str, line_no: int) -> int:
    """GT field -> 1 iff any non-reference allele is called."""
    gt = token.split(":", 1)[0]
    if not gt:
        raise DatasetError(f"read_vcf: empty sample field at line {line_no}")
    alleles = gt.replace("|", "/").split("/")
    present = 0
    for allele in alleles:
        if allele in (".", ""):
            continue
        try:
            idx = int(allele)
        except ValueError as exc:
            raise DatasetError(
                f"read_vcf: malformed GT {gt!r} at line {line_no}"
            ) from exc
        if idx > 0:
            present = 1
    return present


def read_vcf(
    path: str | os.PathLike,
    require_pass: bool = True,
) -> SNPDataset:
    """Read a (plain-text) VCF into a binary :class:`SNPDataset`.

    Rows are samples, columns are sites (the library's sample-major
    orientation); site ids come from the ID column, falling back to
    ``chrom:pos`` for ``.`` ids.
    """
    text = Path(path).read_text(encoding="utf-8")
    sample_ids: list[str] | None = None
    site_ids: list[str] = []
    columns: list[list[int]] = []

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("##"):
            continue
        if line.startswith("#CHROM"):
            fields = line.rstrip("\n").split("\t")
            if len(fields) < 10 or fields[8] != "FORMAT":
                raise DatasetError(
                    f"read_vcf: malformed #CHROM header at line {line_no} "
                    "(need FORMAT plus at least one sample column)"
                )
            sample_ids = fields[9:]
            continue
        if line.startswith("#"):
            continue
        if sample_ids is None:
            raise DatasetError(
                f"read_vcf: data record before #CHROM header at line {line_no}"
            )
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 9 + len(sample_ids):
            raise DatasetError(
                f"read_vcf: line {line_no} has {len(fields)} columns, "
                f"expected {9 + len(sample_ids)}"
            )
        chrom, pos, vid, ref, alt, _qual, filt, _info, fmt = fields[:9]
        if require_pass and filt not in ("PASS", "."):
            continue
        if not fmt.split(":")[0] == "GT":
            raise DatasetError(
                f"read_vcf: FORMAT at line {line_no} does not lead with GT"
            )
        if len(ref) != 1 or any(len(a) != 1 for a in alt.split(",")):
            # Indel / structural record: not a SNP, skip.
            continue
        site_ids.append(vid if vid != "." else f"{chrom}:{pos}")
        columns.append([_parse_gt(tok, line_no) for tok in fields[9:]])

    if sample_ids is None:
        raise DatasetError("read_vcf: no #CHROM header found")
    if columns:
        matrix = np.array(columns, dtype=np.uint8).T.copy()
    else:
        matrix = np.zeros((len(sample_ids), 0), dtype=np.uint8)
    return SNPDataset(matrix=matrix, sample_ids=sample_ids, site_ids=site_ids)


def write_vcf(path: str | os.PathLike, dataset: SNPDataset) -> None:
    """Write a dataset as a minimal VCF (synthetic REF/ALT of A/G).

    Presence of the minor allele becomes a heterozygous ``0/1`` call;
    absence ``0/0`` -- the information the binary representation holds.
    """
    lines = [
        "##fileformat=VCFv4.2",
        "##source=repro",
        '##FORMAT=<ID=GT,Number=1,Type=String,Description="Genotype">',
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t"
        + "\t".join(dataset.sample_ids),
    ]
    for j, site_id in enumerate(dataset.site_ids):
        calls = "\t".join(
            "0/1" if dataset.matrix[i, j] else "0/0"
            for i in range(dataset.n_samples)
        )
        lines.append(f"1\t{j + 1}\t{site_id}\tA\tG\t.\tPASS\t.\tGT\t{calls}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
