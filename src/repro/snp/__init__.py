"""Genetics substrate: SNP datasets, synthetic populations, forensic DBs.

This package provides everything *upstream* of the comparison kernels:

* :mod:`repro.snp.alleles` -- encoding of genotypes into the binary
  minor-allele presence/absence representation the paper computes on
  (Fig. 2 of the paper).
* :mod:`repro.snp.dataset` -- the :class:`SNPDataset` container
  (samples x sites binary matrix plus metadata).
* :mod:`repro.snp.generator` -- synthetic population generation with a
  realistic allele-frequency spectrum and optional LD block structure.
* :mod:`repro.snp.forensic` -- forensic profile databases, queries and
  DNA mixtures for the FastID workloads.
* :mod:`repro.snp.stats` -- naive (unpacked, quadratic) reference
  implementations of LD statistics used as test oracles.
* :mod:`repro.snp.io` -- simple text and NPZ persistence.
"""

from repro.snp.alleles import (
    GENOTYPE_HOMOZYGOUS_MAJOR,
    GENOTYPE_HETEROZYGOUS,
    GENOTYPE_HOMOZYGOUS_MINOR,
    GENOTYPE_MISSING,
    encode_genotypes,
    minor_allele_presence,
)
from repro.snp.dataset import SNPDataset
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.forensic import (
    ForensicDatabase,
    generate_database,
    generate_queries,
    make_mixture,
)
from repro.snp.stats import (
    ld_counts_naive,
    ld_d,
    ld_d_prime,
    ld_r_squared,
    identity_distances_naive,
    mixture_scores_naive,
)
from repro.snp.kinship import KinshipResult, ibs_matrix, kinship_screen
from repro.snp.panels import (
    ALL_PANELS,
    FORENSIC_CORE,
    FORENSIC_EXTENDED,
    GWAS_ARRAY,
    WGS_COMMON,
    PanelSpec,
    get_panel,
)
from repro.snp.significance import (
    ld_chi_square_pvalues,
    random_match_probability,
    panel_sites_for_target_rmp,
)
from repro.snp.ld_decay import (
    DecayCurve,
    detect_blocks,
    half_decay_distance,
    ld_decay_curve,
)
from repro.snp.popstats import gene_diversity, hudson_fst
from repro.snp.pedigree import Pedigree, expected_ibs

__all__ = [
    "GENOTYPE_HOMOZYGOUS_MAJOR",
    "GENOTYPE_HETEROZYGOUS",
    "GENOTYPE_HOMOZYGOUS_MINOR",
    "GENOTYPE_MISSING",
    "encode_genotypes",
    "minor_allele_presence",
    "SNPDataset",
    "PopulationModel",
    "generate_population",
    "ForensicDatabase",
    "generate_database",
    "generate_queries",
    "make_mixture",
    "ld_counts_naive",
    "ld_d",
    "ld_d_prime",
    "ld_r_squared",
    "identity_distances_naive",
    "mixture_scores_naive",
    "KinshipResult",
    "ibs_matrix",
    "kinship_screen",
    "ALL_PANELS",
    "FORENSIC_CORE",
    "FORENSIC_EXTENDED",
    "GWAS_ARRAY",
    "WGS_COMMON",
    "PanelSpec",
    "get_panel",
    "ld_chi_square_pvalues",
    "random_match_probability",
    "panel_sites_for_target_rmp",
    "DecayCurve",
    "detect_blocks",
    "half_decay_distance",
    "ld_decay_curve",
    "gene_diversity",
    "hudson_fst",
    "Pedigree",
    "expected_ibs",
]
