"""Allele and genotype encoding.

The comparison kernels operate on *binary minor-allele presence*
matrices (the paper's Fig. 2): entry ``(i, j)`` is 1 iff sample ``i``
carries at least one copy of the minor allele at SNP site ``j``.

Raw genotype data is richer: at a biallelic site a diploid sample is
homozygous-major (0 copies of the minor allele), heterozygous (1 copy),
homozygous-minor (2 copies), or missing.  This module defines the
integer genotype codes and the reduction to the binary representation.

Missing genotypes are conservatively treated as *absence* of the minor
allele (code 0 after reduction); this matches the dense-bitvector
formulation in Alachiotis et al. [11] where the packed matrix has no
missing-data channel.  Callers that need missing-aware statistics
should filter sites upstream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "GENOTYPE_HOMOZYGOUS_MAJOR",
    "GENOTYPE_HETEROZYGOUS",
    "GENOTYPE_HOMOZYGOUS_MINOR",
    "GENOTYPE_MISSING",
    "VALID_GENOTYPES",
    "encode_genotypes",
    "minor_allele_presence",
    "minor_allele_frequencies",
]

GENOTYPE_HOMOZYGOUS_MAJOR = 0
GENOTYPE_HETEROZYGOUS = 1
GENOTYPE_HOMOZYGOUS_MINOR = 2
GENOTYPE_MISSING = 3

VALID_GENOTYPES = (
    GENOTYPE_HOMOZYGOUS_MAJOR,
    GENOTYPE_HETEROZYGOUS,
    GENOTYPE_HOMOZYGOUS_MINOR,
    GENOTYPE_MISSING,
)


def encode_genotypes(minor_allele_copies: np.ndarray) -> np.ndarray:
    """Encode per-sample minor-allele copy counts as genotype codes.

    Parameters
    ----------
    minor_allele_copies:
        Integer array with values in {0, 1, 2} (copies of the minor
        allele) or negative values meaning *missing*.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of genotype codes.
    """
    copies = np.asarray(minor_allele_copies)
    if copies.size and copies.max(initial=0) > 2:
        raise DatasetError(
            "encode_genotypes: copy counts above 2 are invalid for diploid data"
        )
    codes = np.where(copies < 0, GENOTYPE_MISSING, copies)
    return codes.astype(np.uint8)


def minor_allele_presence(genotypes: np.ndarray) -> np.ndarray:
    """Reduce genotype codes to the binary presence/absence matrix.

    1 iff the genotype carries at least one minor-allele copy
    (heterozygous or homozygous-minor); missing reduces to 0.
    """
    g = np.asarray(genotypes)
    if g.size and not np.isin(g, VALID_GENOTYPES).all():
        bad = np.unique(g[~np.isin(g, VALID_GENOTYPES)])
        raise DatasetError(f"minor_allele_presence: invalid genotype codes {bad}")
    return (
        (g == GENOTYPE_HETEROZYGOUS) | (g == GENOTYPE_HOMOZYGOUS_MINOR)
    ).astype(np.uint8)


def minor_allele_frequencies(genotypes: np.ndarray) -> np.ndarray:
    """Per-site minor allele frequency from a (samples, sites) genotype matrix.

    Missing genotypes are excluded from both numerator and denominator.
    Sites where every genotype is missing get frequency 0.0.
    """
    g = np.asarray(genotypes)
    if g.ndim != 2:
        raise DatasetError(
            f"minor_allele_frequencies: expected (samples, sites), got ndim={g.ndim}"
        )
    present = g != GENOTYPE_MISSING
    copies = np.where(present, g, 0).astype(np.int64)
    n_alleles = 2 * present.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        freq = np.where(n_alleles > 0, copies.sum(axis=0) / np.maximum(n_alleles, 1), 0.0)
    return freq
