"""Synthetic population generation.

The paper evaluates on "simulated datasets" (Fig. 6 caption).  This
module generates binary SNP matrices with two layers of realism that
matter for the *statistics* computed downstream (they do not change the
kernels' cost, which depends only on matrix shape):

1. **Allele-frequency spectrum** -- minor-allele frequencies are drawn
   from a Beta distribution skewed toward rare variants, mimicking the
   site-frequency spectrum of neutral polymorphism (most SNPs rare).
2. **LD block structure** -- optionally, consecutive sites are grouped
   into haplotype blocks; within a block, each sample copies one of a
   small pool of founder haplotypes (with per-site mutation noise),
   producing strong within-block correlation and near-zero
   between-block correlation.  This gives the LD benches non-trivial
   D/r-squared structure to validate against the naive oracle.

All randomness flows through an explicit :class:`numpy.random.Generator`
seeded by the caller, so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset

__all__ = ["PopulationModel", "generate_population", "generate_uniform_matrix"]


@dataclass(frozen=True)
class PopulationModel:
    """Parameters of the synthetic population.

    Parameters
    ----------
    n_samples:
        Number of individuals.
    n_sites:
        Number of SNP sites.
    maf_alpha, maf_beta:
        Beta-distribution shape parameters for the minor-allele
        frequency spectrum.  The defaults (0.8, 4.0) put most mass
        below 0.2, a rare-variant-heavy spectrum.
    maf_floor:
        Minimum allowed MAF; sites below it are clamped so no site is
        monomorphic (monomorphic sites carry no LD signal and are
        normally filtered upstream).
    block_size:
        If > 1, sites are organized into LD blocks of this many
        consecutive sites.
    founders_per_block:
        Size of the founder-haplotype pool per block (smaller = more LD).
    recombination_noise:
        Per-site probability that a sample's bit is re-drawn
        independently of its founder haplotype (decays LD toward 0).
    """

    n_samples: int
    n_sites: int
    maf_alpha: float = 0.8
    maf_beta: float = 4.0
    maf_floor: float = 0.02
    block_size: int = 1
    founders_per_block: int = 4
    recombination_noise: float = 0.02

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.n_sites <= 0:
            raise DatasetError(
                f"PopulationModel: n_samples and n_sites must be positive, "
                f"got ({self.n_samples}, {self.n_sites})"
            )
        if not (0 < self.maf_floor < 0.5):
            raise DatasetError(
                f"PopulationModel: maf_floor must be in (0, 0.5), got {self.maf_floor}"
            )
        if self.block_size < 1:
            raise DatasetError(
                f"PopulationModel: block_size must be >= 1, got {self.block_size}"
            )
        if self.founders_per_block < 1:
            raise DatasetError(
                "PopulationModel: founders_per_block must be >= 1, "
                f"got {self.founders_per_block}"
            )
        if not (0.0 <= self.recombination_noise <= 1.0):
            raise DatasetError(
                "PopulationModel: recombination_noise must be in [0, 1], "
                f"got {self.recombination_noise}"
            )


def _draw_frequencies(model: PopulationModel, rng: np.random.Generator) -> np.ndarray:
    freqs = rng.beta(model.maf_alpha, model.maf_beta, size=model.n_sites)
    # By definition the *minor* allele frequency is <= 0.5.
    freqs = np.minimum(freqs, 0.5)
    return np.clip(freqs, model.maf_floor, 0.5)


def generate_population(
    model: PopulationModel,
    rng: np.random.Generator | int | None = None,
) -> SNPDataset:
    """Generate a synthetic binary SNP dataset under ``model``.

    Parameters
    ----------
    model:
        Population parameters.
    rng:
        A :class:`numpy.random.Generator`, an integer seed, or ``None``
        for OS entropy.

    Returns
    -------
    SNPDataset
        Shape ``(model.n_samples, model.n_sites)``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    freqs = _draw_frequencies(model, rng)
    if model.block_size == 1:
        matrix = (rng.random((model.n_samples, model.n_sites)) < freqs).astype(np.uint8)
        return SNPDataset(matrix=matrix)

    matrix = np.zeros((model.n_samples, model.n_sites), dtype=np.uint8)
    for start in range(0, model.n_sites, model.block_size):
        stop = min(start + model.block_size, model.n_sites)
        width = stop - start
        block_freqs = freqs[start:stop]
        # Founder haplotypes drawn from the block's site frequencies.
        founders = (
            rng.random((model.founders_per_block, width)) < block_freqs
        ).astype(np.uint8)
        choice = rng.integers(0, model.founders_per_block, size=model.n_samples)
        block = founders[choice]
        # Recombination/mutation noise: re-draw a site independently.
        if model.recombination_noise > 0:
            redraw = rng.random((model.n_samples, width)) < model.recombination_noise
            fresh = (rng.random((model.n_samples, width)) < block_freqs).astype(np.uint8)
            block = np.where(redraw, fresh, block)
        matrix[:, start:stop] = block
    return SNPDataset(matrix=matrix)


def generate_uniform_matrix(
    n_rows: int,
    n_cols: int,
    density: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """I.i.d. Bernoulli binary matrix -- the workload-shape generator.

    Used by benches where only the *shape* of the computation matters
    (kernel throughput sweeps); ``density`` is the probability of a 1.
    """
    if n_rows < 0 or n_cols < 0:
        raise DatasetError(
            f"generate_uniform_matrix: negative shape ({n_rows}, {n_cols})"
        )
    if not (0.0 <= density <= 1.0):
        raise DatasetError(
            f"generate_uniform_matrix: density must be in [0, 1], got {density}"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return (rng.random((n_rows, n_cols)) < density).astype(np.uint8)
