"""The :class:`SNPDataset` container.

A dataset is a binary (samples x sites) minor-allele presence matrix
plus optional identifiers.  It is the boundary object between the
genetics substrate and the comparison framework: everything downstream
(packing, kernels) consumes ``dataset.matrix``.

Terminology note: the paper calls a row a "SNP string" or "sequence"
(one individual's packed bitvector across SNP sites); we call rows
*samples* and columns *sites* throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError

__all__ = ["SNPDataset"]


@dataclass
class SNPDataset:
    """Binary SNP matrix with sample/site identifiers.

    Parameters
    ----------
    matrix:
        ``uint8`` array of shape ``(n_samples, n_sites)`` with values
        in {0, 1}: 1 marks presence of the minor allele.
    sample_ids:
        Optional sequence of unique sample identifiers; defaults to
        ``sample_0000`` style names.
    site_ids:
        Optional sequence of unique site identifiers; defaults to
        ``rs<index>`` style names.
    """

    matrix: np.ndarray
    sample_ids: list[str] = field(default_factory=list)
    site_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix)
        if m.ndim != 2:
            raise DatasetError(f"SNPDataset: matrix must be 2-D, got ndim={m.ndim}")
        if m.dtype != np.uint8:
            if m.dtype == np.bool_:
                m = m.astype(np.uint8)
            else:
                if m.size and not np.isin(m, (0, 1)).all():
                    raise DatasetError("SNPDataset: matrix must be binary (0/1)")
                m = m.astype(np.uint8)
        elif m.size and m.max(initial=0) > 1:
            raise DatasetError("SNPDataset: matrix must be binary (0/1)")
        self.matrix = m
        if not self.sample_ids:
            self.sample_ids = [f"sample_{i:04d}" for i in range(m.shape[0])]
        if not self.site_ids:
            self.site_ids = [f"rs{i}" for i in range(m.shape[1])]
        if len(self.sample_ids) != m.shape[0]:
            raise DatasetError(
                f"SNPDataset: {len(self.sample_ids)} sample_ids for "
                f"{m.shape[0]} samples"
            )
        if len(self.site_ids) != m.shape[1]:
            raise DatasetError(
                f"SNPDataset: {len(self.site_ids)} site_ids for {m.shape[1]} sites"
            )

    @property
    def n_samples(self) -> int:
        """Number of samples (rows / "SNP strings")."""
        return int(self.matrix.shape[0])

    @property
    def n_sites(self) -> int:
        """Number of SNP sites (columns)."""
        return int(self.matrix.shape[1])

    def minor_allele_frequency(self) -> np.ndarray:
        """Per-site fraction of samples carrying the minor allele."""
        if self.n_samples == 0:
            return np.zeros(self.n_sites)
        return self.matrix.mean(axis=0)

    def subset_samples(self, indices: np.ndarray | list[int]) -> "SNPDataset":
        """New dataset restricted to the given sample indices (in order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return SNPDataset(
            matrix=self.matrix[idx].copy(),
            sample_ids=[self.sample_ids[i] for i in idx],
            site_ids=list(self.site_ids),
        )

    def subset_sites(self, indices: np.ndarray | list[int]) -> "SNPDataset":
        """New dataset restricted to the given site indices (in order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return SNPDataset(
            matrix=self.matrix[:, idx].copy(),
            sample_ids=list(self.sample_ids),
            site_ids=[self.site_ids[i] for i in idx],
        )

    def concat_samples(self, other: "SNPDataset") -> "SNPDataset":
        """Stack another dataset's samples below this one (same sites)."""
        if other.n_sites != self.n_sites:
            raise DatasetError(
                f"concat_samples: site count mismatch "
                f"({self.n_sites} vs {other.n_sites})"
            )
        return SNPDataset(
            matrix=np.vstack([self.matrix, other.matrix]),
            sample_ids=list(self.sample_ids) + list(other.sample_ids),
            site_ids=list(self.site_ids),
        )

    def __repr__(self) -> str:
        return (
            f"SNPDataset(n_samples={self.n_samples}, n_sites={self.n_sites}, "
            f"maf_mean={self.minor_allele_frequency().mean():.3f})"
        )
