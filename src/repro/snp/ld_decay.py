"""LD decay with genomic distance.

The canonical summary of an LD scan: how fast does pairwise r-squared
fall off as sites get further apart?  Within haplotype blocks LD is
high; across block boundaries it collapses -- so the decay curve both
validates the generator's block structure and is the analysis a real
LD study would run on the framework's output.

Also provides the half-distance summary (distance at which mean LD
falls to half its adjacent-site value) and a block-boundary detector
built on the decay signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["DecayCurve", "ld_decay_curve", "half_decay_distance", "detect_blocks"]


@dataclass(frozen=True)
class DecayCurve:
    """Binned mean LD as a function of inter-site distance."""

    distances: np.ndarray     # representative distance per bin
    mean_ld: np.ndarray       # mean statistic in the bin
    pair_counts: np.ndarray   # pairs contributing per bin

    def __post_init__(self) -> None:
        if not (
            self.distances.shape == self.mean_ld.shape == self.pair_counts.shape
        ):
            raise DatasetError("DecayCurve: mismatched component shapes")


def ld_decay_curve(
    ld_matrix: np.ndarray,
    positions: np.ndarray | None = None,
    max_distance: int | None = None,
) -> DecayCurve:
    """Mean LD per inter-site distance.

    Parameters
    ----------
    ld_matrix:
        Square pairwise statistic (typically r-squared), sites x sites.
    positions:
        Per-site coordinates; defaults to the site index (unit
        spacing).  Must be non-decreasing.
    max_distance:
        Truncate the curve (default: the full range).

    Returns one bin per observed integer distance.
    """
    ld = np.asarray(ld_matrix, dtype=np.float64)
    if ld.ndim != 2 or ld.shape[0] != ld.shape[1]:
        raise DatasetError("ld_decay_curve: ld_matrix must be square")
    n = ld.shape[0]
    if positions is None:
        positions = np.arange(n)
    pos = np.asarray(positions, dtype=np.int64)
    if pos.shape != (n,):
        raise DatasetError(
            f"ld_decay_curve: positions shape {pos.shape} != ({n},)"
        )
    if n and (np.diff(pos) < 0).any():
        raise DatasetError("ld_decay_curve: positions must be non-decreasing")

    i_idx, j_idx = np.triu_indices(n, k=1)
    distances = pos[j_idx] - pos[i_idx]
    values = ld[i_idx, j_idx]
    if max_distance is not None:
        keep = distances <= max_distance
        distances, values = distances[keep], values[keep]
    if distances.size == 0:
        return DecayCurve(
            distances=np.zeros(0, dtype=np.int64),
            mean_ld=np.zeros(0),
            pair_counts=np.zeros(0, dtype=np.int64),
        )
    max_d = int(distances.max())
    sums = np.bincount(distances, weights=values, minlength=max_d + 1)
    counts = np.bincount(distances, minlength=max_d + 1)
    present = counts > 0
    dist_axis = np.nonzero(present)[0]
    return DecayCurve(
        distances=dist_axis.astype(np.int64),
        mean_ld=sums[present] / counts[present],
        pair_counts=counts[present].astype(np.int64),
    )


def half_decay_distance(curve: DecayCurve) -> int | None:
    """Smallest distance where mean LD <= half the shortest-distance LD.

    None when LD never decays that far within the curve's range.
    """
    if curve.distances.size == 0:
        return None
    reference = curve.mean_ld[0]
    threshold = reference / 2.0
    below = np.nonzero(curve.mean_ld <= threshold)[0]
    if below.size == 0:
        return None
    return int(curve.distances[below[0]])


def detect_blocks(
    ld_matrix: np.ndarray,
    threshold: float | None = None,
    window: int = 4,
) -> list[tuple[int, int]]:
    """Segment sites into blocks by windowed cross-boundary LD.

    The boundary score at position ``i`` is the mean LD between the
    ``window`` sites before and after ``i`` -- robust against
    individual low-information sites (monomorphic-within-block sites
    have zero pairwise LD even deep inside a block, so adjacent-pair
    signals are brittle).  A boundary is declared where the score
    falls below ``threshold`` (default: half the median score, since
    most positions lie inside blocks); adjacent below-threshold
    positions collapse to the local minimum.

    Returns half-open ``[start, stop)`` site ranges covering all sites.
    """
    ld = np.asarray(ld_matrix, dtype=np.float64)
    if ld.ndim != 2 or ld.shape[0] != ld.shape[1]:
        raise DatasetError("detect_blocks: ld_matrix must be square")
    if window <= 0:
        raise DatasetError("detect_blocks: window must be positive")
    n = ld.shape[0]
    if n <= 1:
        return [(0, n)] if n else []

    scores = np.empty(n - 1)
    for i in range(1, n):
        left = slice(max(0, i - window), i)
        right = slice(i, min(n, i + window))
        scores[i - 1] = ld[left, right].mean()
    if threshold is None:
        threshold = float(np.median(scores)) / 2.0

    below = scores < threshold
    boundaries: list[int] = []
    i = 0
    while i < below.size:
        if below[i]:
            j = i
            while j + 1 < below.size and below[j + 1]:
                j += 1
            local = i + int(np.argmin(scores[i : j + 1]))
            boundaries.append(local + 1)
            i = j + 1
        else:
            i += 1

    blocks = []
    start = 0
    for b in boundaries:
        blocks.append((start, b))
        start = b
    blocks.append((start, n))
    return blocks
