"""Forensic profile databases, queries, and DNA mixtures (FastID world).

The paper's FastID experiments compare a small set of *query* profiles
against a reference database sized like the FBI NDIS database (around
18-20 million profiles as of the paper's writing).  We cannot ship real
profiles, so this module generates synthetic ones:

* a **database** of i.i.d. profiles drawn from a shared allele-frequency
  spectrum (the realistic structure that matters for score
  distributions),
* **queries** that are either true database members (optionally
  perturbed by genotyping error) or unrelated individuals, and
* **mixtures** formed as the bitwise OR of several contributor
  profiles, which is the standard dense-representation model of a DNA
  mixture: a minor allele is observed in the mixture iff at least one
  contributor carries it.

These generators preserve exactly the decision semantics the paper's
kernels implement: identity search finds ``XOR``-distance zero for a
true member, and mixture analysis finds ``popcount(r & ~m) == 0`` for a
true contributor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "ForensicDatabase",
    "generate_database",
    "generate_queries",
    "make_mixture",
    "perturb_profile",
]


@dataclass
class ForensicDatabase:
    """A reference database of binary SNP profiles.

    Attributes
    ----------
    profiles:
        ``uint8`` matrix of shape ``(n_profiles, n_sites)``.
    frequencies:
        The per-site minor-allele frequencies the profiles were drawn
        from (used to generate consistent unrelated queries).
    """

    profiles: np.ndarray
    frequencies: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        p = np.asarray(self.profiles, dtype=np.uint8)
        if p.ndim != 2:
            raise DatasetError("ForensicDatabase: profiles must be 2-D")
        f = np.asarray(self.frequencies, dtype=np.float64)
        if f.shape != (p.shape[1],):
            raise DatasetError(
                f"ForensicDatabase: frequencies shape {f.shape} does not match "
                f"{p.shape[1]} sites"
            )
        self.profiles = p
        self.frequencies = f

    @property
    def n_profiles(self) -> int:
        return int(self.profiles.shape[0])

    @property
    def n_sites(self) -> int:
        return int(self.profiles.shape[1])


def generate_database(
    n_profiles: int,
    n_sites: int,
    rng: np.random.Generator | int | None = None,
    maf_alpha: float = 1.2,
    maf_beta: float = 3.0,
) -> ForensicDatabase:
    """Generate a synthetic forensic reference database.

    Forensic SNP panels deliberately select *common* variants (higher
    discriminating power), so the default frequency spectrum is less
    rare-skewed than the population-genetics default.
    """
    if n_profiles <= 0 or n_sites <= 0:
        raise DatasetError(
            f"generate_database: shape must be positive, got "
            f"({n_profiles}, {n_sites})"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    freqs = np.clip(rng.beta(maf_alpha, maf_beta, size=n_sites), 0.05, 0.5)
    profiles = (rng.random((n_profiles, n_sites)) < freqs).astype(np.uint8)
    return ForensicDatabase(profiles=profiles, frequencies=freqs)


def perturb_profile(
    profile: np.ndarray,
    error_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flip each bit independently with probability ``error_rate``.

    Models genotyping error / degraded-sample noise in a query.
    """
    if not (0.0 <= error_rate <= 1.0):
        raise DatasetError(f"perturb_profile: error_rate must be in [0,1], got {error_rate}")
    flips = (rng.random(profile.shape) < error_rate).astype(np.uint8)
    return np.bitwise_xor(profile, flips)


def generate_queries(
    database: ForensicDatabase,
    n_member_queries: int,
    n_unrelated_queries: int,
    rng: np.random.Generator | int | None = None,
    error_rate: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build a query set of known members plus unrelated individuals.

    Returns
    -------
    (queries, member_indices)
        ``queries`` has shape
        ``(n_member_queries + n_unrelated_queries, n_sites)``;
        ``member_indices[i]`` is the database row a member query was
        copied from, or ``-1`` for unrelated queries.  Member queries
        come first.
    """
    if n_member_queries < 0 or n_unrelated_queries < 0:
        raise DatasetError("generate_queries: query counts must be >= 0")
    if n_member_queries > database.n_profiles:
        raise DatasetError(
            f"generate_queries: requested {n_member_queries} member queries from "
            f"a database of {database.n_profiles}"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    member_rows = rng.choice(database.n_profiles, size=n_member_queries, replace=False)
    members = database.profiles[member_rows].copy()
    if error_rate > 0 and n_member_queries:
        members = perturb_profile(members, error_rate, rng)
    unrelated = (
        rng.random((n_unrelated_queries, database.n_sites)) < database.frequencies
    ).astype(np.uint8)
    if n_member_queries or n_unrelated_queries:
        queries = np.vstack([members, unrelated])
    else:
        queries = np.zeros((0, database.n_sites), dtype=np.uint8)
    member_indices = np.concatenate(
        [member_rows.astype(np.int64), np.full(n_unrelated_queries, -1, dtype=np.int64)]
    )
    return queries, member_indices


def make_mixture(contributors: np.ndarray) -> np.ndarray:
    """Combine contributor profiles into a mixture profile (bitwise OR).

    A minor allele is detected in the mixed sample iff any contributor
    carries it; this is the dense-bitvector mixture model FastID [16]
    assumes.  ``contributors`` has shape ``(k, n_sites)`` with k >= 1.
    """
    c = np.asarray(contributors, dtype=np.uint8)
    if c.ndim != 2 or c.shape[0] < 1:
        raise DatasetError(
            "make_mixture: contributors must be (k, n_sites) with k >= 1"
        )
    return np.bitwise_or.reduce(c, axis=0)
