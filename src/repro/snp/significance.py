"""Statistical significance layers over the raw comparison tables.

Two classic calculations downstream of the kernels:

* **LD significance** -- for a pair of biallelic sites over ``n``
  samples, ``X^2 = n * r^2`` is asymptotically chi-square with one
  degree of freedom under linkage equilibrium; this converts an
  r-squared table into p-values (the standard LD association scan).
* **FastID random-match probability** -- the probability that an
  unrelated individual matches a profile within ``t`` differing sites,
  given per-site minor-allele frequencies.  Per site the mismatch
  probability of two random profiles is ``q_k = 2 p_k (1 - p_k)``
  (presence/absence model); the total mismatch count is
  Poisson-binomial, here approximated by its normal limit (panels have
  hundreds of sites).  This quantifies how discriminating a panel of a
  given size is -- the paper's motivation for growing SNP counts per
  forensic sample.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import DatasetError, ModelError

__all__ = [
    "ld_chi_square_pvalues",
    "site_mismatch_probabilities",
    "random_match_probability",
    "expected_unrelated_distance",
    "panel_sites_for_target_rmp",
]


def ld_chi_square_pvalues(r_squared: np.ndarray, n_samples: int) -> np.ndarray:
    """P-values for an r-squared table under the null of equilibrium.

    ``p = P(chi2_1 >= n * r^2)`` elementwise; diagonal entries (self
    comparisons, r^2 = 1) come out effectively zero and should be
    ignored by callers.
    """
    r2 = np.asarray(r_squared, dtype=np.float64)
    if n_samples <= 0:
        raise ModelError("ld_chi_square_pvalues: n_samples must be positive")
    if r2.size and (r2.min() < -1e-9 or r2.max() > 1 + 1e-9):
        raise DatasetError("ld_chi_square_pvalues: r_squared outside [0, 1]")
    return stats.chi2.sf(n_samples * np.clip(r2, 0.0, 1.0), df=1)


def site_mismatch_probabilities(frequencies: np.ndarray) -> np.ndarray:
    """Per-site probability that two unrelated profiles differ.

    Presence/absence model: a profile carries the site's bit with
    probability ``p_k``; two independent draws differ with probability
    ``2 p_k (1 - p_k)``.
    """
    p = np.asarray(frequencies, dtype=np.float64)
    if p.size and (p.min() < 0 or p.max() > 1):
        raise DatasetError("site_mismatch_probabilities: frequencies outside [0, 1]")
    return 2.0 * p * (1.0 - p)


def expected_unrelated_distance(frequencies: np.ndarray) -> float:
    """Mean XOR distance between two unrelated profiles."""
    return float(site_mismatch_probabilities(frequencies).sum())


def random_match_probability(
    frequencies: np.ndarray, max_distance: int = 0
) -> float:
    """P(unrelated pair lands within ``max_distance`` differing sites).

    Normal approximation to the Poisson-binomial mismatch count with a
    continuity correction; exact enough for the panel sizes (hundreds
    of sites) where the quantity is meaningful.
    """
    if max_distance < 0:
        raise ModelError("random_match_probability: max_distance must be >= 0")
    q = site_mismatch_probabilities(frequencies)
    if q.size == 0:
        return 1.0
    mean = q.sum()
    var = (q * (1.0 - q)).sum()
    if var <= 0:
        return 1.0 if max_distance >= mean else 0.0
    z = (max_distance + 0.5 - mean) / np.sqrt(var)
    return float(stats.norm.cdf(z))


def panel_sites_for_target_rmp(
    mean_maf: float, target_rmp: float, max_distance: int = 0
) -> int:
    """Smallest panel size achieving a target random-match probability.

    Assumes homogeneous sites at ``mean_maf``; doubles-and-bisects on
    the panel size.  Quantifies the paper's Section I point that
    growing per-sample SNP counts buys accuracy.
    """
    if not (0.0 < mean_maf <= 0.5):
        raise ModelError("panel_sites_for_target_rmp: mean_maf must be in (0, 0.5]")
    if not (0.0 < target_rmp < 1.0):
        raise ModelError("panel_sites_for_target_rmp: target_rmp must be in (0, 1)")

    def rmp(n_sites: int) -> float:
        return random_match_probability(
            np.full(n_sites, mean_maf), max_distance=max_distance
        )

    hi = 1
    while rmp(hi) > target_rmp:
        hi *= 2
        if hi > 1 << 24:
            raise ModelError(
                "panel_sites_for_target_rmp: target unreachable below 16M sites"
            )
    lo = hi // 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if rmp(mid) > target_rmp:
            lo = mid
        else:
            hi = mid
    return hi
