"""Naive reference implementations of the three SNP-comparison statistics.

These are deliberately simple, *unpacked* (boolean matrix) computations
used as oracles by the test suite and as the statistical layer on top
of the raw popcount tables the kernels produce:

* LD joint counts and the derived D, D', r-squared statistics
  (Section II-A of the paper),
* FastID identity distances, ``gamma = popcount(a XOR b)``
  (Section II-B),
* FastID mixture scores, ``gamma = popcount(r AND NOT m)``
  (Section II-C, after the paper's simplification).

The "pair" orientation differs between applications and mirrors the
paper's Fig. 1:

* LD compares *sites across samples*: inputs are the same matrix, and
  the output is sites x sites (when called with the transposed
  site-major matrix) or samples x samples for string comparison -- the
  functions here are orientation-agnostic and simply compare rows of
  their inputs.
* Identity/mixture compare *query rows against database rows*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "ld_counts_naive",
    "ld_d",
    "ld_d_prime",
    "ld_r_squared",
    "identity_distances_naive",
    "mixture_scores_naive",
]


def _as_binary_2d(name: str, m: np.ndarray) -> np.ndarray:
    a = np.asarray(m)
    if a.ndim != 2:
        raise DatasetError(f"{name}: expected 2-D binary matrix, got ndim={a.ndim}")
    if a.dtype != np.bool_:
        if a.size and not np.isin(a, (0, 1)).all():
            raise DatasetError(f"{name}: matrix must be binary (0/1)")
        a = a.astype(bool)
    return a


def ld_counts_naive(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Joint minor-allele counts: ``counts[i, j] = sum_k a[i,k] & b[j,k]``.

    This is the paper's Eq. (1) evaluated naively (no packing).  With
    ``b is None`` the comparison is ``a`` against itself.

    Rows are the entities being compared (sites in site-major layout);
    columns are the observations the AND runs over.
    """
    a = _as_binary_2d("ld_counts_naive", a)
    b = a if b is None else _as_binary_2d("ld_counts_naive", b)
    if a.shape[1] != b.shape[1]:
        raise DatasetError(
            f"ld_counts_naive: inner dimensions differ ({a.shape[1]} vs {b.shape[1]})"
        )
    return (a.astype(np.int64) @ b.astype(np.int64).T).astype(np.int64)


def ld_d(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Linkage-disequilibrium coefficient ``D = p_AB - p_A * p_B``.

    ``a`` (and optionally ``b``) are (entities, observations) binary
    matrices; the result ``D[i, j]`` is the LD between row i of ``a``
    and row j of ``b`` across the shared observations.
    """
    a = _as_binary_2d("ld_d", a)
    b_mat = a if b is None else _as_binary_2d("ld_d", b)
    n = a.shape[1]
    if n == 0:
        raise DatasetError("ld_d: cannot compute LD over zero observations")
    p_ab = ld_counts_naive(a, b_mat) / n
    p_a = a.mean(axis=1)
    p_b = b_mat.mean(axis=1)
    return p_ab - np.outer(p_a, p_b)


def ld_d_prime(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Normalized LD coefficient D' = D / D_max (Lewontin 1964).

    ``D_max`` is ``min(p_A (1-p_B), (1-p_A) p_B)`` when ``D > 0`` and
    ``min(p_A p_B, (1-p_A)(1-p_B))`` when ``D < 0``.  Pairs where a
    frequency is 0 or 1 (monomorphic) return 0.
    """
    a = _as_binary_2d("ld_d_prime", a)
    b_mat = a if b is None else _as_binary_2d("ld_d_prime", b)
    d = ld_d(a, b_mat)
    p_a = a.mean(axis=1)[:, None]
    p_b = b_mat.mean(axis=1)[None, :]
    d_max_pos = np.minimum(p_a * (1 - p_b), (1 - p_a) * p_b)
    d_max_neg = np.minimum(p_a * p_b, (1 - p_a) * (1 - p_b))
    d_max = np.where(d >= 0, d_max_pos, d_max_neg)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(d_max > 0, d / d_max, 0.0)
    return result


def ld_r_squared(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Squared correlation ``r^2 = D^2 / (p_A(1-p_A) p_B(1-p_B))``.

    Monomorphic pairs (zero variance) return 0.
    """
    a = _as_binary_2d("ld_r_squared", a)
    b_mat = a if b is None else _as_binary_2d("ld_r_squared", b)
    d = ld_d(a, b_mat)
    var_a = a.mean(axis=1) * (1 - a.mean(axis=1))
    var_b = b_mat.mean(axis=1) * (1 - b_mat.mean(axis=1))
    denom = np.outer(var_a, var_b)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(denom > 0, d * d / denom, 0.0)
    return result


def identity_distances_naive(
    queries: np.ndarray, database: np.ndarray
) -> np.ndarray:
    """FastID identity distances: ``dist[q, d] = sum_k q_row XOR d_row``.

    The paper's Eq. (2); zero distance marks a positive match.
    """
    q = _as_binary_2d("identity_distances_naive", queries)
    d = _as_binary_2d("identity_distances_naive", database)
    if q.shape[1] != d.shape[1]:
        raise DatasetError(
            f"identity_distances_naive: site counts differ "
            f"({q.shape[1]} vs {d.shape[1]})"
        )
    # XOR popcount decomposes as |a| + |b| - 2 a.b, which keeps the
    # naive oracle O(n m k) via one integer GEMM instead of a broadcast
    # XOR over a (n, m, k) cube.
    qi = q.astype(np.int64)
    di = d.astype(np.int64)
    dots = qi @ di.T
    return (qi.sum(axis=1)[:, None] + di.sum(axis=1)[None, :] - 2 * dots).astype(
        np.int64
    )


def mixture_scores_naive(
    references: np.ndarray, mixtures: np.ndarray
) -> np.ndarray:
    """FastID mixture scores: ``score[r, m] = sum_k ref AND NOT mix``.

    The paper's Eq. (3) after the simplification
    ``(r XOR m) AND r == r AND NOT m``.  Zero means every minor allele
    of the reference appears in the mixture (consistent contributor);
    larger scores mean less likely containment.
    """
    r = _as_binary_2d("mixture_scores_naive", references)
    m = _as_binary_2d("mixture_scores_naive", mixtures)
    if r.shape[1] != m.shape[1]:
        raise DatasetError(
            f"mixture_scores_naive: site counts differ "
            f"({r.shape[1]} vs {m.shape[1]})"
        )
    # popcount(r & ~m) = |r| - r.m
    ri = r.astype(np.int64)
    mi = m.astype(np.int64)
    return (ri.sum(axis=1)[:, None] - ri @ mi.T).astype(np.int64)
