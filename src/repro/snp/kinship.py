"""Relatedness analysis on top of the comparison framework.

The XOR kernel's distance table is, after normalization, the classic
**identity-by-state (IBS)** similarity used for kinship screening and
duplicate detection in population studies (and the KinLinks-style
forensic kinship tools the paper cites [4]):

    IBS(i, j)   = 1 - hamming(i, j) / n_sites
    kinship_hat = 2 * IBS - 1        (on presence/absence bitvectors)

``kinship_hat`` is a crude but monotone estimator: 1 for identical
profiles, around ``2 * E[IBS_random] - 1`` for unrelated pairs, and
intermediate for relatives -- enough to rank and threshold pairs,
which is all the screening use case needs.  The expected random-pair
IBS under site frequencies ``p`` is

    E[IBS] = mean_k [ p_k^2 + (1 - p_k)^2 ]

so z-scoring against it separates relatives from the unrelated bulk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture

__all__ = ["KinshipResult", "ibs_matrix", "kinship_screen"]


@dataclass
class KinshipResult:
    """IBS/kinship tables for one sample set."""

    ibs: np.ndarray
    expected_random_ibs: float
    report: RunReport

    @property
    def kinship(self) -> np.ndarray:
        """The 2*IBS - 1 similarity estimator."""
        return 2.0 * self.ibs - 1.0

    def related_pairs(
        self, min_excess: float = 0.05
    ) -> list[tuple[int, int, float]]:
        """(i, j, ibs) for pairs exceeding random expectation by margin.

        Upper-triangle pairs only, sorted by descending IBS.
        """
        n = self.ibs.shape[0]
        threshold = self.expected_random_ibs + min_excess
        pairs = [
            (i, j, float(self.ibs[i, j]))
            for i in range(n)
            for j in range(i + 1, n)
            if self.ibs[i, j] >= threshold
        ]
        pairs.sort(key=lambda t: -t[2])
        return pairs


def ibs_matrix(
    samples: np.ndarray,
    device: str | GPUArchitecture = "Titan V",
    framework: SNPComparisonFramework | None = None,
) -> KinshipResult:
    """All-pairs IBS via the XOR kernel on the simulated GPU."""
    bits = np.asarray(samples)
    if bits.ndim != 2:
        raise DatasetError("ibs_matrix: expected a 2-D binary matrix")
    if bits.shape[1] == 0:
        raise DatasetError("ibs_matrix: zero sites carry no IBS information")
    if framework is None:
        framework = SNPComparisonFramework(device, Algorithm.FASTID_IDENTITY)
    distances, report = framework.run(bits, bits)
    ibs = 1.0 - distances / bits.shape[1]
    freqs = bits.mean(axis=0)
    # Unbiased random-pair IBS: the plug-in p^2 + (1-p)^2 of sample
    # frequencies overestimates by 2 p(1-p)/(n-1) per site (Var(p_hat)
    # enters both squares), which matters for small cohorts.
    n = bits.shape[0]
    plug_in = freqs**2 + (1.0 - freqs) ** 2
    if n > 1:
        plug_in = plug_in - 2.0 * freqs * (1.0 - freqs) / (n - 1)
    expected = float(np.mean(plug_in))
    return KinshipResult(ibs=ibs, expected_random_ibs=expected, report=report)


def kinship_screen(
    samples: np.ndarray,
    device: str | GPUArchitecture = "Titan V",
    min_excess: float = 0.05,
) -> list[tuple[int, int, float]]:
    """Convenience wrapper: the related pairs of :func:`ibs_matrix`."""
    return ibs_matrix(samples, device).related_pairs(min_excess)
