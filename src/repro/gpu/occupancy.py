"""Occupancy analysis: how many thread groups a kernel can keep resident.

The CUDA-occupancy-calculator equivalent for the model architecture.
Residency per compute core is bounded by four resources:

* the device's thread-group ceiling ``N_grp``;
* the register file: ``regs_per_group = N_T * regs_per_thread``;
* shared memory: one A tile (``m_c * k_c`` words) is shared by *all*
  resident groups of a work-group, so it bounds work-groups, not
  groups -- the framework runs one work-group per core, making this a
  feasibility bound;
* the scheduler's cluster structure: groups beyond
  ``N_cl * ceil(L_fn / issue_gap)`` add no throughput (the pipelines
  are already saturated), which is why the framework deliberately
  stops at ``N_cl * L_fn`` (Section V-E, Volkov's argument).

``occupancy_report`` returns all bounds plus the binding one, so the
n_r ablation and the planner can explain *why* a configuration is
capped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture

__all__ = ["OccupancyReport", "occupancy_report", "registers_per_thread_for"]


def registers_per_thread_for(
    arch: GPUArchitecture, m_r: int, n_r: int, overhead: int = 16
) -> int:
    """Estimated register demand per thread for a configuration.

    Accumulators (``m_r * n_r / (L_fn * N_T)``) plus a fixed overhead
    for addresses, loop state and staged operands.
    """
    if m_r <= 0 or n_r <= 0:
        raise ConfigurationError("registers_per_thread_for: m_r, n_r must be positive")
    accumulators = -(-m_r * n_r // (arch.l_fn * arch.n_t))
    return accumulators + overhead


@dataclass(frozen=True)
class OccupancyReport:
    """Residency bounds for one kernel configuration on one device."""

    device: str
    groups_by_device_limit: int
    groups_by_registers: int
    groups_needed_for_latency: int
    groups_chosen: int
    shared_memory_fits: bool
    registers_per_thread: int

    @property
    def binding_resource(self) -> str:
        """Which resource caps residency at the chosen occupancy."""
        bounds = {
            "device thread-group limit": self.groups_by_device_limit,
            "register file": self.groups_by_registers,
        }
        tightest = min(bounds, key=lambda k: bounds[k])
        if self.groups_chosen >= bounds[tightest]:
            return tightest
        return "framework choice (N_cl * L_fn)"

    @property
    def latency_hidden(self) -> bool:
        """Whether residency suffices to hide instruction latency."""
        return self.groups_chosen >= self.groups_needed_for_latency


def occupancy_report(
    arch: GPUArchitecture,
    m_c: int,
    k_c: int,
    m_r: int,
    n_r: int,
) -> OccupancyReport:
    """Compute the residency bounds for a configuration."""
    for name, value in (("m_c", m_c), ("k_c", k_c), ("m_r", m_r), ("n_r", n_r)):
        if value <= 0:
            raise ConfigurationError(f"occupancy_report: {name} must be positive")
    regs_per_thread = registers_per_thread_for(arch, m_r, n_r)
    regs_per_group = regs_per_thread * arch.n_t
    by_registers = max(0, arch.registers_per_core // regs_per_group)
    shared_needed = m_c * k_c * arch.word_bytes
    chosen = arch.n_cl * arch.l_fn
    # Latency is hidden once every cluster has L_fn / issue-gap groups
    # in flight on the slowest pipe; the POPC pipe's gap is the widest.
    popc_gap = max(1, -(-arch.n_t // arch.popc_units))
    needed = arch.n_cl * max(1, -(-arch.l_fn // popc_gap))
    return OccupancyReport(
        device=arch.name,
        groups_by_device_limit=arch.n_grp_max,
        groups_by_registers=by_registers,
        groups_needed_for_latency=needed,
        groups_chosen=min(chosen, arch.n_grp_max),
        shared_memory_fits=shared_needed <= arch.usable_shared_memory_bytes,
        registers_per_thread=regs_per_thread,
    )
