"""Tile-level simulation of the GPU kernel's inner structure.

Where :mod:`repro.gpu.coresim` executes instruction *timing* for the
microbenchmarks, this module walks the actual **data path** of the SNP
kernel on one compute core, exactly as Section V describes it:

1. stage the ``m_c x k_c`` A tile into shared memory (bank-conflict
   accounting on the real word addresses),
2. each resident thread group owns an ``m_r x (n_r / L_fn)`` register
   sub-tile: groups on the same cluster take sub-tiles from the same
   row of the ``m_c x n_r`` core tile, simultaneous groups take the
   same column (Section IV-C),
3. for every k step: read the A column from shared memory, stream the
   B words from global memory, combine / popcount / accumulate.

It returns both the functional C tile (bit-exact with the reference
drivers) and an operation census (shared reads, bank passes, global
words, per-pipe op counts) from which a first-principles cycle
estimate is formed.  Tests cross-validate that estimate against the
closed-form model in :mod:`repro.gpu.cycles` -- two independent paths
to the same number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import KernelLaunchError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import kernel_instruction_mix
from repro.gpu.isa import instruction_mix_pipes
from repro.gpu.memory import SharedMemoryBankModel
from repro.util.bitops import popcount

__all__ = ["TileStats", "simulate_core_tile"]


@dataclass(frozen=True)
class TileStats:
    """Operation census of one core-tile execution."""

    m_c: int
    n_r: int
    k_c: int
    n_groups: int
    shared_store_words: int
    shared_read_accesses: int
    shared_read_passes: int       # accesses x conflict serialization
    global_read_words: int
    alu_ops: int
    popc_ops: int
    estimated_cycles: float

    @property
    def bank_conflict_factor(self) -> float:
        """Mean serialization of shared reads (1.0 = conflict-free)."""
        if self.shared_read_accesses == 0:
            return 1.0
        return self.shared_read_passes / self.shared_read_accesses

    @property
    def word_ops(self) -> int:
        return self.m_c * self.n_r * self.k_c


def simulate_core_tile(
    arch: GPUArchitecture,
    a_tile: np.ndarray,
    b_tile: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    l_fn_groups: int | None = None,
) -> tuple[np.ndarray, TileStats]:
    """Execute one ``m_c x n_r`` core tile the way the kernel does.

    Parameters
    ----------
    arch:
        Target device.
    a_tile:
        ``(m_c, k_c)`` packed words -- the tile staged into shared
        memory.
    b_tile:
        ``(n_r, k_c)`` packed words -- streamed from global memory
        (row per output column, as everywhere in this library).
    op:
        Comparison micro-kernel.
    l_fn_groups:
        Groups per cluster (defaults to ``L_fn``); the column-slice
        count of the tile decomposition.

    Returns
    -------
    (c_tile, stats):
        ``c_tile`` is the ``(m_c, n_r)`` int64 result; ``stats`` the
        operation census with the first-principles cycle estimate.
    """
    kernel = get_microkernel(op)
    a = np.asarray(a_tile)
    b = np.asarray(b_tile)
    expected = np.uint32 if arch.word_bits == 32 else np.uint64
    if a.dtype != expected or b.dtype != expected:
        raise KernelLaunchError(
            f"simulate_core_tile: operands must be {expected.__name__}"
        )
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise KernelLaunchError("simulate_core_tile: bad tile shapes")
    m_c, k_c = a.shape
    n_r = b.shape[0]
    groups_per_cluster = l_fn_groups or arch.l_fn
    n_groups = arch.n_cl * groups_per_cluster
    if n_r % n_groups and n_r >= n_groups:
        # Tolerated: the final column slice is ragged.
        pass

    banks = SharedMemoryBankModel(n_banks=arch.shared_memory_banks)
    # -- stage A into shared memory -------------------------------------------
    shared = a.copy()  # functional contents of the shared tile
    shared_store_words = m_c * k_c

    # -- thread-group decomposition -------------------------------------------
    # Columns split across the L_fn group slots; rows (m_r sub-tiles)
    # split across clusters.  Every group walks all k steps.
    col_slices = np.array_split(np.arange(n_r), min(groups_per_cluster, max(n_r, 1)))
    row_slices = np.array_split(np.arange(m_c), arch.n_cl)

    c_tile = np.zeros((m_c, n_r), dtype=np.int64)
    shared_read_accesses = 0
    shared_read_passes = 0
    global_read_words = 0

    for rows in row_slices:
        if rows.size == 0:
            continue
        for cols in col_slices:
            if cols.size == 0:
                continue
            # One thread group's walk over the reduction dimension.
            for k in range(k_c):
                # Shared read: the group's row slice of A's k-th column.
                addresses = k * m_c + rows
                shared_read_accesses += 1
                shared_read_passes += banks.conflict_factor(addresses)
                a_col = shared[rows, k]
                # Global stream: the group's B words for this k step.
                b_row = b[cols, k]
                global_read_words += cols.size
                combined = kernel.combine(a_col[:, None], b_row[None, :])
                c_tile[np.ix_(rows, cols)] += popcount(combined)

    # -- first-principles cycle estimate --------------------------------------
    alu_per_word, popc_per_word = kernel_instruction_mix(arch, kernel.op)
    word_ops = m_c * n_r * k_c
    alu_ops = alu_per_word * word_ops
    popc_ops = popc_per_word * word_ops
    pipes = instruction_mix_pipes(arch, alu_ops, popc_ops)
    compute_cycles = max(pipes.values()) / arch.n_cl
    # Shared traffic: each read pass services one bank-parallel batch
    # (up to N_b words per cycle per core).
    shared_cycles = shared_read_passes * 1.0
    estimated = max(compute_cycles, shared_cycles)

    stats = TileStats(
        m_c=m_c,
        n_r=n_r,
        k_c=k_c,
        n_groups=n_groups,
        shared_store_words=shared_store_words,
        shared_read_accesses=shared_read_accesses,
        shared_read_passes=shared_read_passes,
        global_read_words=global_read_words,
        alu_ops=alu_ops,
        popc_ops=popc_ops,
        estimated_cycles=float(estimated),
    )
    return c_tile, stats
