"""Host <-> device transfer engine.

Models the PCIe path with one DMA engine per direction (the discrete
GPUs evaluated all have independent H2D and D2H copy engines), so a
write, a read and a kernel can overlap -- which is what the paper's
double buffering exploits (Section VI-A1): "enqueue data transfer
commands to be processed during computation".

Transfer time = fixed per-transfer setup + bytes / effective bandwidth.
The engine owns one :class:`~repro.util.timing.TimeLine` per direction;
commands are in-order per direction, concurrent across directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.gpu.arch import GPUArchitecture
from repro.util.timing import Interval, TimeLine

__all__ = ["TransferDirection", "TransferEngine", "H2D", "D2H"]

H2D = "h2d"
D2H = "d2h"
TransferDirection = str

#: Fixed driver/DMA-descriptor setup cost per transfer; small but
#: visible for the many small tile transfers double buffering issues.
TRANSFER_SETUP_S = 8e-6


@dataclass
class TransferEngine:
    """Two-direction DMA model attached to one device."""

    arch: GPUArchitecture
    h2d: TimeLine = field(default_factory=lambda: TimeLine("h2d"))
    d2h: TimeLine = field(default_factory=lambda: TimeLine("d2h"))

    def _timeline(self, direction: TransferDirection) -> TimeLine:
        if direction == H2D:
            return self.h2d
        if direction == D2H:
            return self.d2h
        raise DeviceError(f"TransferEngine: unknown direction {direction!r}")

    def transfer_time(self, n_bytes: int) -> float:
        """Modeled duration of one transfer of ``n_bytes``."""
        if n_bytes < 0:
            raise DeviceError(f"transfer_time: negative size {n_bytes}")
        bandwidth = self.arch.memory.host_bandwidth_gbs * 1e9
        return TRANSFER_SETUP_S + n_bytes / bandwidth

    def schedule(
        self,
        direction: TransferDirection,
        n_bytes: int,
        earliest_start: float,
        label: str = "",
    ) -> Interval:
        """Enqueue a transfer; returns its scheduled interval.

        The transfer starts at the later of ``earliest_start`` and the
        completion of the previous transfer in the same direction.
        """
        timeline = self._timeline(direction)
        return timeline.schedule(
            label=label or f"{direction}:{n_bytes}B",
            earliest_start=earliest_start,
            duration=self.transfer_time(n_bytes),
        )

    def busy_time(self) -> float:
        """Total transfer time across both directions."""
        return self.h2d.busy_time() + self.d2h.busy_time()
