"""Mechanistic memory-system model: deriving the scaling knee.

The paper calibrates nothing about *why* the Vega 64 stops scaling
("this scalability issue may be related to memory system behaviors
that we have not captured in our analytical model ... a more detailed
memory hierarchy model for the GPU may provide insights", Sections
VI-C and VII).  This module is that investigation: a queueing model of
the shared memory system from which a Vega-shaped per-core decline
*emerges*, rather than being fitted point-by-point.

Model
-----

Each active core streams its B panel at demand ``d`` bytes/cycle
(``words-per-cycle x word_bytes / m_c``).  A core can keep at most
``mshr_per_core`` cache-line requests outstanding; each request takes
the unloaded latency ``base_latency_cycles`` inflated by memory-system
utilization rho as ``L(rho) = L0 / (1 - rho)`` (the standard M/M/1
service-time blow-up).  Little's law then caps a core's achieved
streaming rate at

    x  =  min(d,  mshr * line_bytes / L(rho)),
    rho = n_cores * x / device_bytes_per_cycle,

a scalar fixed point solved by bisection.  Per-core efficiency is
``x / d``: flat while latency tolerance covers the loaded latency,
then declining as every added core inflates everyone's latency -- the
emergent knee.

``fit_queue_model`` picks (mshr, L0) so the emergent curve best
matches the device's *calibrated* decay curve; the test suite asserts
the two agree within tolerance for Vega and that NVIDIA parts come out
flat, closing the loop between the phenomenological and mechanistic
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.microkernel import ComparisonOp
from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import scaling_efficiency, words_per_cycle_per_core

__all__ = [
    "QueueModelParams",
    "streaming_demand_bytes_per_cycle",
    "solve_per_core_rate",
    "emergent_scaling_curve",
    "fit_queue_model",
]


@dataclass(frozen=True)
class QueueModelParams:
    """Latency-tolerance parameters of one device's memory path."""

    mshr_per_core: int
    base_latency_cycles: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.mshr_per_core <= 0 or self.base_latency_cycles <= 0 or self.line_bytes <= 0:
            raise ModelError("QueueModelParams: parameters must be positive")

    @property
    def unloaded_rate(self) -> float:
        """Bytes/cycle one core can stream at zero contention."""
        return self.mshr_per_core * self.line_bytes / self.base_latency_cycles


def streaming_demand_bytes_per_cycle(
    arch: GPUArchitecture,
    m_c: int = 32,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> float:
    """One core's B-stream demand at full compute rate.

    Every word-op consumes ``word_bytes / m_c`` bytes of streamed B
    (the tile's reuse factor), so demand = compute rate x that.
    """
    if m_c <= 0:
        raise ModelError("streaming_demand_bytes_per_cycle: m_c must be positive")
    return words_per_cycle_per_core(arch, op) * arch.word_bytes / m_c


def _device_bytes_per_cycle(arch: GPUArchitecture) -> float:
    return arch.memory.global_bandwidth_gbs * 1e9 / arch.frequency_hz


def solve_per_core_rate(
    arch: GPUArchitecture,
    params: QueueModelParams,
    n_cores: int,
    demand: float | None = None,
    tolerance: float = 1e-9,
) -> float:
    """Fixed-point streaming rate per core (bytes/cycle).

    Solves ``x = min(d, mshr*line*(1 - n x / B) / L0)`` by bisection on
    x in [0, d]; the right-hand side is decreasing in x, so the fixed
    point is unique.
    """
    if n_cores <= 0:
        raise ModelError("solve_per_core_rate: n_cores must be positive")
    d = streaming_demand_bytes_per_cycle(arch) if demand is None else demand
    if d <= 0:
        raise ModelError("solve_per_core_rate: demand must be positive")
    bandwidth = _device_bytes_per_cycle(arch)

    def rhs(x: float) -> float:
        rho = min(n_cores * x / bandwidth, 0.999999)
        return min(d, params.unloaded_rate * (1.0 - rho))

    lo, hi = 0.0, d
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if rhs(mid) >= mid:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def emergent_scaling_curve(
    arch: GPUArchitecture,
    params: QueueModelParams,
    core_counts: list[int] | None = None,
) -> list[tuple[int, float]]:
    """(cores, per-core efficiency) under the queueing model."""
    if core_counts is None:
        core_counts = []
        c = 1
        while c < arch.n_c:
            core_counts.append(c)
            c *= 2
        core_counts.append(arch.n_c)
    d = streaming_demand_bytes_per_cycle(arch)
    out = []
    for c in core_counts:
        x = solve_per_core_rate(arch, params, c, demand=d)
        out.append((c, x / d))
    return out


def fit_queue_model(
    arch: GPUArchitecture,
    mshr_candidates: list[int] | None = None,
    latency_candidates: list[float] | None = None,
) -> tuple[QueueModelParams, float]:
    """Grid-fit (mshr, L0) to the device's calibrated decay curve.

    Returns the best parameters and the max absolute efficiency error
    across the sampled core counts -- the figure of merit the tests
    bound.  The calibrated curve is the Section VI phenomenology; a
    small error means the queueing mechanism *explains* it.
    """
    if mshr_candidates is None:
        mshr_candidates = [8, 16, 24, 32, 48, 64, 96, 128]
    if latency_candidates is None:
        latency_candidates = [200, 300, 400, 500, 650, 800, 1000, 1300]
    counts = []
    c = 1
    while c < arch.n_c:
        counts.append(c)
        c *= 2
    counts.append(arch.n_c)
    target = {c: scaling_efficiency(arch, c) for c in counts}

    best: tuple[QueueModelParams, float] | None = None
    for mshr in mshr_candidates:
        for latency in latency_candidates:
            params = QueueModelParams(
                mshr_per_core=mshr, base_latency_cycles=latency
            )
            curve = dict(emergent_scaling_curve(arch, params, counts))
            err = max(abs(curve[c] - target[c]) for c in counts)
            if best is None or err < best[1]:
                best = (params, err)
    assert best is not None
    return best
