"""Cycle-level simulator of one compute core.

This is the executable version of the paper's model GPU (Section IV-A)
at the granularity the microbenchmarks of Section V-C/D need: thread
groups scheduled onto compute clusters whose functional-unit pipes have
finite width and a fixed latency ``L_fn``.

Execution model
---------------

* A *program* is a straight-line sequence of instructions, each with
  explicit dependencies on earlier instructions (by index).  Every
  resident thread group executes the same program on private data
  (exactly how the microbenchmark kernels behave), optionally repeated
  for ``iterations`` loop trips; dependencies marked ``carried=True``
  chain across iterations (the dependent-popcount chain).
* Thread groups are distributed round-robin over the core's ``n_cl``
  clusters and stay resident (the framework never oversubscribes).
* Each cluster owns one pipe per :class:`PipeClass` with ``units``
  lanes.  Issuing a group instruction occupies its pipe for
  ``ceil(N_T / units)`` cycles (the throughput cost of pushing ``N_T``
  lanes through ``units`` units); its result becomes available
  ``L_fn`` cycles after issue (the latency the dependent chain
  exposes).  One instruction issues per pipe per cycle at most; a
  cluster may issue to different pipes in the same cycle (the dual-pipe
  behaviour the paper observed).

The simulator is deliberately small: it executes instruction *timing*,
not data.  Functional results come from the executor; this class
answers "how many cycles" for programs of a few thousand dynamic
instructions, which is all the microbenchmark procedures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.isa import Instruction, PipeClass, pipe_for, units_per_cluster

__all__ = ["ProgramInstruction", "Program", "CoreSimulator", "SimResult"]


@dataclass(frozen=True)
class ProgramInstruction:
    """One static instruction: opcode plus intra-iteration dependencies.

    ``deps`` are indices of earlier instructions in the same iteration
    whose results this instruction consumes.  ``carried_dep`` marks a
    dependency on this same instruction slot in the *previous* loop
    iteration via the last instruction of the dependency chain --
    concretely: if True, iteration ``i``'s instance additionally waits
    for iteration ``i-1``'s instance of ``carried_from`` (defaulting to
    itself).
    """

    op: Instruction
    deps: tuple[int, ...] = ()
    carried: bool = False


@dataclass(frozen=True)
class Program:
    """A loop body executed ``iterations`` times by every thread group."""

    body: tuple[ProgramInstruction, ...]
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ModelError(f"Program: iterations must be positive, got {self.iterations}")
        for i, instr in enumerate(self.body):
            for d in instr.deps:
                if not (0 <= d < i):
                    raise ModelError(
                        f"Program: instruction {i} depends on invalid index {d}"
                    )

    @property
    def dynamic_length(self) -> int:
        return len(self.body) * self.iterations

    @staticmethod
    def dependent_chain(op: Instruction, length: int, iterations: int = 1) -> "Program":
        """The Section V-C latency microbenchmark: a serial chain of ``op``.

        Each instruction consumes the previous one's result; the chain
        is loop-carried so back-to-back iterations stay serial.
        """
        body = tuple(
            ProgramInstruction(op=op, deps=(i - 1,) if i > 0 else (), carried=(i == 0))
            for i in range(length)
        )
        return Program(body=body, iterations=iterations)

    @staticmethod
    def independent_stream(op: Instruction, length: int, iterations: int = 1) -> "Program":
        """A throughput microbenchmark body: ``length`` independent ops."""
        body = tuple(ProgramInstruction(op=op) for _ in range(length))
        return Program(body=body, iterations=iterations)

    @staticmethod
    def interleaved_streams(
        ops: tuple[Instruction, ...], length_each: int, iterations: int = 1
    ) -> "Program":
        """Independent interleaved streams of several opcodes.

        Used by the pipe-sharing probe of Section V-D ("combining
        different instructions can expose which instructions share
        functional unit pipelines").
        """
        body = []
        for _ in range(length_each):
            for op in ops:
                body.append(ProgramInstruction(op=op))
        return Program(body=tuple(body), iterations=iterations)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one core-simulation run."""

    cycles: int
    dynamic_instructions: int
    n_groups: int

    def cycles_per_instruction(self) -> float:
        """Cycles per dynamic instruction *per thread group*."""
        per_group = self.dynamic_instructions / self.n_groups
        return self.cycles / per_group if per_group else 0.0

    def instructions_per_cycle(self) -> float:
        """Aggregate dynamic group-instructions retired per cycle."""
        return self.dynamic_instructions / self.cycles if self.cycles else 0.0


@dataclass
class _Pipe:
    units: int
    busy_until: int = 0  # next cycle the pipe can accept an issue


@dataclass
class _GroupState:
    """Progress of one resident thread group through the program."""

    cluster: int
    next_index: int = 0              # next dynamic instruction to issue
    ready_at: dict[int, int] = field(default_factory=dict)  # dyn idx -> cycle


class CoreSimulator:
    """Cycle-stepped simulator of a single compute core."""

    def __init__(self, arch: GPUArchitecture) -> None:
        self.arch = arch

    def _issue_span(self, pipe: PipeClass) -> int:
        units = units_per_cluster(self.arch, pipe)
        return max(1, -(-self.arch.n_t // units))

    def run(self, program: Program, n_groups: int) -> SimResult:
        """Execute ``program`` on ``n_groups`` resident thread groups.

        Returns total cycles until every group retires its last
        instruction.  Raises if residency exceeds the device's
        ``n_grp_max``.
        """
        if n_groups <= 0:
            raise ModelError("CoreSimulator.run: n_groups must be positive")
        if n_groups > self.arch.n_grp_max:
            raise ModelError(
                f"CoreSimulator.run: {n_groups} groups exceed n_grp_max="
                f"{self.arch.n_grp_max} on {self.arch.name}"
            )
        arch = self.arch
        body = program.body
        body_len = len(body)
        total_dyn = program.dynamic_length
        if body_len == 0:
            return SimResult(cycles=0, dynamic_instructions=0, n_groups=n_groups)

        # One pipe instance per (cluster, pipe class).
        pipes: dict[tuple[int, PipeClass], _Pipe] = {}
        for cl in range(arch.n_cl):
            for pc in PipeClass:
                pipes[(cl, pc)] = _Pipe(units=units_per_cluster(arch, pc))

        groups = [_GroupState(cluster=g % arch.n_cl) for g in range(n_groups)]
        finished = 0
        cycle = 0
        # Guard against scheduling bugs: generous upper bound.
        max_cycles = (total_dyn * (arch.l_fn + 8) + 64) * max(1, n_groups)

        while finished < n_groups:
            if cycle > max_cycles:
                raise ModelError(
                    "CoreSimulator.run: exceeded cycle bound -- scheduler bug"
                )
            # Pipes a cluster has already issued to this cycle.
            issued_this_cycle: set[tuple[int, PipeClass]] = set()
            # Round-robin fairness: rotate group scan start by cycle.
            order = range(len(groups))
            for gi in order:
                g = groups[gi]
                if g.next_index >= total_dyn:
                    continue
                dyn = g.next_index
                static = body[dyn % body_len]
                # Dependencies within iteration.
                iteration_base = (dyn // body_len) * body_len
                ready = True
                for d in static.deps:
                    dep_dyn = iteration_base + d
                    if g.ready_at.get(dep_dyn, -1) > cycle or dep_dyn not in g.ready_at:
                        ready = False
                        break
                    if g.ready_at[dep_dyn] > cycle:
                        ready = False
                        break
                # Loop-carried dependency on the previous iteration's
                # *last* instruction (the chain tail).
                if ready and static.carried and dyn >= body_len:
                    tail_dyn = iteration_base - 1
                    if tail_dyn not in g.ready_at or g.ready_at[tail_dyn] > cycle:
                        ready = False
                if not ready:
                    continue
                pc = pipe_for(static.op)
                key = (g.cluster, pc)
                pipe = pipes[key]
                if pipe.busy_until > cycle or key in issued_this_cycle:
                    continue
                # Issue.
                span = self._issue_span(pc)
                pipe.busy_until = cycle + span
                issued_this_cycle.add(key)
                result_latency = max(arch.l_fn, span)
                g.ready_at[dyn] = cycle + result_latency
                g.next_index += 1
                if g.next_index == total_dyn:
                    finished += 1
            cycle += 1

        # Completion time: last result availability across groups.
        end = max(
            (max(g.ready_at.values(), default=0) for g in groups), default=0
        )
        return SimResult(
            cycles=end,
            dynamic_instructions=total_dyn * n_groups,
            n_groups=n_groups,
        )
