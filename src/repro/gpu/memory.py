"""Device memory models: global allocations and shared-memory banks.

Two independent concerns:

* :class:`GlobalMemoryTracker` enforces the device limits of Table I
  (total global memory and the per-buffer ``CL_DEVICE_MAX_MEM_ALLOC_SIZE``),
  so problems that do not fit -- the GTX 980 case of Section VI-E2 --
  fail allocation exactly as the real OpenCL stack would, forcing the
  tiled/double-buffered path.
* :class:`SharedMemoryBankModel` computes bank-conflict serialization
  factors for access patterns.  "Simultaneous accesses to *different*
  elements in the same bank will cause a bank conflict, resulting in a
  serialization of memory accesses" (Section IV-A).  The conflict
  factor for one group access is the maximum, over banks, of the
  number of *distinct word addresses* touching that bank; broadcasts
  (same address) do not conflict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError, DeviceError
from repro.gpu.arch import GPUArchitecture

__all__ = ["GlobalMemoryTracker", "SharedMemoryBankModel"]


@dataclass
class GlobalMemoryTracker:
    """Book-keeping of global-memory allocations against device limits."""

    arch: GPUArchitecture
    allocated_bytes: int = 0
    _live: dict[int, int] = field(default_factory=dict)
    _next_handle: int = 1

    def allocate(self, n_bytes: int) -> int:
        """Reserve ``n_bytes``; returns an opaque allocation handle.

        Raises
        ------
        AllocationError
            If the buffer exceeds the max single allocation or would
            overflow total global memory.
        """
        if n_bytes <= 0:
            raise AllocationError(f"allocate: size must be positive, got {n_bytes}")
        if n_bytes > self.arch.max_alloc_bytes:
            raise AllocationError(
                f"allocate: {n_bytes} bytes exceeds max allocation "
                f"{self.arch.max_alloc_bytes} on {self.arch.name}"
            )
        if self.allocated_bytes + n_bytes > self.arch.global_memory_bytes:
            raise AllocationError(
                f"allocate: {n_bytes} bytes would exceed global memory "
                f"({self.allocated_bytes} of {self.arch.global_memory_bytes} "
                f"in use) on {self.arch.name}"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = n_bytes
        self.allocated_bytes += n_bytes
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation; double-free raises."""
        size = self._live.pop(handle, None)
        if size is None:
            raise DeviceError(f"free: unknown or already-freed handle {handle}")
        self.allocated_bytes -= size

    @property
    def free_bytes(self) -> int:
        return self.arch.global_memory_bytes - self.allocated_bytes

    @property
    def n_live(self) -> int:
        return len(self._live)


@dataclass(frozen=True)
class SharedMemoryBankModel:
    """Bank-conflict analysis for one compute core's shared memory."""

    n_banks: int
    word_bytes: int = 4

    def bank_of(self, word_address: int) -> int:
        """Bank servicing a word-granular address."""
        if word_address < 0:
            raise DeviceError(f"bank_of: negative address {word_address}")
        return word_address % self.n_banks

    def conflict_factor(self, word_addresses: np.ndarray) -> int:
        """Serialization factor for one simultaneous group access.

        The access completes in as many passes as the most-loaded bank
        has *distinct* addresses; identical addresses broadcast in one
        pass.  Returns 1 for conflict-free (or empty) accesses.
        """
        addrs = np.unique(np.asarray(word_addresses, dtype=np.int64))
        if addrs.size == 0:
            return 1
        if (addrs < 0).any():
            raise DeviceError("conflict_factor: negative address in access")
        banks = addrs % self.n_banks
        counts = np.bincount(banks, minlength=self.n_banks)
        return int(counts.max(initial=1))

    def strided_conflict_factor(self, stride_words: int, n_threads: int) -> int:
        """Conflict factor for the common pattern ``addr_i = i * stride``.

        This is the access the kernel's A-tile reads generate: thread
        ``i`` of a group touches word ``i * stride``.  Equals
        ``gcd(stride, n_banks)`` capped by the thread count -- the
        classic power-of-two-stride pathology.
        """
        if stride_words < 0 or n_threads < 0:
            raise DeviceError("strided_conflict_factor: negative argument")
        if n_threads == 0:
            return 1
        addrs = np.arange(n_threads, dtype=np.int64) * stride_words
        return self.conflict_factor(addrs)
