"""Chrome-trace export of simulated pipeline schedules.

Serializes a :class:`~repro.gpu.device.CommandQueue`'s profiled events
into the Chrome Trace Event JSON format (the ``chrome://tracing`` /
Perfetto array-of-events form), one track per engine.  This gives the
simulated double-buffering schedule the same tooling surface a real
OpenCL profiler trace would have.

Format: complete events (``"ph": "X"``) with microsecond timestamps;
``pid`` is the device, ``tid`` the engine lane.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.gpu.device import CommandQueue
from repro.util.timing import TimeLine

__all__ = ["trace_events", "write_chrome_trace"]

_LANES = ("h2d", "compute", "d2h")


def _lane_timelines(queue: CommandQueue) -> dict[str, TimeLine]:
    return {
        "h2d": queue.transfers.h2d,
        "compute": queue.compute,
        "d2h": queue.transfers.d2h,
    }


def trace_events(queue: CommandQueue) -> list[dict[str, object]]:
    """The queue's schedule as Chrome Trace Event dicts.

    Includes one metadata event naming the process (device) and one
    per engine lane, followed by a complete event per command interval.
    """
    device = queue.arch.name
    events: list[dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": device,
            "args": {"name": f"simulated {device}"},
        }
    ]
    for tid, name in enumerate(_LANES):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": device,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for tid, lane in enumerate(_LANES):
        timeline = _lane_timelines(queue)[lane]
        for interval in timeline.intervals:
            events.append(
                {
                    "ph": "X",
                    "name": interval.label,
                    "cat": lane,
                    "pid": device,
                    "tid": tid,
                    "ts": interval.start * 1e6,      # microseconds
                    "dur": interval.duration * 1e6,
                }
            )
    return events


def write_chrome_trace(queue: CommandQueue, path: str | os.PathLike) -> int:
    """Write the queue's trace to ``path``; returns the event count."""
    events = trace_events(queue)
    Path(path).write_text(json.dumps(events, indent=1), encoding="utf-8")
    return len(events)
