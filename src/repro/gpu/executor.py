"""Kernel execution: functional results + modeled timing.

``execute_kernel`` is where the two halves of the simulation meet:

* the **functional path** computes the exact comparison table with the
  shared :mod:`repro.blis` drivers -- the blocked five-loop walk for
  small problems (exercising the genuine tile structure the kernel
  implements) and the identity-based fast path for large ones (bit
  exact, see :func:`repro.blis.gemm.bit_gemm_fast`); with
  ``workers > 1`` it routes through the sharded host engine
  (:mod:`repro.parallel.engine`) instead, which partitions the same
  :class:`~repro.blis.blocking.BlockingPlan` across a thread pool;
* the **timing path** prices the launch with the analytical cycle
  model (:mod:`repro.gpu.cycles`).

Both consume the same :class:`~repro.blis.blocking.BlockingPlan`, so
what is computed and what is priced cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blis.gemm import (
    bit_gemm_backend,
    bit_gemm_blocked,
    bit_gemm_fast,
    same_operand,
)
from repro.errors import KernelLaunchError, ReproError
from repro.gpu.cycles import CycleBreakdown, kernel_cycles
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.kernels import DEFAULT_BACKEND_NAME, resolve_backend_name
from repro.observability.counters import KERNEL_LAUNCHES, KERNEL_RETRIES
from repro.observability.tracer import get_tracer
from repro.parallel.engine import ParallelReport, get_engine
from repro.resilience.retry import Disposition, classify
from repro.resilience.runtime import get_resilience

__all__ = [
    "KernelProfile",
    "execute_kernel",
    "price_kernel",
    "BLOCKED_PATH_OP_LIMIT",
]

#: Problems up to this many word-ops run the genuine blocked tile walk;
#: larger ones switch to the bit-exact identity path to keep the Python
#: functional simulation tractable.
BLOCKED_PATH_OP_LIMIT = 2_000_000


@dataclass(frozen=True)
class KernelProfile:
    """Timing and accounting for one simulated kernel launch.

    ``parallel`` carries the host-engine report (shard profiles, cache
    stats) when the functional path ran sharded; ``None`` for serial
    and timing-only launches.  ``retries`` counts launch re-attempts
    after transient (injected) kernel-launch faults.
    """

    kernel_name: str
    device: str
    breakdown: CycleBreakdown
    used_blocked_path: bool
    parallel: ParallelReport | None = None
    retries: int = 0

    @property
    def seconds(self) -> float:
        return self.breakdown.seconds

    @property
    def throughput_word_ops(self) -> float:
        return self.breakdown.throughput_word_ops

    @property
    def efficiency(self) -> float:
        return self.breakdown.efficiency


def price_kernel(kernel: SnpKernel, args: KernelArgs) -> KernelProfile:
    """Timing-only launch: the cycle model without functional compute.

    Used by the end-to-end estimator for paper-scale problems (a 20
    million row database is priced, not materialized).  On any problem
    both paths produce *identical* timing because they share the plan
    and the cycle model -- the test suite asserts this.
    """
    plan = kernel.blocking_plan(args.m, args.n, args.k)
    breakdown = kernel_cycles(kernel.arch, plan, kernel.op)
    return KernelProfile(
        kernel_name=f"snp_{kernel.op.value}",
        device=kernel.arch.name,
        breakdown=breakdown,
        used_blocked_path=False,
    )


def execute_kernel(
    kernel: SnpKernel,
    a_words: np.ndarray,
    b_words: np.ndarray,
    args: KernelArgs | None = None,
    force_blocked_path: bool | None = None,
    workers: int | None = None,
    symmetric: bool | None = None,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> tuple[np.ndarray, KernelProfile]:
    """Run one kernel launch; returns (C table, profile).

    Parameters
    ----------
    kernel:
        A compiled :class:`SnpKernel`.
    a_words, b_words:
        Packed operands of shape ``(m, k)`` and ``(n, k)`` in the
        device's word width.
    args:
        Explicit extents; default derives them from the operands.
    force_blocked_path:
        Override the functional-path size heuristic (tests use this).
    workers:
        With ``workers > 1`` the functional table is computed by the
        sharded host engine on a shared thread pool (bit-exact; the
        engine falls back to the serial drivers below its crossover).
        ``None``/``1`` keeps the serial paths.  Ignored when
        ``force_blocked_path`` pins the serial blocked walk.
    symmetric:
        Gram-mode hint.  ``None`` auto-detects (same packed matrix on
        both sides + symmetric op); ``True`` requires it (validated);
        ``False`` disables the triangular path even for
        self-comparisons.
    strategy:
        Host-engine shard strategy (``"auto"``/``"gemm"``/
        ``"blocked"``); ``"auto"`` consults the persisted host tuning
        cache.  Only used when the engine path runs.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`) for the functional
        table.  ``"auto"`` defers to ``REPRO_BACKEND`` / the tuner /
        the reference backend; an explicit name is validated.  On the
        serial path a non-default backend computes the table through
        :func:`repro.blis.gemm.bit_gemm_backend` (bit-exact); Gram-mode
        serial runs and pinned blocked walks stay on the reference
        drivers so their counters and tile structure are unchanged.
    executor:
        Host-engine shard executor (``"auto"``/``"thread"``/
        ``"process"``): where the engine path runs its shards (see
        :mod:`repro.parallel.procpool`).  Only used when the engine
        path runs.
    """
    a = np.asarray(a_words)
    b = np.asarray(b_words)
    expected = np.uint32 if kernel.arch.word_bits == 32 else np.uint64
    if a.dtype != expected or b.dtype != expected:
        raise KernelLaunchError(
            f"execute_kernel: operands must be {expected.__name__} on "
            f"{kernel.arch.name}, got {a.dtype}/{b.dtype}"
        )
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise KernelLaunchError(
            f"execute_kernel: bad operand shapes {a.shape} / {b.shape}"
        )
    if args is None:
        args = KernelArgs(m=a.shape[0], n=b.shape[0], k=a.shape[1])
    if (args.m, args.k) != a.shape or (args.n, args.k) != b.shape:
        raise KernelLaunchError(
            f"execute_kernel: args {args} inconsistent with operands "
            f"{a.shape} / {b.shape}"
        )

    plan = kernel.blocking_plan(args.m, args.n, args.k)
    use_blocked = (
        plan.total_ops() <= BLOCKED_PATH_OP_LIMIT
        if force_blocked_path is None
        else force_blocked_path
    )
    obs = get_tracer()
    res = get_resilience()
    obs.counters.add(KERNEL_LAUNCHES)
    parallel_report: ParallelReport | None = None
    launch_retries = 0
    with obs.span(
        "kernel.execute",
        kernel=f"snp_{kernel.op.value}",
        device=kernel.arch.name,
        m=args.m,
        n=args.n,
        k=args.k,
    ):
        # Launch loop: an injected transient kernel-launch fault (or a
        # retryable fault that escaped the engine's shard-level
        # handling) is re-attempted under the active retry policy; each
        # attempt consumes one kernel ordinal, so ``kernel:c`` specs
        # model c consecutive failed launches before success.
        attempt = 0
        while True:
            try:
                res.injector.check("kernel", attempt=attempt)
                if (
                    workers is not None
                    and workers > 1
                    and force_blocked_path is None
                ):
                    c, parallel_report = get_engine(
                        workers, strategy, backend, executor
                    ).run(a, b, kernel.op, plan=plan, symmetric=symmetric)
                    use_blocked = False
                else:
                    serial_symmetric = (
                        kernel.op.is_symmetric and same_operand(a, b)
                        if symmetric is None
                        else symmetric
                    )
                    resolved = resolve_backend_name(backend)
                    if (
                        resolved != DEFAULT_BACKEND_NAME
                        and not serial_symmetric
                        and force_blocked_path is None
                    ):
                        c = bit_gemm_backend(a, b, kernel.op, backend=resolved)
                        use_blocked = False
                    elif use_blocked:
                        c = bit_gemm_blocked(
                            a, b, kernel.op, plan, symmetric=serial_symmetric
                        )
                    else:
                        c = bit_gemm_fast(
                            a, b, kernel.op, symmetric=serial_symmetric
                        )
                break
            except ReproError as exc:
                if (
                    classify(exc) is not Disposition.RETRY
                    or attempt + 1 >= res.policy.max_attempts
                ):
                    raise
                launch_retries += 1
                obs.counters.add(KERNEL_RETRIES)
                res.policy.wait(launch_retries - 1)
                attempt += 1

    breakdown = kernel_cycles(kernel.arch, plan, kernel.op)
    profile = KernelProfile(
        kernel_name=f"snp_{kernel.op.value}",
        device=kernel.arch.name,
        breakdown=breakdown,
        used_blocked_path=use_blocked,
        parallel=parallel_report,
        retries=launch_retries,
    )
    return c, profile
