"""Simulated GPU substrate: the paper's model GPU architecture, executable.

This package is the hardware substitution documented in DESIGN.md.  It
provides, in layers:

* :mod:`repro.gpu.arch` -- the model GPU architecture of Section IV-A
  (thread groups, compute cores/clusters, per-instruction functional
  units, shared-memory banks, ...) with presets for the three
  evaluation GPUs (Table I).
* :mod:`repro.gpu.isa` -- the instruction classes the kernels use and
  their pipeline assignment per architecture (Section V-D's dual-pipe
  observation: POPC is separate from integer ALU on all three devices;
  on Vega, ADD and AND share the ALU pipe).
* :mod:`repro.gpu.memory` -- global-memory allocation limits and the
  shared-memory bank-conflict model.
* :mod:`repro.gpu.event`, :mod:`repro.gpu.transfer`,
  :mod:`repro.gpu.device` -- an OpenCL-flavoured device stack
  (platform/context/queue/buffer/event with event profiling) whose
  timestamps come from the analytical timing model.
* :mod:`repro.gpu.coresim` -- a cycle-level simulator of one compute
  core (thread-group scheduler, pipelined functional units) used by the
  microbenchmark procedures of Section V-C/D.
* :mod:`repro.gpu.microbench` -- the latency/throughput measurement
  procedures themselves.
* :mod:`repro.gpu.cycles` -- the analytical kernel cycle model (peak
  pipelines, latency hiding, scaling/contention) that prices kernel
  launches.
* :mod:`repro.gpu.kernel`, :mod:`repro.gpu.executor` -- the
  parameterized SNP-comparison kernel and its functional+timed
  execution.
"""

from repro.gpu.arch import (
    GPUArchitecture,
    GTX_980,
    TITAN_V,
    VEGA_64,
    ALL_GPUS,
    get_gpu,
)
from repro.gpu.isa import Instruction, PipeClass, pipe_for, units_per_cluster
from repro.gpu.device import Platform, Device, Context, CommandQueue, Buffer
from repro.gpu.event import Event, EventStatus
from repro.gpu.kernel import SnpKernel, KernelArgs
from repro.gpu.executor import execute_kernel, KernelProfile
from repro.gpu.occupancy import OccupancyReport, occupancy_report
from repro.gpu.tilesim import TileStats, simulate_core_tile
from repro.gpu.memsim import (
    QueueModelParams,
    emergent_scaling_curve,
    fit_queue_model,
)
from repro.gpu.tracing import trace_events, write_chrome_trace

__all__ = [
    "GPUArchitecture",
    "GTX_980",
    "TITAN_V",
    "VEGA_64",
    "ALL_GPUS",
    "get_gpu",
    "Instruction",
    "PipeClass",
    "pipe_for",
    "units_per_cluster",
    "Platform",
    "Device",
    "Context",
    "CommandQueue",
    "Buffer",
    "Event",
    "EventStatus",
    "SnpKernel",
    "KernelArgs",
    "execute_kernel",
    "KernelProfile",
    "OccupancyReport",
    "occupancy_report",
    "TileStats",
    "simulate_core_tile",
    "QueueModelParams",
    "emergent_scaling_curve",
    "fit_queue_model",
    "trace_events",
    "write_chrome_trace",
]
