"""The parameterized SNP-comparison kernel.

In the real system this is one OpenCL C kernel configured entirely by
C macros from a header file (Section V): "our GPU kernel is
parameterized via C macros which are captured in a header file ...
only 4 values are required": ``m_c, m_r, k_c, n_r`` (plus the core-grid
distribution of loops 2/3).  :class:`SnpKernel` is the simulated
counterpart: the same parameters, validated against the model
architecture exactly as the OpenCL compiler/runtime would reject an
invalid configuration.

The kernel implements the third loop around the BLIS micro-kernel and
its contents: stage an ``m_c x k_c`` tile of A in shared memory, then
stream B from global memory while each thread group accumulates an
``m_r x (n_r / L_fn)`` register tile of C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError, KernelLaunchError
from repro.gpu.arch import GPUArchitecture

__all__ = ["SnpKernel", "KernelArgs"]


@dataclass(frozen=True)
class SnpKernel:
    """A compiled (validated) kernel instance for one device.

    Parameters mirror the configuration header: the four BLIS values
    and the core grid.  ``validate`` is called on construction via
    :meth:`compile`; direct construction skips hardware checks (used by
    tests probing invalid configurations).
    """

    arch: GPUArchitecture
    op: ComparisonOp
    m_c: int
    m_r: int
    k_c: int
    n_r: int
    grid_rows: int = 1
    grid_cols: int = 1

    @classmethod
    def compile(
        cls,
        arch: GPUArchitecture,
        op: ComparisonOp | str,
        m_c: int,
        m_r: int,
        k_c: int,
        n_r: int,
        grid_rows: int = 1,
        grid_cols: int = 1,
    ) -> "SnpKernel":
        """Validate the configuration against ``arch`` and build the kernel."""
        kernel = cls(
            arch=arch,
            op=ComparisonOp(op) if isinstance(op, str) else op,
            m_c=m_c,
            m_r=m_r,
            k_c=k_c,
            n_r=n_r,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
        )
        kernel.validate()
        return kernel

    def validate(self) -> None:
        """Hardware-feasibility checks the OpenCL build/launch would make."""
        arch = self.arch
        for name in ("m_c", "m_r", "k_c", "n_r", "grid_rows", "grid_cols"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"SnpKernel: {name} must be positive")
        if self.m_r % arch.n_vec != 0:
            raise ConfigurationError(
                f"SnpKernel: m_r ({self.m_r}) must be a multiple of the vector "
                f"load width N_vec ({arch.n_vec}) -- Eq. 4"
            )
        if self.m_c % self.m_r != 0:
            raise ConfigurationError(
                f"SnpKernel: m_c ({self.m_c}) must be a multiple of m_r ({self.m_r})"
            )
        shared_needed = self.m_c * self.k_c * arch.word_bytes
        if shared_needed > arch.usable_shared_memory_bytes:
            raise ConfigurationError(
                f"SnpKernel: A tile of {shared_needed} bytes exceeds usable "
                f"shared memory ({arch.usable_shared_memory_bytes} bytes) on "
                f"{arch.name}"
            )
        if self.n_r % arch.l_fn != 0:
            raise ConfigurationError(
                f"SnpKernel: n_r ({self.n_r}) must be divisible by L_fn "
                f"({arch.l_fn}) so each of the L_fn thread groups owns an "
                f"equal column slice"
            )
        if self.grid_rows * self.grid_cols > arch.n_c:
            raise ConfigurationError(
                f"SnpKernel: core grid {self.grid_rows}x{self.grid_cols} "
                f"exceeds {arch.n_c} compute cores on {arch.name}"
            )
        resident_groups = arch.n_cl * arch.l_fn
        if resident_groups > arch.n_grp_max:
            raise ConfigurationError(
                f"SnpKernel: occupancy {resident_groups} thread groups exceeds "
                f"device limit {arch.n_grp_max} on {arch.name}"
            )

    @property
    def n_cores(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def threads_per_core(self) -> int:
        """Work-group size the launch uses (the framework's occupancy)."""
        return self.arch.n_cl * self.arch.l_fn * self.arch.n_t

    def blocking_plan(self, m: int, n: int, k: int) -> BlockingPlan:
        """The BLIS blocking this kernel induces on an (m, n, k) problem."""
        return BlockingPlan(
            m=m,
            n=n,
            k=k,
            m_c=self.m_c,
            k_c=self.k_c,
            m_r=self.m_r,
            n_r=self.n_r,
            grid_rows=self.grid_rows,
            grid_cols=self.grid_cols,
        )


@dataclass(frozen=True)
class KernelArgs:
    """Launch arguments: problem extents in packed words.

    ``m``: rows of A / C; ``n``: rows of B (columns of C); ``k``:
    packed words of the reduction dimension.
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise KernelLaunchError(
                f"KernelArgs: extents must be positive, got "
                f"({self.m}, {self.n}, {self.k})"
            )
