"""OpenCL-style events with profiling timestamps.

The paper measures kernel time with "OpenCL's event profiling"
(Section VI-A1).  Our simulated stack mirrors that interface: every
enqueued command returns an :class:`Event` carrying the four OpenCL
profiling timestamps (QUEUED, SUBMIT, START, END) in simulated seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["EventStatus", "Event"]


class EventStatus(enum.Enum):
    """Lifecycle of a command (simplified OpenCL execution status)."""

    QUEUED = "queued"
    COMPLETE = "complete"


@dataclass
class Event:
    """Profiling record of one enqueued command.

    Attributes
    ----------
    label:
        Human-readable command description (``"kernel:ld"``,
        ``"write:A[0]"``, ...).
    queued_at, submitted_at, started_at, ended_at:
        Simulated timestamps; ``started_at``/``ended_at`` are only
        valid once :attr:`status` is COMPLETE.
    """

    label: str
    queued_at: float
    submitted_at: float = 0.0
    started_at: float = 0.0
    ended_at: float = 0.0
    status: EventStatus = EventStatus.QUEUED

    def complete(self, submitted_at: float, started_at: float, ended_at: float) -> None:
        """Mark the command complete with its execution interval."""
        if ended_at < started_at:
            raise DeviceError(
                f"Event {self.label!r}: end {ended_at} before start {started_at}"
            )
        self.submitted_at = submitted_at
        self.started_at = started_at
        self.ended_at = ended_at
        self.status = EventStatus.COMPLETE

    @property
    def duration(self) -> float:
        """Execution time in simulated seconds (START to END)."""
        if self.status is not EventStatus.COMPLETE:
            raise DeviceError(
                f"Event {self.label!r}: profiling info requested before completion"
            )
        return self.ended_at - self.started_at

    @property
    def latency(self) -> float:
        """Queue-to-completion time in simulated seconds."""
        if self.status is not EventStatus.COMPLETE:
            raise DeviceError(
                f"Event {self.label!r}: profiling info requested before completion"
            )
        return self.ended_at - self.queued_at

    def __repr__(self) -> str:
        if self.status is EventStatus.COMPLETE:
            return (
                f"Event({self.label!r}, start={self.started_at:.6f}, "
                f"end={self.ended_at:.6f})"
            )
        return f"Event({self.label!r}, queued={self.queued_at:.6f}, pending)"
