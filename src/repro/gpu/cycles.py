"""Analytical kernel cycle model.

Prices one SNP-comparison kernel launch on a model GPU, following the
paper's Section V-D bottleneck methodology plus the Section VI
observations (scaling knee, DVFS, data-reuse ramp).  The model is the
source of all *simulated device timestamps*; the functional executor
computes results, this module computes when they would be ready.

Decomposition (multiplicative stall factors on the ideal pipe time):

``cycles = ideal_cycles * stall_latency * stall_conflict * stall_spill
           / (balance * ramp * scaling)``

* **ideal_cycles** -- word-ops / (words-per-cycle-per-core x cores),
  where words-per-cycle follows the per-pipe unit counts and the
  kernel's instruction mix; the binding pipe is the one with the
  largest cycles-per-word (POPC on NVIDIA, the shared ALU pipe on
  Vega -- Section V-D).
* **stall_latency** -- if ``n_r`` provides fewer than ``L_fn`` thread
  groups per cluster (Eq. 7 violated), dependent-instruction latency
  is exposed: factor ``n_r_min / n_r``.
* **stall_conflict** -- shared-memory bank serialization when the
  A-tile access width exceeds the bank-conflict-free width.
* **stall_spill** -- register spilling when the per-thread accumulator
  block exceeds the register budget at the chosen occupancy.
* **balance** -- load balance across the core grid (exact, from the
  blocking plan).
* **ramp** -- the data-reuse ramp of Fig. 5: small per-core output
  extents leave latency unhidden; ``x / (x + ramp_half_size)``.
* **scaling** -- the per-core efficiency decline past the memory
  contention knee (Fig. 7): ``1 / (1 + decay * max(0, cores - knee))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.isa import PipeClass, instruction_mix_pipes

__all__ = [
    "kernel_instruction_mix",
    "cycles_per_word_per_cluster",
    "bottleneck_pipe",
    "words_per_cycle_per_core",
    "peak_word_ops_per_second",
    "scaling_efficiency",
    "effective_frequency_hz",
    "ramp_efficiency",
    "latency_stall_factor",
    "conflict_stall_factor",
    "spill_stall_factor",
    "min_n_r",
    "CycleBreakdown",
    "kernel_cycles",
]


def kernel_instruction_mix(
    arch: GPUArchitecture, op: ComparisonOp | str
) -> tuple[int, int]:
    """Per-packed-word (alu_ops, popc_ops) for ``op`` on ``arch``.

    Includes the shared accumulate (1 POPC + 1 integer ADD).  The
    AND-NOT combiner costs one ALU op on architectures with a fused
    instruction and two (NOT then AND) otherwise -- the Fig. 9 effect.
    """
    kernel = get_microkernel(op)
    mix = kernel.mix
    return mix.alu_ops(arch.has_fused_andnot), mix.popc

def cycles_per_word_per_cluster(
    arch: GPUArchitecture, op: ComparisonOp | str
) -> float:
    """Cluster-cycles to retire one packed word of the comparison."""
    alu_ops, popc_ops = kernel_instruction_mix(arch, op)
    pipes = instruction_mix_pipes(arch, alu_ops, popc_ops)
    return max(pipes.values())


def bottleneck_pipe(arch: GPUArchitecture, op: ComparisonOp | str) -> PipeClass:
    """Which pipe binds the kernel's throughput (Section V-D)."""
    alu_ops, popc_ops = kernel_instruction_mix(arch, op)
    pipes = instruction_mix_pipes(arch, alu_ops, popc_ops)
    return max(pipes, key=lambda p: pipes[p])


def words_per_cycle_per_core(
    arch: GPUArchitecture, op: ComparisonOp | str
) -> float:
    """Packed words retired per cycle by one compute core at peak."""
    return arch.n_cl / cycles_per_word_per_cluster(arch, op)


def peak_word_ops_per_second(
    arch: GPUArchitecture,
    op: ComparisonOp | str = ComparisonOp.AND,
    n_cores: int | None = None,
) -> float:
    """Theoretical peak throughput (packed 32-bit word-ops per second).

    This is the dotted line of Fig. 5.  ``n_cores`` defaults to the
    full device.
    """
    cores = arch.n_c if n_cores is None else n_cores
    if not (1 <= cores <= arch.n_c):
        raise ModelError(
            f"peak_word_ops_per_second: n_cores={cores} outside [1, {arch.n_c}]"
        )
    return words_per_cycle_per_core(arch, op) * cores * arch.frequency_hz


def scaling_efficiency(arch: GPUArchitecture, n_cores: int) -> float:
    """Per-core efficiency at ``n_cores`` active cores (Fig. 7 model).

    Memory-system contention past the knee; 1.0 at or below it.
    """
    if not (1 <= n_cores <= arch.n_c):
        raise ModelError(
            f"scaling_efficiency: n_cores={n_cores} outside [1, {arch.n_c}]"
        )
    mem = arch.memory
    excess = max(0, n_cores - mem.scaling_knee_cores)
    return 1.0 / (1.0 + mem.scaling_decay * excess)


def effective_frequency_hz(arch: GPUArchitecture, n_cores: int) -> float:
    """Clock at ``n_cores`` active cores (DVFS term, Section VI-C)."""
    scale = arch.memory.single_core_frequency_scale if n_cores == 1 else 1.0
    return arch.frequency_hz * scale


def ramp_efficiency(arch: GPUArchitecture, per_core_output_extent: float) -> float:
    """Data-reuse/latency ramp as a function of per-core output width.

    Small outputs leave global-memory latency and panel-load cost
    unamortized (the rising part of Fig. 5); saturates toward 1.
    """
    x = max(0.0, float(per_core_output_extent))
    half = arch.memory.ramp_half_size
    return x / (x + half) if half > 0 else 1.0


def min_n_r(arch: GPUArchitecture, m_r: int, m_c: int) -> int:
    """Eq. 7's lower bound on ``n_r`` for full latency hiding."""
    if m_r <= 0 or m_c <= 0:
        raise ModelError("min_n_r: m_r and m_c must be positive")
    subgroup = arch.n_t * m_r / m_c
    return int(subgroup * arch.n_vec * arch.l_fn)


def latency_stall_factor(arch: GPUArchitecture, plan: BlockingPlan) -> float:
    """Slowdown when ``n_r`` is below the Eq. 7 bound (>= 1.0)."""
    bound = min_n_r(arch, plan.m_r, plan.m_c)
    if bound <= 0:
        return 1.0
    return max(1.0, bound / plan.n_r)


def conflict_stall_factor(arch: GPUArchitecture, plan: BlockingPlan) -> float:
    """Bank-conflict serialization of the shared A-tile reads (>= 1.0).

    The packed A tile is ``m_c`` words tall; simultaneous cluster
    accesses are conflict-free while ``m_c <= N_b`` (the published
    configurations use ``m_c = N_b = 32``).  Beyond that, reads
    serialize proportionally.
    """
    if plan.m_c <= arch.shared_memory_banks:
        return 1.0
    return plan.m_c / arch.shared_memory_banks


def spill_stall_factor(arch: GPUArchitecture, plan: BlockingPlan) -> float:
    """Register-spill slowdown when the accumulator block overflows.

    Each thread holds ``m_r * n_r / (L_fn * N_T)`` accumulators plus a
    fixed overhead of ~16 registers for addresses and operands.  Beyond
    the per-thread budget at the framework's occupancy, every excess
    accumulator turns a register access into a (modeled 4x slower)
    local-memory access for its share of the inner loop.
    """
    accumulators = plan.m_r * plan.n_r / (arch.l_fn * arch.n_t)
    needed = accumulators + 16
    budget = min(arch.registers_per_thread(), arch.max_registers_per_thread)
    if needed <= budget:
        return 1.0
    spilled_fraction = (needed - budget) / needed
    return 1.0 + 3.0 * spilled_fraction


def _grid_load(plan: BlockingPlan) -> tuple[float, int]:
    """(load balance, busiest core's column extent).

    Balance is total_ops / (n_cores * max_core_ops); the column extent
    of the most-loaded core drives the reuse ramp (it determines the
    makespan, so averaging over idle cores would double-count skew).
    """
    assignments = plan.core_assignments()
    per_core = [a.m_size * a.n_size * plan.k for a in assignments]
    busiest = max(per_core, default=0)
    if busiest == 0:
        return 1.0, plan.n
    total = sum(per_core)
    balance = total / (len(per_core) * busiest)
    max_cols = max(
        (a.n_size for a in assignments if not a.is_empty), default=plan.n
    )
    return balance, max_cols


@dataclass(frozen=True)
class CycleBreakdown:
    """Itemized cost of one kernel launch on the model GPU."""

    word_ops: int
    ideal_cycles: float
    stall_latency: float
    stall_conflict: float
    stall_spill: float
    balance: float
    ramp: float
    scaling: float
    total_cycles: float
    frequency_hz: float
    bottleneck: PipeClass

    @property
    def seconds(self) -> float:
        """Kernel execution time in simulated seconds."""
        return self.total_cycles / self.frequency_hz

    @property
    def throughput_word_ops(self) -> float:
        """Achieved packed-word throughput (word-ops per second)."""
        return self.word_ops / self.seconds if self.seconds > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Achieved / ideal cycle ratio (fraction of pipe peak)."""
        if self.total_cycles <= 0:
            return 1.0
        return self.ideal_cycles / self.total_cycles


def kernel_cycles(
    arch: GPUArchitecture,
    plan: BlockingPlan,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> CycleBreakdown:
    """Price one kernel launch executing ``plan`` on ``arch``.

    ``plan.n_cores`` cores participate (the paper's "core
    configuration"); extents and the reduction length come from the
    plan.  Returns the full factor decomposition for reporting.
    """
    n_cores = plan.n_cores
    if n_cores > arch.n_c:
        raise ModelError(
            f"kernel_cycles: plan uses {n_cores} cores but {arch.name} "
            f"has {arch.n_c}"
        )
    word_ops = plan.total_ops()
    wpc = words_per_cycle_per_core(arch, op)
    ideal = word_ops / (wpc * n_cores) if word_ops else 0.0

    stall_lat = latency_stall_factor(arch, plan)
    stall_conf = conflict_stall_factor(arch, plan)
    stall_sp = spill_stall_factor(arch, plan)
    # The busiest core determines the makespan: its balance and its
    # swept column extent (the streamed dimension) set the efficiency.
    balance, per_core_cols = _grid_load(plan)
    ramp = ramp_efficiency(arch, per_core_cols)
    scaling = scaling_efficiency(arch, n_cores)
    freq = effective_frequency_hz(arch, n_cores)

    denominator = balance * ramp * scaling
    if denominator <= 0:
        raise ModelError("kernel_cycles: degenerate efficiency denominator")
    total = ideal * stall_lat * stall_conf * stall_sp / denominator
    return CycleBreakdown(
        word_ops=word_ops,
        ideal_cycles=ideal,
        stall_latency=stall_lat,
        stall_conflict=stall_conf,
        stall_spill=stall_sp,
        balance=balance,
        ramp=ramp,
        scaling=scaling,
        total_cycles=total,
        frequency_hz=freq,
        bottleneck=bottleneck_pipe(arch, op),
    )
