"""Microbenchmark procedures of Section V-C/D, run on the core simulator.

The paper derives the non-spec-sheet hardware parameters (instruction
latency ``L_fn`` and per-pipe throughput ``N_fn``) by microbenchmarking
each GPU.  We reproduce the *procedures* faithfully against
:class:`~repro.gpu.coresim.CoreSimulator`:

* **Latency** (Section V-C): one thread group executes a long
  loop-carried dependent chain of the instruction; latency =
  cycles / dynamic instructions.  Using a single group avoids the
  pipelining that would otherwise hide latency (the paper's footnote 2).
* **Throughput** (Section V-D): the same program with an increasing
  number of thread groups; throughput (ops/cycle/core) saturates at
  the per-pipe unit count x ``N_cl``.  The paper's expectations --
  flat time for ``N_grp <= N_cl``, saturation by
  ``N_grp = N_cl * L_fn`` -- fall out of the simulator.
* **Pipe sharing** (Section V-D): interleave two instruction streams;
  if execution time stays (nearly) flat versus the slower stream
  alone, the instructions run on separate pipes (POPC vs ALU on all
  three GPUs); if times add, they share a pipe (ADD and AND on Vega).

These procedures *recover* the parameters the simulator was configured
with -- an end-to-end validation that the measurement methodology of
the paper extracts the right numbers from a machine honouring the model
architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.coresim import CoreSimulator, Program
from repro.gpu.isa import Instruction

__all__ = [
    "measure_latency",
    "measure_throughput",
    "throughput_sweep",
    "pipes_are_shared",
    "MicrobenchReport",
    "run_microbench_suite",
]

#: Loop-body length and trip count of the measurement programs.  Long
#: enough that loop-management effects vanish (Section V-C's advice),
#: short enough that the cycle-stepped simulator stays fast.
_BODY_LENGTH = 32
_ITERATIONS = 8


def measure_latency(
    arch: GPUArchitecture,
    instr: Instruction,
    body_length: int = _BODY_LENGTH,
    iterations: int = _ITERATIONS,
) -> float:
    """Measured instruction latency in cycles (dependent-chain method)."""
    sim = CoreSimulator(arch)
    program = Program.dependent_chain(instr, length=body_length, iterations=iterations)
    result = sim.run(program, n_groups=1)
    return result.cycles / program.dynamic_length


def measure_throughput(
    arch: GPUArchitecture,
    instr: Instruction,
    n_groups: int,
    body_length: int = _BODY_LENGTH,
    iterations: int = _ITERATIONS,
) -> float:
    """Aggregate throughput in word-ops/cycle/core at a given residency.

    Word-ops = group-instructions x N_T threads (each thread operates
    on one packed word), matching the paper's throughput formula
    ``#instructions x N_T x N_grp / (clock x time)``.
    """
    sim = CoreSimulator(arch)
    program = Program.independent_stream(instr, length=body_length, iterations=iterations)
    result = sim.run(program, n_groups=n_groups)
    if result.cycles == 0:
        raise ModelError("measure_throughput: zero-cycle run")
    return result.dynamic_instructions * arch.n_t / result.cycles


def throughput_sweep(
    arch: GPUArchitecture,
    instr: Instruction,
    max_groups: int | None = None,
) -> list[tuple[int, float]]:
    """(n_groups, word-ops/cycle) pairs up to the residency limit."""
    limit = arch.n_grp_max if max_groups is None else min(max_groups, arch.n_grp_max)
    return [
        (g, measure_throughput(arch, instr, n_groups=g)) for g in range(1, limit + 1)
    ]


def pipes_are_shared(
    arch: GPUArchitecture,
    instr_a: Instruction,
    instr_b: Instruction,
    tolerance: float = 0.25,
) -> bool:
    """Section V-D pipe-sharing probe.

    Runs each instruction stream alone and both interleaved at
    saturating residency.  If the interleaved time is close to the
    *slower* single stream, the pipes are separate; if it approaches
    the *sum*, they share a pipe.  The decision threshold is the
    midpoint, with ``tolerance`` slack.
    """
    sim = CoreSimulator(arch)
    n_groups = min(arch.n_grp_max, arch.n_cl * arch.l_fn)

    def run_cycles(program: Program) -> int:
        return sim.run(program, n_groups=n_groups).cycles

    alone_a = run_cycles(Program.independent_stream(instr_a, _BODY_LENGTH, _ITERATIONS))
    alone_b = run_cycles(Program.independent_stream(instr_b, _BODY_LENGTH, _ITERATIONS))
    both = run_cycles(
        Program.interleaved_streams((instr_a, instr_b), _BODY_LENGTH, _ITERATIONS)
    )
    separate_estimate = max(alone_a, alone_b)
    shared_estimate = alone_a + alone_b
    # Shared pipes push the interleaved time toward the sum of the
    # single-stream times; separate pipes leave it near the slower
    # stream alone.  Classify by which estimate the measurement is
    # closer to; ``tolerance`` shifts the midpoint toward "shared" so
    # borderline scheduling noise classifies as separate.
    midpoint = 0.5 * (separate_estimate + shared_estimate)
    return both >= midpoint * (1.0 + tolerance * 0.1)


def expected_chain_latency(arch: GPUArchitecture, instr: Instruction) -> int:
    """Dependent-chain latency a work-conserving pipe must exhibit.

    The chain cannot run faster than either the ISA latency ``L_fn`` or
    the pipe's per-group issue gap ``ceil(N_T / units)`` -- a group's
    ops simply do not fit through fewer units any quicker.  On most
    (device, instruction) pairs the two coincide or ``L_fn`` dominates;
    the one exception in Table I is the Titan V's POPC (4 units, 32
    threads -> 8-cycle gap above the 4-cycle latency), where silicon
    achieves the lower figure through wider internal datapaths our
    model architecture does not include.  The bench reports both
    numbers.
    """
    from repro.gpu.isa import pipe_for, units_per_cluster

    units = units_per_cluster(arch, pipe_for(instr))
    gap = -(-arch.n_t // units)
    return max(arch.l_fn, gap)


@dataclass(frozen=True)
class MicrobenchReport:
    """Recovered hardware parameters for one device.

    The ``*_expected`` fields are the architecture's configured ground
    truth; a healthy run recovers them exactly (see Table I bench).
    ``popc_latency_expected`` is the *observable* chain latency
    (:func:`expected_chain_latency`), which equals ``L_fn`` except
    where the issue gap dominates.
    """

    device: str
    popc_latency: float
    popc_latency_isa: int
    popc_latency_expected: int
    popc_throughput: float
    popc_throughput_expected: int
    alu_throughput: float
    alu_throughput_expected: int
    popc_alu_shared: bool
    add_and_shared: bool


def run_microbench_suite(arch: GPUArchitecture) -> MicrobenchReport:
    """Run the full Section V-C/D suite against one device.

    Returns per-cluster throughputs (units recovered) and the latency
    of POPC, plus the two pipe-sharing findings the paper reports:
    POPC is separate from integer math everywhere; ADD and AND always
    share the ALU pipe (which only *binds* on Vega, where the unit
    ratio makes it the bottleneck).
    """
    saturating = min(arch.n_grp_max, arch.n_cl * arch.l_fn)
    popc_tp = measure_throughput(arch, Instruction.POPC, saturating) / arch.n_cl
    alu_tp = measure_throughput(arch, Instruction.IADD, saturating) / arch.n_cl
    return MicrobenchReport(
        device=arch.name,
        popc_latency=measure_latency(arch, Instruction.POPC),
        popc_latency_isa=arch.l_fn,
        popc_latency_expected=expected_chain_latency(arch, Instruction.POPC),
        popc_throughput=popc_tp,
        popc_throughput_expected=arch.popc_units,
        alu_throughput=alu_tp,
        alu_throughput_expected=arch.alu_units,
        popc_alu_shared=pipes_are_shared(arch, Instruction.POPC, Instruction.IADD),
        add_and_shared=pipes_are_shared(arch, Instruction.IADD, Instruction.AND),
    )
