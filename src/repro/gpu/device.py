"""OpenCL-flavoured device stack: platform, context, queue, buffers.

The paper's framework "standardize[s] the creation and initialization
of the various supported OpenCL devices ... writing data from host
memory to device memory, compute kernels that operate on said data,
and reading results from device memory to host memory are handled in a
platform-independent manner" (Section V).  This module is that layer
for the simulated devices:

* :class:`Platform` enumerates the available (simulated) devices.
* :class:`Context` owns device allocations; creating the first context
  for a device pays the OpenCL initialization overhead the paper's
  end-to-end timings include (Section VI-B).
* :class:`Buffer` is a device allocation; its contents are a host-side
  NumPy array (the functional state of device memory).
* :class:`CommandQueue` enqueues writes, reads and kernel launches.
  Commands are scheduled on three engines (H2D copy, D2H copy,
  compute) honouring explicit event dependencies -- the out-of-order +
  events style the double-buffering pipeline needs.  Every command
  returns a profiled :class:`~repro.gpu.event.Event`.

All timestamps are simulated seconds from the timing model; `finish()`
returns the queue's completion time, which is what the end-to-end
benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DeviceError, KernelLaunchError
from repro.gpu.arch import ALL_GPUS, GPUArchitecture
from repro.resilience.runtime import get_resilience
from repro.gpu.event import Event
from repro.gpu.executor import KernelProfile, execute_kernel
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.gpu.memory import GlobalMemoryTracker
from repro.gpu.transfer import D2H, H2D, TransferEngine
from repro.util.timing import TimeLine

__all__ = ["Platform", "Device", "Context", "Buffer", "CommandQueue"]


@dataclass(frozen=True)
class Platform:
    """A simulated OpenCL platform exposing the modeled GPUs."""

    name: str = "repro simulated OpenCL"
    vendor: str = "repro"

    @staticmethod
    def get_platforms() -> list["Platform"]:
        return [Platform()]

    def get_devices(self) -> list["Device"]:
        return [Device(arch) for arch in ALL_GPUS]


class Device:
    """One simulated GPU, identified by its architecture."""

    def __init__(self, arch: GPUArchitecture) -> None:
        self.arch = arch

    @property
    def name(self) -> str:
        return self.arch.name

    def create_context(self) -> "Context":
        return Context(self)

    def __repr__(self) -> str:
        return f"Device({self.arch.name!r})"


class Buffer:
    """A device global-memory allocation with functional contents."""

    def __init__(self, context: "Context", n_bytes: int, label: str = "") -> None:
        self.context = context
        self.n_bytes = n_bytes
        self.label = label or f"buf{id(self) & 0xFFFF:04x}"
        self._handle = context.memory.allocate(n_bytes)
        self._data: np.ndarray | None = None
        self._released = False

    @property
    def data(self) -> np.ndarray:
        """Current device contents; raises if never written."""
        self._check_live()
        if self._data is None:
            raise DeviceError(f"Buffer {self.label!r}: read before any write")
        return self._data

    def _check_live(self) -> None:
        if self._released:
            raise DeviceError(f"Buffer {self.label!r}: used after release")

    def _store(self, array: np.ndarray) -> None:
        self._check_live()
        if array.nbytes > self.n_bytes:
            raise DeviceError(
                f"Buffer {self.label!r}: writing {array.nbytes} bytes into a "
                f"{self.n_bytes}-byte buffer"
            )
        self._data = array

    def release(self) -> None:
        """Free the allocation; double release raises."""
        self._check_live()
        self.context.memory.free(self._handle)
        self._released = True
        self._data = None


class Context:
    """Owns a device's allocations; creation pays the OpenCL init cost."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self.memory = GlobalMemoryTracker(device.arch)
        #: Simulated time at which the context became usable.
        self.ready_at = device.arch.memory.init_overhead_s

    def create_buffer(self, n_bytes: int, label: str = "") -> Buffer:
        # Fault-injection hook: an ``alloc`` spec makes this allocation
        # raise FaultInjectedError (retryable; see repro.resilience).
        get_resilience().injector.check("alloc")
        return Buffer(self, n_bytes, label)

    def create_queue(self) -> "CommandQueue":
        return CommandQueue(self)


def _wait_time(wait_for: Iterable[Event] | None) -> float:
    if not wait_for:
        return 0.0
    return max(e.ended_at for e in wait_for)


class CommandQueue:
    """Profiling command queue over the simulated engines.

    Semantics: commands may overlap across engines (compute, H2D, D2H)
    subject to explicit ``wait_for`` event dependencies; commands on
    the *same* engine execute in enqueue order (each engine is a serial
    resource).  This matches an out-of-order OpenCL queue driving one
    copy engine per direction -- the structure the paper's double
    buffering relies on.
    """

    def __init__(self, context: Context) -> None:
        self.context = context
        self.arch = context.device.arch
        self.transfers = TransferEngine(self.arch)
        self.compute = TimeLine("compute")
        self.events: list[Event] = []

    # -- internal ------------------------------------------------------------

    def _earliest(self, wait_for: Sequence[Event] | None) -> float:
        for e in wait_for or ():
            if e.status.value != "complete":
                raise DeviceError(
                    f"CommandQueue: dependency {e.label!r} not yet complete "
                    "(simulated commands complete at enqueue; this indicates "
                    "an event from another stack)"
                )
        return max(self.context.ready_at, _wait_time(wait_for))

    # -- commands ------------------------------------------------------------

    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        host_array: np.ndarray,
        wait_for: Sequence[Event] | None = None,
        label: str = "",
    ) -> Event:
        """Copy host data into a device buffer (H2D DMA)."""
        array = np.ascontiguousarray(host_array)
        event = Event(label=label or f"write:{buffer.label}", queued_at=self._now())
        earliest = self._earliest(wait_for)
        interval = self.transfers.schedule(
            H2D, array.nbytes, earliest, label=event.label
        )
        buffer._store(array.copy())
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return event

    def enqueue_read_buffer(
        self,
        buffer: Buffer,
        wait_for: Sequence[Event] | None = None,
        label: str = "",
    ) -> tuple[np.ndarray, Event]:
        """Copy a device buffer back to the host (D2H DMA)."""
        event = Event(label=label or f"read:{buffer.label}", queued_at=self._now())
        earliest = self._earliest(wait_for)
        data = buffer.data
        interval = self.transfers.schedule(
            D2H, data.nbytes, earliest, label=event.label
        )
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return data.copy(), event

    def enqueue_kernel(
        self,
        kernel: SnpKernel,
        a: Buffer,
        b: Buffer,
        c: Buffer,
        args: KernelArgs | None = None,
        wait_for: Sequence[Event] | None = None,
        label: str = "",
        accumulate: bool = False,
        workers: int | None = None,
        symmetric: bool | None = None,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
    ) -> tuple[Event, KernelProfile]:
        """Launch a comparison kernel reading ``a``/``b``, writing ``c``.

        With ``accumulate=True`` the result adds into ``c``'s current
        contents (the k-panel loop of problems tiled over the reduction
        dimension); otherwise ``c`` is overwritten.  ``workers`` routes
        the functional compute through the sharded host engine (the
        simulated timing is unaffected -- it prices the device, not the
        host).  ``symmetric``/``strategy``/``backend``/``executor`` are
        the Gram-mode hint, shard-strategy choice, kernel-ABI backend,
        and shard executor forwarded to
        :func:`~repro.gpu.executor.execute_kernel`.
        """
        if kernel.arch is not self.arch:
            raise KernelLaunchError(
                f"enqueue_kernel: kernel compiled for {kernel.arch.name}, "
                f"queue is on {self.arch.name}"
            )
        event = Event(
            label=label or f"kernel:snp_{kernel.op.value}", queued_at=self._now()
        )
        earliest = self._earliest(wait_for)
        result, profile = execute_kernel(
            kernel, a.data, b.data, args, workers=workers,
            symmetric=symmetric, strategy=strategy, backend=backend,
            executor=executor,
        )
        if accumulate:
            existing = c._data
            if existing is not None and existing.shape == result.shape:
                result = existing.astype(np.int64) + result
        # Device accumulators are 32-bit (Table I's 4-byte elements);
        # counts are bounded by the site count, far below 2**31.
        c._store(result.astype(np.int32))
        duration = self.arch.memory.launch_overhead_s + profile.seconds
        interval = self.compute.schedule(event.label, earliest, duration)
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return event, profile

    # -- dry-run (timing-only) commands ---------------------------------------
    #
    # These schedule the same engine intervals as their functional
    # counterparts without touching data; the end-to-end estimator
    # uses them to price paper-scale problems that would be
    # impractical to materialize.

    def enqueue_write_dry(
        self,
        n_bytes: int,
        wait_for: Sequence[Event] | None = None,
        label: str = "write:dry",
    ) -> Event:
        """Schedule an H2D transfer of ``n_bytes`` without moving data."""
        event = Event(label=label, queued_at=self._now())
        earliest = self._earliest(wait_for)
        interval = self.transfers.schedule(H2D, n_bytes, earliest, label=label)
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return event

    def enqueue_read_dry(
        self,
        n_bytes: int,
        wait_for: Sequence[Event] | None = None,
        label: str = "read:dry",
    ) -> Event:
        """Schedule a D2H transfer of ``n_bytes`` without moving data."""
        event = Event(label=label, queued_at=self._now())
        earliest = self._earliest(wait_for)
        interval = self.transfers.schedule(D2H, n_bytes, earliest, label=label)
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return event

    def enqueue_kernel_dry(
        self,
        kernel: SnpKernel,
        args: KernelArgs,
        wait_for: Sequence[Event] | None = None,
        label: str = "",
    ) -> tuple[Event, KernelProfile]:
        """Schedule a kernel launch priced by the cycle model only."""
        if kernel.arch is not self.arch:
            raise KernelLaunchError(
                f"enqueue_kernel_dry: kernel compiled for {kernel.arch.name}, "
                f"queue is on {self.arch.name}"
            )
        from repro.gpu.executor import price_kernel

        event = Event(
            label=label or f"kernel:snp_{kernel.op.value}", queued_at=self._now()
        )
        earliest = self._earliest(wait_for)
        profile = price_kernel(kernel, args)
        duration = self.arch.memory.launch_overhead_s + profile.seconds
        interval = self.compute.schedule(event.label, earliest, duration)
        event.complete(earliest, interval.start, interval.end)
        self.events.append(event)
        return event, profile

    # -- synchronization -----------------------------------------------------

    def _now(self) -> float:
        return max(
            self.context.ready_at,
            self.compute.now,
            self.transfers.h2d.now,
            self.transfers.d2h.now,
        )

    def finish(self) -> float:
        """Simulated time at which every enqueued command has completed."""
        return self._now()

    def busy_summary(self) -> dict[str, float]:
        """Busy seconds per engine (reporting aid)."""
        return {
            "compute": self.compute.busy_time(),
            "h2d": self.transfers.h2d.busy_time(),
            "d2h": self.transfers.d2h.busy_time(),
        }
