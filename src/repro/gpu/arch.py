"""The model GPU architecture (Section IV-A) and Table I presets.

A :class:`GPUArchitecture` captures exactly the features the paper's
framework needs -- "additional features are not necessary to achieve
high performance SNP comparison":

* **Thread groups** of ``n_t`` threads (warps / wavefronts), at most
  ``n_grp_max`` resident per core.
* ``n_c`` **compute cores** (SMs / CUs), each with ``n_cl`` **compute
  clusters** that execute thread groups independently.
* Per-cluster **arithmetic units**: ``alu_units`` execute 32-bit
  ADD/AND/XOR/NOT (one pipe), ``popc_units`` execute population count
  (a separate pipe -- the paper's microbenchmarks established this for
  all three devices).  All instructions share one latency ``l_fn``.
* **Shared memory** of ``shared_memory_bytes`` per core organized into
  ``shared_memory_banks`` banks; NVIDIA's OpenCL additionally reserves
  ``shared_memory_reserved_bytes`` (Section V-E).
* **Load/store**: each thread moves ``n_vec`` 4-byte elements per
  access (vectorized loads).

Beyond the paper's Table I rows, each preset carries the *memory-system
calibration* used by the timing model (Section VI's observed behaviour
that the paper leaves outside its analytical model): effective global
bandwidth, host-transfer bandwidth, launch/initialization overheads and
the scaling-contention knee.  These extra fields are calibration, not
silicon specs; DESIGN.md Section 6 records how they were chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.units import gib, kib

__all__ = [
    "MemorySystemModel",
    "GPUArchitecture",
    "GTX_980",
    "TITAN_V",
    "VEGA_64",
    "ALL_GPUS",
    "get_gpu",
]


@dataclass(frozen=True)
class MemorySystemModel:
    """Calibrated memory-system and overhead parameters for one device.

    Parameters
    ----------
    global_bandwidth_gbs:
        Effective device-memory streaming bandwidth (GB/s), already
        derated from the spec-sheet peak.
    host_bandwidth_gbs:
        Effective host<->device transfer bandwidth over PCIe (GB/s).
    init_overhead_s:
        One-time OpenCL platform/context/queue initialization cost
        (the "hundreds of milliseconds" of Section VI-B); kernel
        *compilation* is excluded per the paper's methodology.
    launch_overhead_s:
        Per-kernel-enqueue fixed cost.
    scaling_knee_cores:
        Core count beyond which per-core efficiency starts declining.
    scaling_decay:
        Per-core efficiency = 1 / (1 + decay * max(0, cores - knee)).
    ramp_half_size:
        Output-dimension value at which the data-reuse ramp reaches
        50 % of its asymptote (Fig. 5's rising curve):
        ramp(m) = m / (m + ramp_half_size).
    single_core_frequency_scale:
        Clock scale applied when only one core is active, modeling the
        DVFS behaviour the paper invokes for the Titan V's >100 %
        per-core scaling (Section VI-C).  1.0 = no effect.
    """

    global_bandwidth_gbs: float
    host_bandwidth_gbs: float = 12.0
    init_overhead_s: float = 0.30
    launch_overhead_s: float = 10e-6
    scaling_knee_cores: int = 8
    scaling_decay: float = 0.0
    ramp_half_size: float = 256.0
    single_core_frequency_scale: float = 1.0


@dataclass(frozen=True)
class GPUArchitecture:
    """Model GPU parameters (Table I) plus memory-system calibration."""

    name: str
    vendor: str
    microarchitecture: str
    frequency_ghz: float
    n_t: int                      # thread-group size (warp/wavefront)
    n_grp_max: int                # max resident thread groups per core
    n_c: int                      # compute cores (SMs / CUs)
    n_cl: int                     # compute clusters per core
    alu_units: int                # 32-bit add/and units per cluster
    popc_units: int               # 32-bit popcount units per cluster
    l_fn: int                     # instruction latency (cycles)
    global_memory_bytes: int
    max_alloc_bytes: int
    shared_memory_bytes: int
    shared_memory_banks: int
    shared_memory_reserved_bytes: int
    registers_per_core: int
    max_registers_per_thread: int
    n_vec: int = 4                # elements per vectorized load/store
    word_bits: int = 32           # packed-word width of the kernels
    has_fused_andnot: bool = True
    memory: MemorySystemModel = field(
        default_factory=lambda: MemorySystemModel(global_bandwidth_gbs=200.0)
    )

    def __post_init__(self) -> None:
        positive = (
            "frequency_ghz", "n_t", "n_grp_max", "n_c", "n_cl",
            "alu_units", "popc_units", "l_fn", "global_memory_bytes",
            "max_alloc_bytes", "shared_memory_bytes", "shared_memory_banks",
            "registers_per_core", "max_registers_per_thread", "n_vec",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"GPUArchitecture {self.name!r}: {name} must be positive"
                )
        if self.shared_memory_reserved_bytes < 0:
            raise ConfigurationError(
                f"GPUArchitecture {self.name!r}: negative shared reservation"
            )
        if self.shared_memory_reserved_bytes >= self.shared_memory_bytes:
            raise ConfigurationError(
                f"GPUArchitecture {self.name!r}: reservation exceeds shared memory"
            )
        if self.word_bits not in (32, 64):
            raise ConfigurationError(
                f"GPUArchitecture {self.name!r}: word_bits must be 32 or 64"
            )
        if self.max_alloc_bytes > self.global_memory_bytes:
            raise ConfigurationError(
                f"GPUArchitecture {self.name!r}: max_alloc exceeds global memory"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def frequency_hz(self) -> float:
        return self.frequency_ghz * 1e9

    @property
    def word_bytes(self) -> int:
        return self.word_bits // 8

    @property
    def usable_shared_memory_bytes(self) -> int:
        """Shared memory available to kernels after the OpenCL reservation."""
        return self.shared_memory_bytes - self.shared_memory_reserved_bytes

    @property
    def threads_per_core(self) -> int:
        """Resident threads when running the framework's occupancy choice.

        The framework limits residency to ``n_cl * l_fn`` thread groups
        (Section V-E): enough to pipeline every cluster's functional
        units, deliberately below the OpenCL maximum (Volkov's
        lower-occupancy-is-faster observation).
        """
        return self.n_cl * self.l_fn * self.n_t

    def registers_per_thread(self) -> int:
        """Register budget per thread at the framework's occupancy."""
        return self.registers_per_core // self.threads_per_core

    def describe(self) -> dict[str, object]:
        """Table I row for this device (spec-style field names)."""
        return {
            "Microarchitecture": self.microarchitecture,
            "Frequency (GHz)": self.frequency_ghz,
            "Thread Group Size (N_T)": self.n_t,
            "Max Thread Groups (N_grp)": self.n_grp_max,
            "Compute Cores (N_c)": self.n_c,
            "Compute Clusters (N_cl)": self.n_cl,
            "32-bit addition units (N_fn^+)": self.alu_units,
            "32-bit logical and units (N_fn^&)": self.alu_units,
            "32-bit population count units (N_fn^popc)": self.popc_units,
            "Instruction Latency (L_fn)": self.l_fn,
            "Global Memory (GiB)": round(self.global_memory_bytes / gib(1), 3),
            "Max Allocation (GiB)": round(self.max_alloc_bytes / gib(1), 3),
            "Shared Memory (KiB)": self.shared_memory_bytes // kib(1),
            "Shared Memory Banks (N_b)": self.shared_memory_banks,
            "Registers per Core": self.registers_per_core,
            "Max Registers per Thread": self.max_registers_per_thread,
        }


#: NVIDIA GTX 980 (Maxwell).  Table I column 2.  POPC units: 8 per
#: cluster (32 per SM across 4 schedulers); ALU 32 per cluster.
GTX_980 = GPUArchitecture(
    name="GTX 980",
    vendor="NVIDIA",
    microarchitecture="Maxwell",
    frequency_ghz=1.367,
    n_t=32,
    n_grp_max=32,
    n_c=16,
    n_cl=4,
    alu_units=32,
    popc_units=8,
    l_fn=6,
    global_memory_bytes=int(3.934 * gib(1)),
    max_alloc_bytes=int(0.983 * gib(1)),
    shared_memory_bytes=kib(48),
    shared_memory_banks=32,
    shared_memory_reserved_bytes=16,   # NVIDIA OpenCL reservation, S V-E
    registers_per_core=64 * 1024,
    max_registers_per_thread=255,
    has_fused_andnot=True,             # LOP3-style fused logic
    memory=MemorySystemModel(
        global_bandwidth_gbs=185.0,    # GDDR5 224 GB/s spec, derated
        host_bandwidth_gbs=12.0,
        init_overhead_s=0.28,
        scaling_knee_cores=8,
        scaling_decay=0.0100,          # kernel lands at ~90.7 % of peak
        ramp_half_size=64.0,
        single_core_frequency_scale=1.0,
    ),
)

#: NVIDIA Titan V (Volta).  Table I column 3.
TITAN_V = GPUArchitecture(
    name="Titan V",
    vendor="NVIDIA",
    microarchitecture="Volta",
    frequency_ghz=1.455,
    n_t=32,
    n_grp_max=32,
    n_c=80,
    n_cl=4,
    alu_units=16,
    popc_units=4,
    l_fn=4,
    global_memory_bytes=int(11.754 * gib(1)),
    max_alloc_bytes=int(2.939 * gib(1)),
    shared_memory_bytes=kib(48),
    shared_memory_banks=32,
    shared_memory_reserved_bytes=16,
    registers_per_core=64 * 1024,
    max_registers_per_thread=255,
    has_fused_andnot=True,
    memory=MemorySystemModel(
        global_bandwidth_gbs=560.0,    # HBM2 652 GB/s spec, derated
        host_bandwidth_gbs=12.0,
        init_overhead_s=0.32,
        scaling_knee_cores=8,
        scaling_decay=0.0000864,       # kernel lands at ~97.1 % of peak
        ramp_half_size=64.0,
        # DVFS: a single-SM residency runs in a lower boost bin, which
        # is what makes Fig. 7's per-core curve exceed 100 % for small
        # core counts when normalized to the 1-core measurement.
        single_core_frequency_scale=0.95,
    ),
)

#: AMD Vega 64 (GCN5).  Table I column 4.  The ALU pipe executes ADD,
#: AND, XOR and NOT (no fused AND-NOT is modeled -- including the NOT
#: in-kernel costs a third ALU op, Fig. 9); POPC sits on a separate
#: pipe with as many units as the ALU (Section VI-E1).
VEGA_64 = GPUArchitecture(
    name="Vega 64",
    vendor="AMD",
    microarchitecture="Vega (GCN5)",
    frequency_ghz=1.663,
    n_t=64,
    n_grp_max=16,
    n_c=64,
    n_cl=4,
    alu_units=16,
    popc_units=16,
    l_fn=4,
    global_memory_bytes=int(7.984 * gib(1)),
    max_alloc_bytes=int(6.786 * gib(1)),
    shared_memory_bytes=kib(64),
    shared_memory_banks=32,
    shared_memory_reserved_bytes=0,    # no reservation observed, S V-E
    registers_per_core=64 * 1024,
    max_registers_per_thread=256,
    has_fused_andnot=False,
    memory=MemorySystemModel(
        global_bandwidth_gbs=380.0,    # HBM2 484 GB/s spec, derated
        host_bandwidth_gbs=12.0,
        init_overhead_s=0.35,
        scaling_knee_cores=8,
        scaling_decay=0.014417,        # kernel lands at ~54.9 % of peak
        ramp_half_size=64.0,
        single_core_frequency_scale=1.0,
    ),
)

ALL_GPUS: tuple[GPUArchitecture, ...] = (GTX_980, TITAN_V, VEGA_64)

_BY_NAME = {g.name.lower(): g for g in ALL_GPUS}
_BY_NAME.update({g.microarchitecture.lower(): g for g in ALL_GPUS})
_BY_NAME["maxwell"] = GTX_980
_BY_NAME["volta"] = TITAN_V
_BY_NAME["vega"] = VEGA_64


def get_gpu(name: str) -> GPUArchitecture:
    """Look up a preset by device or microarchitecture name."""
    key = name.strip().lower()
    arch = _BY_NAME.get(key)
    if arch is None:
        valid = ", ".join(sorted({g.name for g in ALL_GPUS}))
        raise ConfigurationError(f"get_gpu: unknown GPU {name!r} (valid: {valid})")
    return arch
