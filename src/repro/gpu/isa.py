"""Instruction classes and pipeline assignment.

The cycle model and core simulator price kernels in terms of a small
instruction vocabulary -- exactly the operations the SNP micro-kernels
issue.  Each instruction maps to a *pipe class*; instructions on the
same pipe share its functional units (Section V-D: "Instructions that
share a pipeline reduce the effective throughput of each instruction").

The paper's microbenchmark findings, encoded here:

* On all three GPUs, **POPC is a separate pipe** from integer ALU
  ("execution time remained nearly constant when exclusively performing
  population count and when simultaneously performing population count
  with an equal number of arithmetic operations").
* On the **Vega 64**, ADD and AND (and the other 32-bit logicals) fall
  on the same ALU pipe, which becomes the kernel bottleneck.
* NVIDIA devices fuse AND-NOT into one ALU op (LOP3); Vega is modeled
  without fusion, so in-kernel NOT costs a third ALU op (Fig. 9).
* Shared-memory loads issue on a load/store pipe; the cycle model folds
  their cost into the bank-conflict factor rather than a unit count.
"""

from __future__ import annotations

import enum

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture

__all__ = [
    "Instruction",
    "PipeClass",
    "pipe_for",
    "units_per_cluster",
    "instruction_mix_pipes",
]


class Instruction(enum.Enum):
    """Operations the SNP kernels issue (32-bit unless noted)."""

    IADD = "iadd"        # integer add (accumulation)
    AND = "and"          # logical and
    XOR = "xor"          # exclusive or
    NOT = "not"          # bitwise negation
    ANDN = "andn"        # fused and-not (where supported)
    POPC = "popc"        # population count
    LDS = "lds"          # shared-memory load
    LDG = "ldg"          # global-memory load
    MOV = "mov"          # register move


class PipeClass(enum.Enum):
    """Functional-unit pipes of a compute cluster."""

    ALU = "alu"
    POPC = "popc"
    MEM = "mem"


_PIPE_FOR: dict[Instruction, PipeClass] = {
    Instruction.IADD: PipeClass.ALU,
    Instruction.AND: PipeClass.ALU,
    Instruction.XOR: PipeClass.ALU,
    Instruction.NOT: PipeClass.ALU,
    Instruction.ANDN: PipeClass.ALU,
    Instruction.POPC: PipeClass.POPC,
    Instruction.LDS: PipeClass.MEM,
    Instruction.LDG: PipeClass.MEM,
    Instruction.MOV: PipeClass.ALU,
}


def pipe_for(instr: Instruction) -> PipeClass:
    """The pipe class an instruction executes on (vendor-independent)."""
    pipe = _PIPE_FOR.get(instr)
    if pipe is None:
        raise ModelError(f"pipe_for: unmapped instruction {instr!r}")
    return pipe


def units_per_cluster(arch: GPUArchitecture, pipe: PipeClass) -> int:
    """Functional units a cluster provides for ``pipe``.

    The MEM pipe is modeled with ALU-equivalent width; its cost is
    dominated by bank behaviour, handled by the shared-memory model.
    """
    if pipe is PipeClass.ALU:
        return arch.alu_units
    if pipe is PipeClass.POPC:
        return arch.popc_units
    if pipe is PipeClass.MEM:
        return arch.alu_units
    raise ModelError(f"units_per_cluster: unknown pipe {pipe!r}")


def supports(arch: GPUArchitecture, instr: Instruction) -> bool:
    """Whether the architecture exposes ``instr`` as a single operation."""
    if instr is Instruction.ANDN:
        return arch.has_fused_andnot
    return True


def instruction_mix_pipes(
    arch: GPUArchitecture,
    alu_ops: int,
    popc_ops: int,
) -> dict[PipeClass, float]:
    """Cycles-per-word on each pipe for a given per-word instruction mix.

    For each pipe: ``ops_on_pipe / units`` is the number of
    cluster-cycles one packed word costs on that pipe (each unit
    retires one 32-bit op per cycle when pipelined).  The kernel's
    throughput bottleneck is the pipe with the largest value
    (Section V-D's minimum-throughput rule).
    """
    if alu_ops < 0 or popc_ops < 0:
        raise ModelError("instruction_mix_pipes: negative op counts")
    return {
        PipeClass.ALU: alu_ops / arch.alu_units,
        PipeClass.POPC: popc_ops / arch.popc_units,
    }
