"""Counters registry: exact, thread-safe accounting of what a run did.

Counters complement spans: a span says *when* something happened on the
host, a counter says *how much* of it happened in total.  The catalogue
below names every counter the instrumented layers emit; values are
plain integers (byte counts, operation counts) or floats (seconds), so
tests can assert them against closed-form expectations -- e.g. the
POPC word-op count of a bit-GEMM is exactly ``m * n * k_words``
regardless of worker count or shard strategy.

The registry follows the tracer's null-object pattern
(:mod:`repro.observability.tracer`): the disabled default is
:data:`NULL_COUNTERS`, whose :meth:`~NullCounters.add` is an empty
method, so instrumented hot paths pay one no-op call when observability
is off.
"""

from __future__ import annotations

import threading

__all__ = [
    "CounterRegistry",
    "NullCounters",
    "NULL_COUNTERS",
    "COUNTER_CATALOGUE",
    "PACK_OPERANDS",
    "PACK_BYTES",
    "PANEL_BUILDS",
    "PANEL_BYTES",
    "GEMM_CALLS",
    "GEMM_WORD_OPS",
    "KERNEL_LAUNCHES",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_EVICTIONS",
    "PANEL_DEDUP_HITS",
    "SHARDS_EXECUTED",
    "SHARDS_MIRRORED",
    "HOST_ENGINE_SECONDS",
    "SIM_DEVICE_SECONDS",
    "STREAM_CHUNKS",
    "STREAM_BYTES_READ",
    "STREAM_READ_SECONDS",
    "STREAM_PREFETCH_STALL_SECONDS",
    "STREAM_CHUNK_RETRIES",
    "STREAM_PREFILTER_FALLBACKS",
    "FAULTS_INJECTED",
    "SHARD_RETRIES",
    "SHARDS_QUARANTINED",
    "KERNEL_RETRIES",
    "DEVICES_DROPPED",
    "WORKERS_LOST",
    "VERIFY_MISMATCHES",
    "TILES_VERIFIED",
    "SERVE_QUERIES",
    "SERVE_BATCHES",
    "SERVE_COALESCED_BATCHES",
    "SERVE_BATCH_ROWS",
    "SERVE_SOLO_FALLBACKS",
    "SERVE_REQUEST_FAILURES",
    "SERVE_APPENDED_PROFILES",
    "SERVE_SHED",
    "SERVE_DEADLINE_EXCEEDED",
    "SERVE_BREAKER_TRIPS",
    "IO_CRC_FAILURES",
    "IO_CHUNKS_VERIFIED",
    "STREAM_PRODUCER_LEAKED",
    "LDOPS_SITES_SEEN",
    "LDOPS_SITES_KEPT",
    "LDOPS_SITES_PRUNED",
    "LDOPS_PAIRS_TESTED",
    "LDOPS_CLUMPS_FORMED",
    "LDOPS_SITES_ABSORBED",
    "LDOPS_WINDOW_PEAK_SITES",
]

# -- counter names (the catalogue) ---------------------------------------------

#: Operands packed by :func:`repro.core.packing.pack_operand`.
PACK_OPERANDS = "pack.operands"
#: Bytes of packed words produced by operand packing.
PACK_BYTES = "pack.bytes_packed"
#: BLIS pack-buffer builds (A/B panels) inserted into a panel cache.
PANEL_BUILDS = "pack.panel_builds"
#: Bytes of BLIS pack buffers built (cache misses only).
PANEL_BYTES = "pack.panel_bytes"
#: Bit-GEMM driver invocations (serial drivers and sharded runs alike).
GEMM_CALLS = "gemm.calls"
#: POPC word operations executed: ``m * n * k_words`` per logical GEMM,
#: counted exactly once whichever driver or shard strategy ran it.
GEMM_WORD_OPS = "gemm.popc_word_ops"
#: Simulated kernel launches through :func:`repro.gpu.executor.execute_kernel`.
KERNEL_LAUNCHES = "kernel.launches"
#: Panel-cache hits.
CACHE_HITS = "cache.hits"
#: Panel-cache misses.
CACHE_MISSES = "cache.misses"
#: Panel-cache LRU evictions.
CACHE_EVICTIONS = "cache.evictions"
#: Panel-cache hits served across operand sides: the requester asked
#: for the A-side (or B-side) of a panel another side already built.
#: Non-zero only in Gram mode, where both sides are the same matrix.
PANEL_DEDUP_HITS = "cache.dedup_hits"
#: Shards executed by the parallel engine (serial fallback counts 1).
SHARDS_EXECUTED = "shards.executed"
#: Shards filled by reflecting a computed shard into its transpose
#: slot (Gram mode): these word-ops were *saved*, not executed.
SHARDS_MIRRORED = "shards.mirrored"
#: Host wall-clock seconds spent inside the parallel engine.
HOST_ENGINE_SECONDS = "time.host_engine_s"
#: Simulated device seconds (end-to-end makespans of framework runs).
SIM_DEVICE_SECONDS = "time.simulated_device_s"
#: Chunks consumed by streaming workloads (:mod:`repro.io_stream`).
STREAM_CHUNKS = "stream.chunks"
#: Bytes pulled from chunk-source backing stores (packed on-disk bytes
#: for ``.snpbin`` sources, raw bytes otherwise) -- deterministic for a
#: given source and chunk size.
STREAM_BYTES_READ = "stream.bytes_read"
#: Host wall seconds the prefetch producer spent reading + preparing
#: chunks (runs on the background thread under double buffering).
STREAM_READ_SECONDS = "stream.read_s"
#: Host wall seconds the *consumer* stalled waiting for the next chunk;
#: with effective prefetch overlap this is much smaller than
#: ``stream.read_s``.
STREAM_PREFETCH_STALL_SECONDS = "stream.prefetch_stall_s"
#: Streaming chunks re-run after a retryable failure (the per-chunk
#: rung of the resilience ladder).
STREAM_CHUNK_RETRIES = "stream.chunk_retries"
#: Streaming identity batches folded without the vectorized top-k
#: pre-filter (heap not yet full, e.g. k close to the database size).
STREAM_PREFILTER_FALLBACKS = "stream.prefilter_fallbacks"
#: Simulated faults fired by the deterministic injector
#: (:mod:`repro.resilience.faults`); 0 in production runs.
FAULTS_INJECTED = "resilience.faults_injected"
#: Shard executions re-queued after a retryable failure.
SHARD_RETRIES = "resilience.shard_retries"
#: Shards that exhausted their retry budget and were recomputed on the
#: serial reference path (bit-exact graceful degradation).
SHARDS_QUARANTINED = "resilience.shards_quarantined"
#: Kernel launches retried after a transient launch failure.
KERNEL_RETRIES = "resilience.kernel_retries"
#: Devices dropped from a multi-GPU run after being lost mid-run
#: (their slices were re-partitioned across survivors).
DEVICES_DROPPED = "resilience.devices_dropped"
#: Worker processes lost mid-run by the process shard executor (their
#: claimed shards were re-enqueued onto the surviving workers).
WORKERS_LOST = "resilience.workers_lost"
#: Spot-verification mismatches: a sampled output tile disagreed with
#: the serial popcount reference and was recomputed.
VERIFY_MISMATCHES = "resilience.verify_mismatches"
#: Output tiles re-checked against the serial reference by the
#: spot-verification guard (``verify_sample > 0``).
TILES_VERIFIED = "resilience.tiles_verified"
#: Query requests accepted by the identity service
#: (:mod:`repro.serve`): one per submitted query set.
SERVE_QUERIES = "serve.queries"
#: Micro-batches executed by the serving batcher (coalesced or solo).
SERVE_BATCHES = "serve.batches"
#: Micro-batches that merged >= 2 requests into one bit-GEMM panel --
#: the amortization the coalescing window exists to create.
SERVE_COALESCED_BATCHES = "serve.coalesced_batches"
#: Query rows admitted into micro-batches (occupancy numerator:
#: ``serve.batch_rows / serve.batches`` is mean rows per panel).
SERVE_BATCH_ROWS = "serve.batch_rows"
#: Requests re-run alone after their batch failed post-retry (the
#: isolation rung: one poisoned query cannot fail its batch peers).
SERVE_SOLO_FALLBACKS = "serve.solo_fallbacks"
#: Requests that ultimately failed and returned an error to the caller.
SERVE_REQUEST_FAILURES = "serve.request_failures"
#: Profiles appended to the resident index while serving.
SERVE_APPENDED_PROFILES = "serve.appended_profiles"
#: Requests shed by admission control (bounded queue, open breaker, or
#: graceful drain) instead of being queued unboundedly; each shed reply
#: carries a ``retry_after_ms`` hint.
SERVE_SHED = "serve.shed"
#: Requests rejected (or abandoned mid-fold) because their deadline
#: expired before a result could be produced.
SERVE_DEADLINE_EXCEEDED = "serve.deadline_exceeded"
#: Circuit-breaker trips: the backend failed repeatedly and the breaker
#: opened (half-open probes that fail re-trip and re-count).
SERVE_BREAKER_TRIPS = "serve.breaker_trips"
#: ``.snpbin`` CRC verification failures: a header or data chunk did
#: not match its stored checksum (each failing verification attempt
#: counts once; 0 in healthy runs).
IO_CRC_FAILURES = "io.crc_failures"
#: ``.snpbin`` data chunks whose CRC32 was verified on first read
#: (lazy verify-on-read; each chunk counts once per reader).
IO_CHUNKS_VERIFIED = "io.chunks_verified"
#: Prefetch producer threads that failed to join within the close
#: deadline (a leak guard; 0 in healthy runs).
STREAM_PRODUCER_LEAKED = "stream.producer_leaked"
#: Sites scanned by an LD prune/clump pass (:mod:`repro.core.ldops`).
LDOPS_SITES_SEEN = "ldops.sites_seen"
#: Sites surviving a windowed LD pruning pass.
LDOPS_SITES_KEPT = "ldops.sites_kept"
#: Sites removed by a windowed LD pruning pass.
LDOPS_SITES_PRUNED = "ldops.sites_pruned"
#: (site, window-neighbor) pairs whose r^2 predicate was evaluated --
#: exact and invariant under chunking (the scan tests each needed pair
#: once, whichever block it streamed in with).
LDOPS_PAIRS_TESTED = "ldops.pairs_tested"
#: Index variants (clumps) formed by a clumping pass.
LDOPS_CLUMPS_FORMED = "ldops.clumps_formed"
#: Sites absorbed into another site's clump.
LDOPS_SITES_ABSORBED = "ldops.sites_absorbed"
#: Peak sites simultaneously resident in the sliding window -- the
#: O(window^2) memory claim in measurable form (<= window always).
LDOPS_WINDOW_PEAK_SITES = "ldops.window_peak_sites"

#: Every counter the instrumented layers emit, with a one-line meaning.
COUNTER_CATALOGUE: dict[str, str] = {
    PACK_OPERANDS: "operands packed for the device (pack_operand calls)",
    PACK_BYTES: "bytes of packed words produced by operand packing",
    PANEL_BUILDS: "BLIS pack-buffer builds (panel-cache misses)",
    PANEL_BYTES: "bytes of BLIS pack buffers built",
    GEMM_CALLS: "bit-GEMM driver invocations",
    GEMM_WORD_OPS: "POPC word operations (m*n*k_words per GEMM, exact)",
    KERNEL_LAUNCHES: "simulated kernel launches",
    CACHE_HITS: "panel-cache hits",
    CACHE_MISSES: "panel-cache misses",
    CACHE_EVICTIONS: "panel-cache LRU evictions",
    PANEL_DEDUP_HITS: "panel-cache hits served across operand sides (Gram mode)",
    SHARDS_EXECUTED: "shards executed by the parallel engine",
    SHARDS_MIRRORED: "shards filled by transpose reflection (Gram mode)",
    HOST_ENGINE_SECONDS: "host wall seconds inside the parallel engine",
    SIM_DEVICE_SECONDS: "simulated device seconds (framework makespans)",
    STREAM_CHUNKS: "chunks consumed by streaming workloads",
    STREAM_BYTES_READ: "bytes pulled from chunk-source backing stores",
    STREAM_READ_SECONDS: "host seconds reading/preparing chunks (producer)",
    STREAM_PREFETCH_STALL_SECONDS: "host seconds the consumer waited on chunks",
    STREAM_CHUNK_RETRIES: "streaming chunks re-run after retryable failures",
    STREAM_PREFILTER_FALLBACKS: "identity batches folded without the top-k pre-filter",
    FAULTS_INJECTED: "simulated faults fired by the injector",
    SHARD_RETRIES: "shard executions re-queued after retryable failures",
    SHARDS_QUARANTINED: "shards recomputed on the serial reference path",
    KERNEL_RETRIES: "kernel launches retried after transient failures",
    DEVICES_DROPPED: "devices dropped and re-partitioned mid multi-GPU run",
    WORKERS_LOST: "worker processes lost and re-partitioned mid-run",
    VERIFY_MISMATCHES: "spot-verification mismatches (tiles recomputed)",
    TILES_VERIFIED: "output tiles re-checked against the serial reference",
    SERVE_QUERIES: "query requests accepted by the identity service",
    SERVE_BATCHES: "micro-batches executed by the serving batcher",
    SERVE_COALESCED_BATCHES: "micro-batches that merged >= 2 requests",
    SERVE_BATCH_ROWS: "query rows admitted into micro-batches",
    SERVE_SOLO_FALLBACKS: "requests re-run alone after a batch failure",
    SERVE_REQUEST_FAILURES: "requests that returned an error to the caller",
    SERVE_APPENDED_PROFILES: "profiles appended to the resident index",
    SERVE_SHED: "requests shed by admission control (with retry_after_ms)",
    SERVE_DEADLINE_EXCEEDED: "requests rejected/abandoned on an expired deadline",
    SERVE_BREAKER_TRIPS: "circuit-breaker trips after repeated backend failures",
    IO_CRC_FAILURES: "snpbin header/chunk CRC verification failures",
    IO_CHUNKS_VERIFIED: "snpbin data chunks CRC-verified on first read",
    STREAM_PRODUCER_LEAKED: "prefetch producers that outlived their close deadline",
    LDOPS_SITES_SEEN: "sites scanned by an LD prune/clump pass",
    LDOPS_SITES_KEPT: "sites surviving a windowed LD pruning pass",
    LDOPS_SITES_PRUNED: "sites removed by a windowed LD pruning pass",
    LDOPS_PAIRS_TESTED: "window pairs whose r^2 predicate was evaluated",
    LDOPS_CLUMPS_FORMED: "index variants (clumps) formed by a clumping pass",
    LDOPS_SITES_ABSORBED: "sites absorbed into another site's clump",
    LDOPS_WINDOW_PEAK_SITES: "peak sites resident in the sliding LD window",
}


class CounterRegistry:
    """Thread-safe monotonic counters keyed by catalogue name.

    ``add`` is the only mutator the instrumented code uses; snapshots
    are plain dicts, so a caller can diff two snapshots to scope the
    accounting to one run (:meth:`diff`).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        """Increment ``name`` by ``value`` (creating it at 0)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """Copy of every counter's current value."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._values.clear()

    @staticmethod
    def diff(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
        """Per-counter change between two snapshots (zero deltas dropped)."""
        out: dict[str, float] = {}
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                out[name] = delta
        return out


class NullCounters:
    """Disabled registry: every operation is a no-op.

    The single instance :data:`NULL_COUNTERS` is what instrumented code
    sees when observability is off; ``add`` has an empty body, so the
    hot-path cost is one attribute lookup and one call.
    """

    enabled = False

    def add(self, name: str, value: float = 1) -> None:
        pass

    def get(self, name: str) -> float:
        return 0

    def snapshot(self) -> dict[str, float]:
        return {}

    def reset(self) -> None:
        pass


#: The process-wide disabled registry (see :data:`~repro.observability.tracer.NULL_TRACER`).
NULL_COUNTERS = NullCounters()
