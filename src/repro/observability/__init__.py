"""Unified observability: spans, counters, merged traces, regression gating.

One layer answers four questions about a run:

* **What happened on the host, and when?** -- the span tracer
  (:mod:`repro.observability.tracer`), threaded through packing, the
  GEMM drivers, the parallel engine and the executors.
* **How much work was that?** -- the counters registry
  (:mod:`repro.observability.counters`): bytes packed, POPC word-ops,
  cache hits/misses/evictions, shards, simulated vs host seconds.
* **What does it look like?** -- the merged Chrome-trace export
  (:mod:`repro.observability.trace_export`): host spans interleaved
  with the simulated device lanes, viewable in Perfetto.
* **Did it get slower?** -- baseline record/compare
  (:mod:`repro.observability.regress`), the tool the
  ``bench-regression`` CI job runs.

Tracing is off by default and costs nothing when off: the process
global is a null tracer whose spans and counters are no-op singletons.
Turn it on around a region of interest::

    from repro.observability import enable, disable, MetricsReport

    tracer = enable()
    try:
        result = linkage_disequilibrium(data, device="Titan V", workers=4)
        print(MetricsReport.from_tracer(tracer))
    finally:
        disable()
"""

from repro.observability.counters import (
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    COUNTER_CATALOGUE,
    GEMM_CALLS,
    GEMM_WORD_OPS,
    HOST_ENGINE_SECONDS,
    KERNEL_LAUNCHES,
    NULL_COUNTERS,
    PACK_BYTES,
    PACK_OPERANDS,
    PANEL_BUILDS,
    PANEL_BYTES,
    SHARDS_EXECUTED,
    SIM_DEVICE_SECONDS,
    CounterRegistry,
    NullCounters,
)
from repro.observability.report import MetricsReport, SpanSummary
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
)
from repro.observability.trace_export import (
    HOST_PID,
    host_trace_events,
    merged_trace_events,
    write_merged_trace,
)

__all__ = [
    "CACHE_EVICTIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "COUNTER_CATALOGUE",
    "GEMM_CALLS",
    "GEMM_WORD_OPS",
    "HOST_ENGINE_SECONDS",
    "KERNEL_LAUNCHES",
    "NULL_COUNTERS",
    "PACK_BYTES",
    "PACK_OPERANDS",
    "PANEL_BUILDS",
    "PANEL_BYTES",
    "SHARDS_EXECUTED",
    "SIM_DEVICE_SECONDS",
    "CounterRegistry",
    "NullCounters",
    "MetricsReport",
    "SpanSummary",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
    "HOST_PID",
    "host_trace_events",
    "merged_trace_events",
    "write_merged_trace",
]
