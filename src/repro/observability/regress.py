"""Benchmark-regression gating: record a baseline, compare fresh runs.

GEMMbench's lesson (Lokhmotov, arXiv:1511.03742) is that reproducible
GEMM work needs *recorded* baselines, not one-off timings.  This module
is the recording half of that loop for this repo's benchmark JSON
outputs, and the comparison tool the ``bench-regression`` CI job calls:

    python -m repro.observability.regress record \
        --name ci-bench --out benchmarks/baselines/ci-bench.json \
        parallel-scaling-smoke.json table1.json

    python -m repro.observability.regress compare \
        --baseline benchmarks/baselines/ci-bench.json \
        --timing-tolerance 0.30 --report regression-report.json \
        parallel-scaling-smoke.json table1.json

Input files are *flattened* into named metrics of three kinds:

* ``exact``   -- must match the baseline bit-for-bit (counters,
  shard counts, bit-exactness flags);
* ``timing``  -- seconds, lower is better; a fresh value above
  ``baseline * (1 + tolerance)`` is a regression;
* ``ratio``   -- dimensionless, higher is better (speedups); a fresh
  value below ``baseline * (1 - tolerance)`` is a regression.

Supported input formats (auto-detected per file):

* pytest-benchmark JSON (``--benchmark-json``): per-benchmark mean
  seconds as ``timing`` metrics;
* ``bench_parallel_scaling.py --json`` sweeps: per-worker seconds
  (``timing``), speedups (``ratio``), word-ops / shard counts /
  bit-exactness and deterministic observability counters (``exact``).
  Per-executor rows (``--executor both``) namespace non-thread tiers
  as ``process.workers{N}.*`` (plus ``process.counter.*`` and the
  ``counters_match`` invariance flag), so thread-era baselines stay
  valid;
* ``bench_parallel_scaling.py --backends --json`` races: per-backend
  seconds (``timing``), speedup vs the reference panel (``ratio``),
  bit-exactness / counter invariance and the word-op counters
  (``exact``).  Backends present only in the fresh run (e.g. Numba
  installed in CI but not where the baseline was recorded) are
  ignored, so one baseline serves the whole backend matrix;
* metrics-report JSON (:meth:`repro.observability.report.MetricsReport.to_json`):
  deterministic counters as ``exact``, span totals as ``timing``.

Metric names are prefixed with the input file's stem, so record and
compare must see the same file names -- which CI guarantees by
regenerating the same artifacts every run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "Metric",
    "Comparison",
    "flatten_metrics",
    "load_metrics",
    "compare_metrics",
    "record_baseline",
    "main",
]

KIND_EXACT = "exact"
KIND_TIMING = "timing"
KIND_RATIO = "ratio"

#: Counters that are bit-deterministic across runs and machines and may
#: therefore be gated exactly.  (Cache hit/miss *splits* race under the
#: thread pool; their sum is deterministic but is derivable from these.)
DETERMINISTIC_COUNTERS = (
    "gemm.popc_word_ops",
    "gemm.calls",
    "pack.operands",
    "pack.bytes_packed",
    "shards.executed",
    "shards.mirrored",
    "kernel.launches",
    "stream.chunks",
    "stream.bytes_read",
    # Serving counters are deterministic under *forced* batches (the
    # bench/smoke mode); live-window counts depend on arrival timing.
    "serve.queries",
    "serve.batches",
    "serve.coalesced_batches",
    "serve.batch_rows",
    # Robustness counters: exact by construction in the chaos-serve and
    # overload scenarios (fault plans are seeded, admission bounds are
    # forced), so any drift is a real behaviour change.
    "serve.shed",
    "serve.deadline_exceeded",
    "serve.breaker_trips",
    "io.crc_failures",
    "io.chunks_verified",
    # LD prune/clump counters are exact functions of (panel, window,
    # r2) for a pinned chunk size; pairs_tested and window_peak_sites
    # are additionally invariant under chunking by construction.
    "ldops.sites_seen",
    "ldops.sites_kept",
    "ldops.sites_pruned",
    "ldops.pairs_tested",
    "ldops.clumps_formed",
    "ldops.sites_absorbed",
    "ldops.window_peak_sites",
)

#: Default relative tolerance for ``timing``/``ratio`` metrics -- wide
#: enough for shared CI runners (the bench-regression job passes 0.30).
DEFAULT_TIMING_TOLERANCE = 0.30


@dataclass(frozen=True)
class Metric:
    """One named benchmark observation."""

    name: str
    value: float
    kind: str  # KIND_EXACT | KIND_TIMING | KIND_RATIO


@dataclass(frozen=True)
class Comparison:
    """The verdict for one baseline metric against a fresh run."""

    name: str
    kind: str
    baseline: float
    fresh: float | None
    status: str  # "ok" | "regressed" | "improved" | "missing"
    detail: str

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")


# -- flattening ----------------------------------------------------------------


def flatten_metrics(data: dict[str, Any], prefix: str) -> list[Metric]:
    """Flatten one benchmark JSON payload into named metrics."""
    if "benchmarks" in data:
        return _flatten_pytest_benchmark(data, prefix)
    if "serving" in data:
        return _flatten_serving(data, prefix)
    if "ldops" in data:
        return _flatten_ldops(data, prefix)
    if "backends" in data and "problem" in data:
        return _flatten_backend_race(data, prefix)
    if "rows" in data and "problem" in data:
        return _flatten_scaling_sweep(data, prefix)
    if "counters" in data:
        return _flatten_metrics_report(data, prefix)
    raise ValueError(f"{prefix}: unrecognized benchmark JSON format")


def _flatten_pytest_benchmark(data: dict[str, Any], prefix: str) -> list[Metric]:
    metrics = []
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "unnamed")
        stats = bench.get("stats", {})
        if "mean" in stats:
            metrics.append(
                Metric(f"{prefix}:{name}.mean_s", float(stats["mean"]), KIND_TIMING)
            )
    return metrics


def _flatten_scaling_sweep(data: dict[str, Any], prefix: str) -> list[Metric]:
    metrics = [
        Metric(f"{prefix}:word_ops", float(data["word_ops"]), KIND_EXACT)
    ]
    for row in data.get("rows", []):
        w = row["workers"]
        # Thread rows keep the historical unprefixed names so existing
        # baselines stay valid; other executor tiers (the process pool)
        # namespace theirs as "<executor>.workers{N}.*".
        executor = row.get("executor", "thread")
        base = (
            f"workers{w}" if executor == "thread"
            else f"{executor}.workers{w}"
        )
        metrics.append(
            Metric(f"{prefix}:{base}.seconds", float(row["seconds"]), KIND_TIMING)
        )
        metrics.append(
            Metric(f"{prefix}:{base}.speedup", float(row["speedup"]), KIND_RATIO)
        )
        metrics.append(
            Metric(
                f"{prefix}:{base}.bit_exact",
                float(bool(row["bit_exact"])),
                KIND_EXACT,
            )
        )
        metrics.append(
            Metric(
                f"{prefix}:{base}.n_shards", float(row["n_shards"]), KIND_EXACT
            )
        )
    if "counters_match" in data:
        metrics.append(
            Metric(
                f"{prefix}:counters_match",
                float(bool(data["counters_match"])),
                KIND_EXACT,
            )
        )
    for name, value in sorted(data.get("counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(f"{prefix}:counter.{name}", float(value), KIND_EXACT)
            )
    for name, value in sorted(data.get("process_counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(
                    f"{prefix}:process.counter.{name}",
                    float(value),
                    KIND_EXACT,
                )
            )
    return metrics


def _flatten_backend_race(data: dict[str, Any], prefix: str) -> list[Metric]:
    metrics = [
        Metric(f"{prefix}:word_ops", float(data["word_ops"]), KIND_EXACT)
    ]
    for row in data.get("backends", []):
        name = row["name"]
        metrics.append(
            Metric(
                f"{prefix}:backend.{name}.seconds",
                float(row["seconds"]),
                KIND_TIMING,
            )
        )
        metrics.append(
            Metric(
                f"{prefix}:backend.{name}.speedup",
                float(row["speedup"]),
                KIND_RATIO,
            )
        )
        metrics.append(
            Metric(
                f"{prefix}:backend.{name}.bit_exact",
                float(bool(row["bit_exact"])),
                KIND_EXACT,
            )
        )
        metrics.append(
            Metric(
                f"{prefix}:backend.{name}.counters_invariant",
                float(bool(row["counters_invariant"])),
                KIND_EXACT,
            )
        )
    for name, value in sorted(data.get("counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(f"{prefix}:counter.{name}", float(value), KIND_EXACT)
            )
    return metrics


def _flatten_serving(data: dict[str, Any], prefix: str) -> list[Metric]:
    """Serving-bench payloads (``benchmarks/bench_serving.py``).

    Work accounting (word-ops per query, occupancy, bit-exactness) is
    exact; the amortization speedup is a higher-is-better ratio; the
    latency percentiles and QPS ride the timing/ratio tolerances (the
    baseline pins wider per-metric tolerances for them -- shared-runner
    latency is the noisiest thing this gate watches; see docs/PERF.md).
    """
    serving = data["serving"]
    metrics = [
        Metric(
            f"{prefix}:word_ops_per_query_solo",
            float(serving["word_ops_per_query_solo"]),
            KIND_EXACT,
        ),
        Metric(
            f"{prefix}:word_ops_per_query_coalesced",
            float(serving["word_ops_per_query_coalesced"]),
            KIND_EXACT,
        ),
        Metric(
            f"{prefix}:amortization_speedup",
            float(serving["amortization_speedup"]),
            KIND_RATIO,
        ),
        Metric(
            f"{prefix}:batch_occupancy",
            float(serving["batch_occupancy"]),
            KIND_EXACT,
        ),
        Metric(
            f"{prefix}:bit_exact", float(bool(serving["bit_exact"])), KIND_EXACT
        ),
        Metric(f"{prefix}:p50_s", float(serving["p50_s"]), KIND_TIMING),
        Metric(f"{prefix}:p99_s", float(serving["p99_s"]), KIND_TIMING),
        Metric(f"{prefix}:qps", float(serving["qps"]), KIND_RATIO),
    ]
    # Overload-flood gates (added with the hardening work): the
    # admitted/shed split is forced by the admission bounds, so every
    # one of these is exact.  Absent in pre-hardening JSONs.
    overload = data.get("overload")
    if overload is not None:
        for name in (
            "submitted",
            "admitted",
            "shed",
            "deadline_rejections",
        ):
            metrics.append(
                Metric(
                    f"{prefix}:overload.{name}",
                    float(overload[name]),
                    KIND_EXACT,
                )
            )
        for name in (
            "shed_all_have_retry_hint",
            "conservation_ok",
            "accepted_bit_exact",
            "deadline_overrun_bounded",
        ):
            metrics.append(
                Metric(
                    f"{prefix}:overload.{name}",
                    float(bool(overload[name])),
                    KIND_EXACT,
                )
            )
    for name, value in sorted(data.get("counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(f"{prefix}:counter.{name}", float(value), KIND_EXACT)
            )
    return metrics


def _flatten_ldops(data: dict[str, Any], prefix: str) -> list[Metric]:
    """LD prune/clump bench payloads (``benchmarks/bench_ldops.py``).

    Everything here is exact: the kept/clump cardinalities, the
    chunked-vs-in-memory and brute-force-reference equivalence flags,
    the window residency bound, and the deterministic ``ldops.*``
    counters.  One wall-clock span rides the timing tolerance.
    """
    ldops = data["ldops"]
    metrics = []
    for name in (
        "prune_kept",
        "prune_pruned",
        "clump_count",
        "clump_absorbed",
        "peak_window_sites",
        "window",
    ):
        metrics.append(
            Metric(f"{prefix}:{name}", float(ldops[name]), KIND_EXACT)
        )
    for name in (
        "chunked_matches_inmemory",
        "matches_dense_reference",
        "window_bound_ok",
    ):
        metrics.append(
            Metric(f"{prefix}:{name}", float(bool(ldops[name])), KIND_EXACT)
        )
    for name, value in sorted(data.get("counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(f"{prefix}:counter.{name}", float(value), KIND_EXACT)
            )
    for span in data.get("spans", []):
        metrics.append(
            Metric(
                f"{prefix}:span.{span['name']}.total_s",
                float(span["total_s"]),
                KIND_TIMING,
            )
        )
    return metrics


def _flatten_metrics_report(data: dict[str, Any], prefix: str) -> list[Metric]:
    metrics = []
    for name, value in sorted(data.get("counters", {}).items()):
        if name in DETERMINISTIC_COUNTERS:
            metrics.append(
                Metric(f"{prefix}:counter.{name}", float(value), KIND_EXACT)
            )
    for span in data.get("spans", []):
        metrics.append(
            Metric(
                f"{prefix}:span.{span['name']}.total_s",
                float(span["total_s"]),
                KIND_TIMING,
            )
        )
    return metrics


def load_metrics(paths: list[str | Path]) -> list[Metric]:
    """Load and flatten every input file (stem-prefixed, order stable)."""
    metrics: list[Metric] = []
    for path in paths:
        path = Path(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        metrics.extend(flatten_metrics(data, path.stem))
    return metrics


# -- baseline record/compare ---------------------------------------------------


def record_baseline(
    name: str, metrics: list[Metric], tolerances: dict[str, float] | None = None
) -> dict[str, Any]:
    """Build the baseline JSON document for ``metrics``.

    ``tolerances`` optionally pins a per-metric relative tolerance that
    overrides the compare-time default (configurable thresholds per
    metric, keyed by full metric name).
    """
    doc: dict[str, Any] = {
        "format": "repro-bench-baseline/1",
        "name": name,
        "metrics": {},
    }
    for metric in metrics:
        entry: dict[str, Any] = {"value": metric.value, "kind": metric.kind}
        if tolerances and metric.name in tolerances:
            entry["tolerance"] = tolerances[metric.name]
        doc["metrics"][metric.name] = entry
    return doc


def compare_metrics(
    baseline: dict[str, Any],
    fresh: list[Metric],
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
) -> list[Comparison]:
    """Compare fresh metrics against a baseline document.

    Every baseline metric must be present in the fresh run (``missing``
    fails); fresh-only metrics are ignored (they become part of the
    baseline the next time it is re-recorded).
    """
    fresh_by_name = {m.name: m for m in fresh}
    comparisons: list[Comparison] = []
    for name, entry in baseline.get("metrics", {}).items():
        kind = entry["kind"]
        base_value = float(entry["value"])
        tolerance = float(entry.get("tolerance", timing_tolerance))
        fresh_metric = fresh_by_name.get(name)
        if fresh_metric is None:
            comparisons.append(
                Comparison(
                    name=name,
                    kind=kind,
                    baseline=base_value,
                    fresh=None,
                    status="missing",
                    detail="metric absent from fresh run",
                )
            )
            continue
        value = fresh_metric.value
        # Non-finite values must fail loudly for every kind: NaN makes
        # every comparison below false, so a NaN timing/ratio would
        # otherwise slide into the "ok" branch and the CI gate would
        # report green on a measurement that never happened.
        if not math.isfinite(value) or not math.isfinite(base_value):
            bad = "fresh" if not math.isfinite(value) else "baseline"
            comparisons.append(
                Comparison(
                    name=name,
                    kind=kind,
                    baseline=base_value,
                    fresh=value,
                    status="regressed",
                    detail=(
                        f"non-finite {bad} value "
                        f"(baseline={base_value}, fresh={value}); "
                        f"re-record or fix the producing benchmark"
                    ),
                )
            )
            continue
        if kind == KIND_EXACT:
            if value == base_value:
                status, detail = "ok", "exact match"
            else:
                status = "regressed"
                detail = f"expected exactly {base_value}, got {value}"
        elif kind == KIND_TIMING:
            limit = base_value * (1.0 + tolerance)
            if value > limit:
                status = "regressed"
                detail = (
                    f"{value:.6f}s exceeds {base_value:.6f}s "
                    f"+{tolerance:.0%} (limit {limit:.6f}s)"
                )
            elif value < base_value:
                status, detail = "improved", f"{value:.6f}s under baseline"
            else:
                status, detail = "ok", f"within +{tolerance:.0%}"
        elif kind == KIND_RATIO:
            floor = base_value * (1.0 - tolerance)
            if value < floor:
                status = "regressed"
                detail = (
                    f"{value:.3f} below {base_value:.3f} "
                    f"-{tolerance:.0%} (floor {floor:.3f})"
                )
            elif value > base_value:
                status, detail = "improved", f"{value:.3f} above baseline"
            else:
                status, detail = "ok", f"within -{tolerance:.0%}"
        else:
            raise ValueError(f"{name}: unknown metric kind {kind!r}")
        comparisons.append(
            Comparison(
                name=name,
                kind=kind,
                baseline=base_value,
                fresh=value,
                status=status,
                detail=detail,
            )
        )
    return comparisons


def render_comparisons(comparisons: list[Comparison]) -> str:
    """Text report: one line per metric, worst statuses first."""
    order = {"missing": 0, "regressed": 1, "improved": 2, "ok": 3}
    lines = [
        f"{'status':<10} {'kind':<7} {'metric':<52} detail",
    ]
    for comp in sorted(comparisons, key=lambda c: (order[c.status], c.name)):
        lines.append(
            f"{comp.status:<10} {comp.kind:<7} {comp.name:<52} {comp.detail}"
        )
    n_failed = sum(c.failed for c in comparisons)
    lines.append(
        f"-- {len(comparisons)} metrics compared, {n_failed} regression(s)"
    )
    return "\n".join(lines)


# -- CLI -----------------------------------------------------------------------


def _parse_tolerances(specs: list[str] | None) -> dict[str, float]:
    tolerances: dict[str, float] = {}
    for spec in specs or []:
        name, sep, value = spec.rpartition("=")
        if not sep or not name:
            raise ValueError(
                f"--tolerance expects NAME=VALUE, got {spec!r}"
            )
        tolerances[name] = float(value)
    return tolerances


def _cmd_record(args: argparse.Namespace) -> int:
    metrics = load_metrics(args.inputs)
    tolerances = _parse_tolerances(args.tolerance)
    unknown = set(tolerances) - {m.name for m in metrics}
    if unknown:
        raise ValueError(
            f"--tolerance names not among recorded metrics: "
            f"{', '.join(sorted(unknown))}"
        )
    doc = record_baseline(args.name, metrics, tolerances=tolerances)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"recorded {len(metrics)} metrics to {out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    fresh = load_metrics(args.inputs)
    comparisons = compare_metrics(
        baseline, fresh, timing_tolerance=args.timing_tolerance
    )
    print(render_comparisons(comparisons))
    if args.report:
        report = {
            "baseline": str(args.baseline),
            "timing_tolerance": args.timing_tolerance,
            "results": [
                {
                    "name": c.name,
                    "kind": c.kind,
                    "baseline": c.baseline,
                    "fresh": c.fresh,
                    "status": c.status,
                    "detail": c.detail,
                }
                for c in comparisons
            ],
            "failed": sum(c.failed for c in comparisons),
        }
        Path(args.report).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote comparison report to {args.report}")
    return 1 if any(c.failed for c in comparisons) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.regress",
        description="Record benchmark baselines and gate fresh runs against them.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="write a baseline from benchmark JSONs")
    record.add_argument("--name", required=True, help="baseline name")
    record.add_argument("--out", required=True, help="baseline JSON output path")
    record.add_argument(
        "--tolerance",
        action="append",
        metavar="NAME=VALUE",
        help="pin a per-metric relative tolerance in the baseline "
        "(full metric name; repeatable; overrides --timing-tolerance "
        "at compare time)",
    )
    record.add_argument("inputs", nargs="+", help="benchmark JSON files")
    record.set_defaults(func=_cmd_record)

    compare = sub.add_parser(
        "compare", help="compare fresh benchmark JSONs against a baseline"
    )
    compare.add_argument("--baseline", required=True, help="baseline JSON path")
    compare.add_argument(
        "--timing-tolerance",
        type=float,
        default=DEFAULT_TIMING_TOLERANCE,
        help="relative tolerance for timing/ratio metrics (default 0.30)",
    )
    compare.add_argument(
        "--report", help="write the per-metric comparison report JSON here"
    )
    compare.add_argument("inputs", nargs="+", help="fresh benchmark JSON files")
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
