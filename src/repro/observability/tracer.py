"""Span-based host tracing with a zero-overhead disabled default.

A *span* is a named host wall-clock interval -- "pack this operand",
"run this shard" -- recorded with its thread, nesting depth and parent,
so the observability layer can reconstruct what the host actually did
during a run (the analogue, for host work, of the simulated device
timelines in :mod:`repro.util.timing`).

Two tracer types share one duck-typed interface:

* :class:`Tracer` records :class:`SpanRecord` entries (thread-safe:
  per-thread nesting stacks, one lock around the shared record list)
  and owns a live :class:`~repro.observability.counters.CounterRegistry`.
* :class:`NullTracer` -- the process default -- returns a shared no-op
  span and the no-op counter registry.  Instrumented hot paths
  (per-shard, per-panel) therefore cost one method call when tracing is
  off; the parallel-scaling bench guards this stays in the noise.

The active tracer is process-global (:func:`get_tracer` /
:func:`set_tracer`); :func:`enable` installs a fresh recording tracer
and :func:`disable` restores the null tracer.  The pool threads of the
parallel engine see the same global, which is what lets shard spans
land in the same trace as the submitting thread's spans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Union

from repro.observability.counters import NULL_COUNTERS, CounterRegistry, NullCounters

__all__ = [
    "SpanRecord",
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a labelled host interval with lineage.

    Times are seconds since the owning tracer's epoch (its creation),
    so records are directly comparable across threads and exportable
    without clock arithmetic.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float
    thread: str
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Span:
    """An open span; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = (
        "_tracer",
        "name",
        "category",
        "attrs",
        "_span_id",
        "_parent_id",
        "_depth",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self._span_id = -1
        self._parent_id: int | None = None
        self._depth = 0
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self)


class NullSpan:
    """The shared no-op span the null tracer hands out."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Recording tracer: nested spans across threads plus counters.

    Parameters
    ----------
    clock:
        Monotonic seconds source (injectable for tests); spans are
        stored relative to the tracer's construction time.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 0
        self._tls = threading.local()
        self.counters = CounterRegistry()

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, category: str = "host", **attrs: Any) -> Span:
        """Open a span; enter the returned object to start timing."""
        return Span(self, name, category, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span._span_id = self._next_id
            self._next_id += 1
        span._parent_id = stack[-1]._span_id if stack else None
        span._depth = len(stack)
        stack.append(span)
        span._start = self._clock() - self._epoch

    def _close(self, span: Span) -> None:
        end = self._clock() - self._epoch
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            span_id=span._span_id,
            parent_id=span._parent_id,
            name=span.name,
            category=span.category,
            start=span._start,
            end=end,
            thread=threading.current_thread().name,
            depth=span._depth,
            attrs=span.attrs,
        )
        with self._lock:
            self._records.append(record)

    # -- inspection ------------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def n_spans(self) -> int:
        with self._lock:
            return len(self._records)

    def span_totals(self) -> dict[str, tuple[int, float]]:
        """Per-name aggregate: ``{name: (count, total_seconds)}``."""
        totals: dict[str, tuple[int, float]] = {}
        for record in self.spans():
            count, seconds = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, seconds + record.duration)
        return totals


class NullTracer:
    """Disabled tracer: shared no-op span, no-op counters, no records."""

    enabled = False

    def __init__(self) -> None:
        self.counters: NullCounters = NULL_COUNTERS

    def span(self, name: str, category: str = "host", **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def spans(self) -> list[SpanRecord]:
        return []

    def n_spans(self) -> int:
        return 0

    def span_totals(self) -> dict[str, tuple[int, float]]:
        return {}


#: The process-wide disabled tracer (also the reset target of :func:`disable`).
NULL_TRACER = NullTracer()

AnyTracer = Union[Tracer, NullTracer]

_active: AnyTracer = NULL_TRACER
_active_lock = threading.Lock()


def get_tracer() -> AnyTracer:
    """The process-global tracer instrumented code reports to."""
    return _active


def set_tracer(tracer: AnyTracer | None) -> AnyTracer:
    """Install ``tracer`` (``None`` = null tracer); returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer if tracer is not None else NULL_TRACER
    return previous


def enable() -> Tracer:
    """Install and return a fresh recording tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the zero-overhead null tracer."""
    set_tracer(NULL_TRACER)
