"""Merged Chrome-trace export: host spans beside simulated device lanes.

The existing :mod:`repro.gpu.tracing` exporter covers one simulated
device queue (h2d / compute / d2h lanes).  This module adds the host
side -- the tracer's spans, one ``tid`` per host thread -- and merges
both into a single Chrome Trace Event array that Perfetto or
``chrome://tracing`` renders as one process ("host engine") next to one
process per simulated device.

The two clocks are independent by design: host spans are wall-clock
seconds since the tracer's epoch, device lanes are *simulated* seconds
from the timing model.  They share the trace's microsecond axis but
must be read per-process (documented in ``docs/OBSERVABILITY.md``);
merging them anyway is what makes pack/shard host work visually
comparable with the modeled transfer/compute overlap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.device import CommandQueue
    from repro.observability.tracer import Tracer

__all__ = ["HOST_PID", "host_trace_events", "merged_trace_events", "write_merged_trace"]

#: The ``pid`` under which host spans appear in the merged trace.
HOST_PID = "host"


def host_trace_events(
    tracer: "Tracer", pid: str = HOST_PID
) -> list[dict[str, Any]]:
    """The tracer's spans as Chrome Trace Event dicts (one tid per thread).

    Emits process/thread metadata events followed by one complete
    (``"ph": "X"``) event per finished span; span attributes and depth
    ride along in ``args``.
    """
    records = tracer.spans()
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "args": {"name": "host engine (wall clock)"},
        }
    ]
    threads = sorted({r.thread for r in records})
    for tid, thread in enumerate(threads):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    tid_of = {thread: tid for tid, thread in enumerate(threads)}
    for record in records:
        args: dict[str, Any] = {"depth": record.depth}
        args.update(record.attrs)
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": record.category,
                "pid": pid,
                "tid": tid_of[record.thread],
                "ts": record.start * 1e6,  # microseconds
                "dur": record.duration * 1e6,
                "args": args,
            }
        )
    return events


def merged_trace_events(
    tracer: "Tracer | None" = None,
    queues: Sequence["CommandQueue"] = (),
) -> list[dict[str, Any]]:
    """Host spans plus every queue's simulated lanes, pids deduplicated.

    Each queue keeps the device exporter's schema (one pid per device,
    lanes as tids); when two queues share a device name the later pids
    are suffixed ``"name [i]"`` so their lanes stay distinct.
    """
    # Imported here, not at module top: the device stack transitively
    # imports this package (instrumentation), so a top-level import
    # would be circular.
    from repro.gpu.tracing import trace_events as device_trace_events

    events: list[dict[str, Any]] = []
    if tracer is not None and tracer.enabled:
        events.extend(host_trace_events(tracer))
    seen_pids = {HOST_PID}
    for index, queue in enumerate(queues):
        device_events = device_trace_events(queue)
        pid = str(queue.arch.name)
        if pid in seen_pids:
            pid = f"{queue.arch.name} [{index}]"
        seen_pids.add(pid)
        for event in device_events:
            event = dict(event)
            event["pid"] = pid
            events.append(event)
    return events


def write_merged_trace(
    path: str | os.PathLike,
    tracer: "Tracer | None" = None,
    queues: Sequence["CommandQueue"] = (),
) -> int:
    """Write the merged trace to ``path``; returns the event count."""
    events = merged_trace_events(tracer, queues)
    Path(path).write_text(json.dumps(events, indent=1), encoding="utf-8")
    return len(events)
