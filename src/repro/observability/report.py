"""MetricsReport: one run's observability data as a value object.

A :class:`MetricsReport` freezes what a scoped stretch of work did --
counter deltas plus per-name span aggregates -- so results objects
(:class:`repro.parallel.engine.ParallelReport`,
:class:`repro.core.profiles.RunReport`) can carry their own metrics
without holding a reference to the live tracer.  Scoping works by
snapshot: callers record the counter snapshot and span count when the
work starts and build the report from the delta when it ends
(:meth:`MetricsReport.from_delta`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.observability.tracer import Tracer

__all__ = ["SpanSummary", "MetricsReport"]


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class MetricsReport:
    """Counters and span aggregates for one scoped stretch of work."""

    counters: dict[str, float] = field(default_factory=dict)
    spans: list[SpanSummary] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "MetricsReport":
        """Everything the tracer has recorded since it was created."""
        return cls.from_delta(tracer, counters_before=None, spans_before=0)

    @classmethod
    def from_delta(
        cls,
        tracer: "Tracer",
        counters_before: dict[str, float] | None,
        spans_before: int,
    ) -> "MetricsReport":
        """The tracer's recordings since (``counters_before``, ``spans_before``).

        ``counters_before`` is a snapshot from
        :meth:`~repro.observability.counters.CounterRegistry.snapshot`
        (``None`` scopes from zero); ``spans_before`` is the tracer's
        span count when the scope opened.
        """
        after = tracer.counters.snapshot()
        if counters_before:
            counters = tracer.counters.diff(counters_before, after)
        else:
            counters = after
        totals: dict[str, tuple[int, float]] = {}
        for record in tracer.spans()[spans_before:]:
            count, seconds = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, seconds + record.duration)
        spans = [
            SpanSummary(name=name, count=count, total_s=seconds)
            for name, (count, seconds) in sorted(
                totals.items(), key=lambda item: -item[1][1]
            )
        ]
        return cls(counters=counters, spans=spans)

    # -- accessors -------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Value of one counter (0 when absent)."""
        return self.counters.get(name, 0)

    def span_total(self, name: str) -> float:
        """Total seconds across spans named ``name`` (0 when absent)."""
        for summary in self.spans:
            if summary.name == name:
                return summary.total_s
        return 0.0

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict (the metrics-file format regress ingests)."""
        return {
            "counters": dict(self.counters),
            "spans": [
                {"name": s.name, "count": s.count, "total_s": s.total_s}
                for s in self.spans
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "MetricsReport":
        return cls(
            counters=dict(data.get("counters", {})),
            spans=[
                SpanSummary(
                    name=s["name"], count=int(s["count"]), total_s=float(s["total_s"])
                )
                for s in data.get("spans", [])
            ],
        )

    # -- rendering -------------------------------------------------------------

    def summary_lines(self, title: str = "observability metrics") -> list[str]:
        """Human-readable text block (what the CLI's ``--metrics`` prints)."""
        lines = [title, "-" * len(title), "counters:"]
        if not self.counters:
            lines.append("  (none recorded)")
        for name in sorted(self.counters):
            value = self.counters[name]
            if isinstance(value, float):
                rendered = f"{value:.6f}".rstrip("0").rstrip(".")
            else:
                rendered = str(value)
            lines.append(f"  {name:<28} {rendered}")
        lines.append("spans (total seconds x count):")
        if not self.spans:
            lines.append("  (none recorded)")
        for summary in self.spans:
            lines.append(
                f"  {summary.name:<28} {summary.total_s:10.6f} s x {summary.count}"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
