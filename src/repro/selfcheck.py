"""Installation self-check: the cross-validation battery as one call.

``repro-snp verify`` (or :func:`run_selfcheck`) executes a condensed
version of the invariants the test suite pins down, so a fresh install
-- or a fork that touched the model -- can confirm the reproduction's
core guarantees in seconds:

1. functional agreement: all GEMM drivers + all devices + sparse
   kernels produce one bit-identical table against the naive oracle;
2. estimator consistency: timing-only pricing equals the functional
   pipeline's simulated times;
3. microbenchmark recovery: the Section V-C/D procedures recover each
   device's configured unit counts;
4. Table II regeneration: the planner reproduces the published
   configurations;
5. headline efficiencies: the Fig. 5 endpoints land on the paper's
   numbers.

Each check returns (name, passed, detail); the battery never raises on
check failure -- it reports, so a partial install still yields a
diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "run_selfcheck", "render_selfcheck"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str


def _check_functional_agreement() -> CheckResult:
    from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast, bit_gemm_reference
    from repro.core.config import Algorithm
    from repro.core.framework import SNPComparisonFramework
    from repro.gpu.arch import ALL_GPUS
    from repro.snp.stats import ld_counts_naive
    from repro.sparse.kernels import sparse_comparison
    from repro.sparse.matrix import SparseSNPMatrix
    from repro.util.bitops import pack_bits

    rng = np.random.default_rng(0)
    bits = (rng.random((18, 200)) < 0.4).astype(np.uint8)
    oracle = ld_counts_naive(bits)
    packed = pack_bits(bits, 32)
    tables = [
        bit_gemm_reference(packed, packed),
        bit_gemm_blocked(packed, packed),
        bit_gemm_fast(packed, packed),
        sparse_comparison(SparseSNPMatrix.from_dense(bits)),
    ]
    for arch in ALL_GPUS:
        table, _ = SNPComparisonFramework(arch, Algorithm.LD).run(bits)
        tables.append(table)
    agree = all((t == oracle).all() for t in tables)
    return CheckResult(
        "functional agreement",
        agree,
        f"{len(tables)} paths vs oracle on an 18x200 problem",
    )


def _check_estimator_consistency() -> CheckResult:
    from repro.core.config import Algorithm
    from repro.core.framework import SNPComparisonFramework
    from repro.gpu.arch import TITAN_V
    from repro.model.endtoend import estimate_end_to_end

    rng = np.random.default_rng(1)
    a = (rng.random((24, 256)) < 0.5).astype(np.uint8)
    b = (rng.random((48, 256)) < 0.5).astype(np.uint8)
    _, report = SNPComparisonFramework(TITAN_V, Algorithm.FASTID_IDENTITY).run(a, b)
    est = estimate_end_to_end(TITAN_V, Algorithm.FASTID_IDENTITY, 24, 48, 256)
    ok = abs(est.end_to_end_s - report.end_to_end_s) < 1e-12
    return CheckResult(
        "estimator == functional timing",
        ok,
        f"delta {abs(est.end_to_end_s - report.end_to_end_s):.2e} s",
    )


def _check_microbench_recovery() -> CheckResult:
    from repro.gpu.arch import ALL_GPUS
    from repro.gpu.microbench import run_microbench_suite

    failures = []
    for arch in ALL_GPUS:
        r = run_microbench_suite(arch)
        if abs(r.popc_throughput - arch.popc_units) > 0.05 * arch.popc_units:
            failures.append(f"{arch.name} popc units")
        if r.popc_alu_shared:
            failures.append(f"{arch.name} pipe sharing")
    return CheckResult(
        "microbenchmark recovery",
        not failures,
        "all devices" if not failures else "; ".join(failures),
    )


def _check_table2() -> CheckResult:
    from repro.core.config import Algorithm
    from repro.core.planner import PUBLISHED_CONFIGS, derive_config
    from repro.gpu.arch import get_gpu

    mismatches = []
    for (device, algorithm), (n_r, rows, cols) in PUBLISHED_CONFIGS.items():
        cfg = derive_config(get_gpu(device), algorithm)
        if (cfg.n_r, cfg.grid_rows, cfg.grid_cols) != (n_r, rows, cols):
            mismatches.append(f"{device}/{algorithm.value}")
    return CheckResult(
        "Table II regeneration",
        not mismatches,
        f"{len(PUBLISHED_CONFIGS)} rows" if not mismatches else "; ".join(mismatches),
    )


def _check_fig5_endpoints() -> CheckResult:
    from repro.bench.figures import fig5_series
    from repro.gpu.arch import ALL_GPUS

    paper = {"GTX 980": 0.907, "Titan V": 0.971, "Vega 64": 0.549}
    deltas = {}
    for arch in ALL_GPUS:
        measured = fig5_series(arch)[-1]["efficiency"]
        deltas[arch.name] = abs(measured - paper[arch.name])
    ok = all(d < 0.01 for d in deltas.values())
    detail = ", ".join(f"{k}: |d|={v:.3f}" for k, v in deltas.items())
    return CheckResult("Fig. 5 efficiency endpoints", ok, detail)


_CHECKS: tuple[Callable[[], CheckResult], ...] = (
    _check_functional_agreement,
    _check_estimator_consistency,
    _check_microbench_recovery,
    _check_table2,
    _check_fig5_endpoints,
)


def run_selfcheck() -> list[CheckResult]:
    """Run the battery; exceptions become failed results, not raises."""
    results = []
    for check in _CHECKS:
        try:
            results.append(check())
        except Exception as exc:  # noqa: BLE001 - diagnosis over purity
            name = check.__name__.removeprefix("_check_").replace("_", " ")
            results.append(CheckResult(name, False, f"raised {exc!r}"))
    return results


def render_selfcheck(results: list[CheckResult]) -> str:
    """Human-readable battery report."""
    lines = ["repro self-check"]
    lines.append("-" * len(lines[0]))
    width = max(len(r.name) for r in results)
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"[{status}] {r.name.ljust(width)}  {r.detail}")
    n_pass = sum(r.passed for r in results)
    lines.append(f"{n_pass}/{len(results)} checks passed")
    return "\n".join(lines)
