"""Bit-level primitives: population count and bit packing.

The whole SNP-comparison pipeline operates on *packed* binary matrices:
each row of a boolean SNP matrix is stored as consecutive unsigned
machine words (``uint32`` on the simulated GPUs, ``uint64`` on the CPU
baseline, matching the word sizes the paper uses for each device class).

Two implementation strategies for population count are provided:

* ``numpy.bitwise_count`` (NumPy >= 2.0) -- a vectorized native
  popcount; this is the fast path.
* a 16-bit lookup table -- portable fallback, also useful in tests as
  an independent oracle.

Both are exposed so tests can cross-validate them; callers should use
:func:`popcount`, which picks the fast path automatically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError

__all__ = [
    "WORD_BITS_32",
    "WORD_BITS_64",
    "popcount",
    "popcount_table",
    "popcount_native",
    "popcount_sum",
    "pack_bits",
    "unpack_bits",
    "words_needed",
    "HAS_NATIVE_POPCOUNT",
]

WORD_BITS_32 = 32
WORD_BITS_64 = 64

HAS_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")

# 16-bit popcount lookup table: table[v] = number of set bits in v.
_POPCOUNT16 = np.zeros(1 << 16, dtype=np.uint8)
for _shift in range(16):
    _POPCOUNT16 += ((np.arange(1 << 16) >> _shift) & 1).astype(np.uint8)
del _shift


def popcount_table(words: np.ndarray) -> np.ndarray:
    """Population count via a 16-bit lookup table.

    Parameters
    ----------
    words:
        Array of unsigned integers (``uint8``/``uint16``/``uint32``/
        ``uint64``).

    Returns
    -------
    numpy.ndarray
        ``uint8``-per-16-bit-chunk sums widened to ``int64``; same shape
        as ``words``.
    """
    w = np.asarray(words)
    if w.dtype == np.uint8:
        return _POPCOUNT16[w.astype(np.uint16)].astype(np.int64)
    if w.dtype == np.uint16:
        return _POPCOUNT16[w].astype(np.int64)
    if w.dtype == np.uint32:
        lo = _POPCOUNT16[(w & np.uint32(0xFFFF)).astype(np.uint16)]
        hi = _POPCOUNT16[(w >> np.uint32(16)).astype(np.uint16)]
        return lo.astype(np.int64) + hi
    if w.dtype == np.uint64:
        total = np.zeros(w.shape, dtype=np.int64)
        for shift in (0, 16, 32, 48):
            chunk = ((w >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.uint16)
            total += _POPCOUNT16[chunk]
        return total
    raise PackingError(f"popcount_table: unsupported dtype {w.dtype}")


def popcount_native(words: np.ndarray) -> np.ndarray:
    """Population count via ``numpy.bitwise_count`` (NumPy >= 2.0)."""
    return np.bitwise_count(np.asarray(words)).astype(np.int64)


if HAS_NATIVE_POPCOUNT:

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count, widened to ``int64``."""
        return popcount_native(words)

else:  # pragma: no cover - exercised only on NumPy < 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count, widened to ``int64``."""
        return popcount_table(words)


def popcount_sum(words: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    """Sum of population counts along ``axis`` (or over all elements).

    Equivalent to ``popcount(words).sum(axis=axis)`` but kept as a named
    primitive because it is the exact inner operation of the SNP
    micro-kernel: ``gamma += POPC(a & b)`` summed over the k dimension.
    """
    counts = popcount(words)
    result = counts.sum(axis=axis)
    return int(result) if axis is None else result


def words_needed(n_bits: int, word_bits: int = WORD_BITS_32) -> int:
    """Number of ``word_bits``-wide words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise PackingError(f"words_needed: n_bits must be >= 0, got {n_bits}")
    if word_bits not in (8, 16, 32, 64):
        raise PackingError(f"words_needed: unsupported word_bits {word_bits}")
    return (n_bits + word_bits - 1) // word_bits


_DTYPE_FOR_BITS = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def _is_binary(arr: np.ndarray) -> bool:
    """Whether every element is 0 or 1, using the cheapest check the
    dtype allows: unsigned ints need one comparison, signed ints two;
    only inexact dtypes (floats can hold e.g. 0.5) fall back to the
    membership test."""
    kind = arr.dtype.kind
    if kind == "b":
        return True
    if kind == "u":
        return bool((arr <= 1).all())
    if kind == "i":
        return bool(((arr >= 0) & (arr <= 1)).all())
    return bool(np.isin(arr, (0, 1)).all())


def pack_bits(
    bits: np.ndarray,
    word_bits: int = WORD_BITS_32,
    pad_to_words: int | None = None,
) -> np.ndarray:
    """Pack a binary matrix row-wise into unsigned machine words.

    Bit ``j`` of row ``i`` lands in word ``j // word_bits`` at bit
    position ``j % word_bits`` counted from the *most significant* end
    (big-endian within the word).  The bit order is irrelevant to the
    comparison semantics (AND/XOR/POPC are order-agnostic) but is fixed
    so :func:`unpack_bits` is an exact inverse.

    Parameters
    ----------
    bits:
        2-D array with values in {0, 1} of shape ``(rows, n_bits)``.
        Boolean or any integer dtype accepted.
    word_bits:
        Target word width: 8, 16, 32 or 64.
    pad_to_words:
        If given, right-pad each packed row with zero words up to this
        word count (the paper pads SNP matrices with zero rows/columns
        so tiles divide evenly; zero padding is neutral for AND/XOR
        popcount accumulation *of matching operands* -- see
        :mod:`repro.core.packing` for the XOR caveat handling).

    Returns
    -------
    numpy.ndarray
        Shape ``(rows, n_words)`` of the matching unsigned dtype.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise PackingError(f"pack_bits: expected 2-D input, got ndim={arr.ndim}")
    if arr.dtype != np.bool_:
        if not _is_binary(arr):
            raise PackingError("pack_bits: input must contain only 0s and 1s")
        arr = arr.astype(bool)
    rows, n_bits = arr.shape
    n_words = words_needed(n_bits, word_bits)
    if pad_to_words is not None:
        if pad_to_words < n_words:
            raise PackingError(
                f"pack_bits: pad_to_words={pad_to_words} < required {n_words}"
            )
        n_words = pad_to_words
    dtype = _DTYPE_FOR_BITS[word_bits]

    # np.packbits packs into uint8 MSB-first; view groups of word_bits/8
    # bytes as one big-endian word, then convert into native order.
    padded_bits = np.zeros((rows, n_words * word_bits), dtype=bool)
    padded_bits[:, :n_bits] = arr
    as_u8 = np.packbits(padded_bits, axis=1)
    if word_bits == 8:
        return as_u8.astype(np.uint8)
    return as_u8.view(f">u{word_bits // 8}").astype(dtype)


def _pack_words_byteshift(as_u8: np.ndarray, word_bits: int) -> np.ndarray:
    """Reference byte-assembly for the :func:`pack_bits` tail.

    The per-byte shift-and-or loop the big-endian view replaced; kept
    as an independent oracle so tests can cross-validate the two.
    """
    dtype = _DTYPE_FOR_BITS[word_bits]
    rows = as_u8.shape[0]
    n_words = as_u8.shape[1] // (word_bits // 8)
    be = as_u8.reshape(rows, n_words, word_bits // 8)
    words = np.zeros((rows, n_words), dtype=dtype)
    for byte_idx in range(word_bits // 8):
        shift = dtype(word_bits - 8 * (byte_idx + 1))
        words |= be[:, :, byte_idx].astype(dtype) << shift
    return words


def unpack_bits(
    words: np.ndarray,
    n_bits: int | None = None,
) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    words:
        Packed matrix of shape ``(rows, n_words)``.
    n_bits:
        Truncate the output to this many columns (drop padding).  When
        omitted the full ``n_words * word_bits`` columns are returned.
    """
    w = np.asarray(words)
    if w.ndim != 2:
        raise PackingError(f"unpack_bits: expected 2-D input, got ndim={w.ndim}")
    word_bits = w.dtype.itemsize * 8
    if w.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
        raise PackingError(f"unpack_bits: unsupported dtype {w.dtype}")
    rows, n_words = w.shape
    if rows == 0 or n_words == 0:
        width = n_words * word_bits if n_bits is None else n_bits
        if n_bits is not None and n_bits > n_words * word_bits:
            raise PackingError(
                f"unpack_bits: n_bits={n_bits} exceeds stored {n_words * word_bits}"
            )
        return np.zeros((rows, width), dtype=np.uint8)
    # Expand each word into big-endian bytes, then unpack bits.
    be = w.astype(f">u{word_bits // 8}").view(np.uint8).reshape(rows, -1)
    bits = np.unpackbits(be, axis=1).astype(np.uint8)
    if n_bits is not None:
        if n_bits > bits.shape[1]:
            raise PackingError(
                f"unpack_bits: n_bits={n_bits} exceeds stored {bits.shape[1]}"
            )
        bits = bits[:, :n_bits]
    return bits
