"""Timing utilities: wall-clock stopwatch and simulated-time timelines.

Two distinct notions of time coexist in this library:

* **Host wall-clock time** (:class:`Stopwatch`) -- used by the bench
  harness to measure the *Python* cost of running the functional
  executor (pytest-benchmark cares about this).
* **Simulated device time** (:class:`TimeLine`) -- the timestamps the
  analytical model assigns to transfers and kernel executions on the
  simulated GPUs.  This is what reproduces the paper's *reported*
  execution times; it advances only when model events are recorded.

Keeping them in separate types prevents the classic simulator bug of
adding seconds from different clocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "TimeLine", "Interval"]


class Stopwatch:
    """Minimal wall-clock stopwatch around :func:`time.perf_counter`.

    Usage::

        sw = Stopwatch()
        with sw:
            work()
        print(sw.elapsed)

    Repeated ``with`` blocks accumulate into :attr:`elapsed`.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass(frozen=True)
class Interval:
    """A labelled half-open interval ``[start, end)`` in simulated seconds."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """Whether this interval overlaps ``other`` (positive-length overlap)."""
        return self.start < other.end and other.start < self.end


@dataclass
class TimeLine:
    """An append-only record of simulated intervals on one resource.

    The simulated device stack owns one timeline per serial resource
    (compute queue, transfer engine in each direction).  ``schedule``
    implements in-order queue semantics: an interval may not start
    before the previous one on the same timeline has finished.
    """

    name: str
    intervals: list[Interval] = field(default_factory=list)

    @property
    def now(self) -> float:
        """Completion time of the last scheduled interval (0.0 if empty)."""
        return self.intervals[-1].end if self.intervals else 0.0

    def schedule(self, label: str, earliest_start: float, duration: float) -> Interval:
        """Append an interval starting no earlier than ``earliest_start``.

        Returns the concrete :class:`Interval` actually scheduled (its
        start is ``max(earliest_start, self.now)``).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        start = max(earliest_start, self.now)
        interval = Interval(label=label, start=start, end=start + duration)
        self.intervals.append(interval)
        return interval

    def busy_time(self) -> float:
        """Total occupied time on this resource."""
        return sum(i.duration for i in self.intervals)

    def utilization(self) -> float:
        """Busy time divided by the makespan (0.0 for an empty timeline)."""
        if not self.intervals:
            return 0.0
        makespan = self.now - self.intervals[0].start
        return self.busy_time() / makespan if makespan > 0 else 1.0
