"""Argument-validation helpers.

Small, composable checks used at public-API boundaries.  Each raises
:class:`ValueError`/:class:`TypeError` subclasses with messages that
name the offending parameter, so configuration mistakes surface with
actionable errors instead of downstream shape mismatches.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_power_of_two",
    "check_multiple",
    "check_in_range",
    "check_dtype",
    "check_choice",
    "check_workers",
]


def check_positive(name: str, value: int | float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: int | float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")


def check_multiple(name: str, value: int, base: int) -> None:
    """Require ``value`` to be a positive multiple of ``base``."""
    if base <= 0:
        raise ValueError(f"base for {name} must be positive, got {base!r}")
    if value <= 0 or value % base != 0:
        raise ValueError(f"{name} must be a positive multiple of {base}, got {value!r}")


def check_in_range(
    name: str,
    value: int | float,
    low: int | float,
    high: int | float,
) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_dtype(name: str, array: np.ndarray, allowed: Iterable[type]) -> None:
    """Require ``array.dtype`` to be one of ``allowed`` NumPy dtypes."""
    allowed_dtypes = tuple(np.dtype(a) for a in allowed)
    if np.asarray(array).dtype not in allowed_dtypes:
        names = ", ".join(str(d) for d in allowed_dtypes)
        raise TypeError(
            f"{name} must have dtype in {{{names}}}, got {np.asarray(array).dtype}"
        )


def check_choice(name: str, value: object, choices: Iterable[object]) -> None:
    """Require ``value`` to be one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")


def check_workers(
    name: str, value: object, zero_means_default: bool = False
) -> int:
    """Validate a worker-count parameter at an API entry point.

    Every layer that accepts a worker count (engine constructor, CLI
    ``--workers``, serve config, multi-GPU executor) shares this check
    so ``workers<=0`` fails with one clear :class:`ValueError` naming
    the parameter instead of surfacing as a pool-construction error
    deep in the stack.  With ``zero_means_default=True`` (the CLI
    convention) ``0`` is accepted as "pick the machine default" and
    only negative counts are rejected.  Returns the validated count.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{name} must be an integer worker count, got {value!r}"
        )
    floor = 0 if zero_means_default else 1
    if value < floor:
        expect = "non-negative (0 = machine default)" if zero_means_default \
            else "a positive integer"
        raise ValueError(f"{name} must be {expect}, got {value}")
    return value
