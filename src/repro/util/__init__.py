"""Shared low-level utilities: bit manipulation, timing, formatting.

These helpers are deliberately dependency-free (NumPy only) and are used
by every other subpackage.  Nothing here knows about SNPs, GPUs, or the
BLIS structure.
"""

from repro.util.bitops import (
    popcount,
    popcount_sum,
    pack_bits,
    unpack_bits,
    words_needed,
    WORD_BITS_32,
    WORD_BITS_64,
)
from repro.util.timing import Stopwatch, TimeLine
from repro.util.units import (
    format_bytes,
    format_count,
    format_ops,
    format_seconds,
    gib,
    kib,
    mib,
)
from repro.util.validation import (
    check_dtype,
    check_positive,
    check_power_of_two,
    check_multiple,
    check_in_range,
)

__all__ = [
    "popcount",
    "popcount_sum",
    "pack_bits",
    "unpack_bits",
    "words_needed",
    "WORD_BITS_32",
    "WORD_BITS_64",
    "Stopwatch",
    "TimeLine",
    "format_bytes",
    "format_count",
    "format_ops",
    "format_seconds",
    "gib",
    "kib",
    "mib",
    "check_dtype",
    "check_positive",
    "check_power_of_two",
    "check_multiple",
    "check_in_range",
]
