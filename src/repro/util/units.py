"""Human-readable unit formatting and binary-size constants.

The paper reports memory in GiB/KiB, throughput in giga-operations per
second, and times in milliseconds; these helpers keep the bench output
consistent with those conventions.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "kib",
    "mib",
    "gib",
    "format_bytes",
    "format_count",
    "format_ops",
    "format_seconds",
    "format_percent",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3


def kib(n: float) -> int:
    """``n`` KiB in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` MiB in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """``n`` GiB in bytes."""
    return int(n * GIB)


def format_bytes(n_bytes: float) -> str:
    """Format a byte count with a binary prefix (``1.50 MiB``)."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_count(n: float) -> str:
    """Format a plain count with an SI prefix (``18.0 M``)."""
    value = float(n)
    for unit in ("", "K", "M", "G", "T"):
        if abs(value) < 1000 or unit == "T":
            if unit == "":
                return f"{value:g}"
            return f"{value:.1f} {unit}"
        value /= 1000
    raise AssertionError("unreachable")


def format_ops(ops_per_second: float) -> str:
    """Format a throughput in operations/second (``1.86 Gops/s``)."""
    value = float(ops_per_second)
    for unit in ("ops/s", "Kops/s", "Mops/s", "Gops/s", "Tops/s"):
        if abs(value) < 1000 or unit == "Tops/s":
            return f"{value:.2f} {unit}"
        value /= 1000
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration, scaling to ns/us/ms/s as appropriate."""
    s = float(seconds)
    if s == 0:
        return "0 s"
    if abs(s) >= 1:
        return f"{s:.3f} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    if abs(s) >= 1e-6:
        return f"{s * 1e6:.3f} us"
    return f"{s * 1e9:.1f} ns"


def format_percent(fraction: float) -> str:
    """Format a fraction as a percentage (``97.1%``)."""
    return f"{fraction * 100:.1f}%"
