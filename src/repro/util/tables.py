"""Plain-text table rendering for bench output and reports.

The bench harness regenerates the paper's tables and figure series as
aligned ASCII tables (the "same rows the paper reports").  This module
is a tiny, dependency-free renderer: columns are sized to content,
numeric cells are right-aligned, text cells left-aligned.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_kv"]


def _is_numeric(cell: str) -> bool:
    text = cell.strip().rstrip("%x")
    if not text:
        return False
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Every cell is converted with ``str``; ``None`` renders as ``-``.
    """
    str_rows: list[list[str]] = []
    for row in rows:
        cells = ["-" if c is None else str(c) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}: {cells!r}"
            )
        str_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in str_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], numeric_align: bool) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric_align and _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers), numeric_align=False))
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append(fmt_row(cells, numeric_align=True))
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, object]], title: str | None = None) -> str:
    """Render key/value pairs as an aligned two-column block."""
    items = [(str(k), "-" if v is None else str(v)) for k, v in pairs]
    if not items:
        return title or ""
    key_width = max(len(k) for k, _ in items)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in items:
        lines.append(f"{key.ljust(key_width)} : {value}")
    return "\n".join(lines)
