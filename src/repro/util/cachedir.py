"""Per-user cache directory resolution (XDG-aware).

Two subsystems persist per-machine state across runs: the host
autotuner (:mod:`repro.parallel.tuner`) and the compiled-kernel build
cache (:mod:`repro.kernels.cnative_backend`).  Both live under one
``repro/`` cache root, resolved identically:

1. the subsystem's own environment variable (``REPRO_TUNING_CACHE``,
   ``REPRO_KERNEL_CACHE``) always wins -- handled by the callers;
2. ``$XDG_CACHE_HOME/repro`` when ``XDG_CACHE_HOME`` is set and
   non-empty (the basedir spec; CI runners set it to keep jobs
   hermetic);
3. ``~/.cache/repro`` otherwise.

The environment is consulted on every call, not captured at import,
so a test (or a job step) that changes ``XDG_CACHE_HOME`` changes
where the *next* cache object lands.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["repro_cache_dir"]


def repro_cache_dir() -> Path:
    """The per-user ``repro`` cache root, honoring ``XDG_CACHE_HOME``."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path("~/.cache").expanduser()
    return base / "repro"
