"""BLIS-style structure shared by the CPU baseline and the GPU framework.

The paper's central algorithmic claim is that the *same* BLIS
matrix-multiplication structure (Fig. 3: five loops around a
micro-kernel, with packed panels of A and B) serves SNP comparison on
both CPUs (Alachiotis et al. [11]) and GPUs (this paper).  This package
implements that shared structure once:

* :mod:`repro.blis.blocking` -- tiling iterators and the core-grid
  partitioning of the 2nd/3rd loops.
* :mod:`repro.blis.packing` -- packing of A into ``m_r``-row
  micro-panels and B into ``n_r``-column micro-panels.
* :mod:`repro.blis.microkernel` -- the comparison micro-kernel registry
  (AND / XOR / AND-NOT combined with POPC and ADD) with per-word
  instruction mixes used by the performance models.
* :mod:`repro.blis.gemm` -- reference and blocked drivers for the
  popcount-GEMM ``C[i,j] = sum_k POPC(op(A[i,k], B[j,k]))``.
"""

from repro.blis.blocking import BlockingPlan, tile_ranges, split_evenly
from repro.blis.microkernel import (
    ComparisonOp,
    MicroKernel,
    get_microkernel,
    MICROKERNELS,
)
from repro.blis.packing import pack_a_panel, pack_b_panel, unpack_a_panel
from repro.blis.gemm import (
    bit_gemm_reference,
    bit_gemm_blocked,
    bit_gemm_fast,
    bit_gemm_backend,
)

__all__ = [
    "BlockingPlan",
    "tile_ranges",
    "split_evenly",
    "ComparisonOp",
    "MicroKernel",
    "get_microkernel",
    "MICROKERNELS",
    "pack_a_panel",
    "pack_b_panel",
    "unpack_a_panel",
    "bit_gemm_reference",
    "bit_gemm_blocked",
    "bit_gemm_fast",
    "bit_gemm_backend",
]
