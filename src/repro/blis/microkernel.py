"""Comparison micro-kernels: the innermost operation of every algorithm.

Alachiotis et al. [11] replace the GEMM multiply-add with the sequence
*logical op* -> *population count* -> *integer add*::

    gamma[i, j] += POPC(op(alpha[i, k], beta[k, j]))

The three applications differ only in ``op`` (Section II of the paper):

=================  ==========================  =========================
Application        op                           Notes
=================  ==========================  =========================
LD                 ``a & b``                    Eq. (1)
FastID identity    ``a ^ b``                    Eq. (2)
FastID mixture     ``r & ~m``                   Eq. (3) simplified; on
                                                hardware with a fused
                                                AND-NOT this is one
                                                instruction, otherwise
                                                NOT + AND (two).
=================  ==========================  =========================

Each :class:`MicroKernel` carries

* the word-level combiner (a NumPy ufunc expression) used by the
  functional executors, and
* the **instruction mix** per packed word -- how many ALU-class ops
  (AND/XOR/NOT/ADD) and POPC-class ops the comparison costs -- which
  the performance model turns into pipeline occupancies (Section V-D:
  on Vega, ADD and AND share a pipeline and become the bottleneck; on
  NVIDIA the scarcer POPC units do).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ModelError

__all__ = [
    "ComparisonOp",
    "InstructionMix",
    "MicroKernel",
    "MICROKERNELS",
    "get_microkernel",
]


class ComparisonOp(enum.Enum):
    """The word-level logical operation of a SNP comparison."""

    AND = "and"            # linkage disequilibrium, Eq. (1)
    XOR = "xor"            # FastID identity search, Eq. (2)
    ANDNOT = "andnot"      # FastID mixture analysis, Eq. (3) simplified
    # Mixture analysis against a *pre-negated* database (Section II-C):
    # the NOT is folded into the data, so at kernel level this is AND.
    AND_PRENEGATED = "and_prenegated"

    @property
    def is_symmetric(self) -> bool:
        """Whether op(a, b) == op(b, a) (allows C = C^T shortcuts)."""
        return self in (ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.AND_PRENEGATED)


@dataclass(frozen=True)
class InstructionMix:
    """Instruction counts per packed word of the inner loop body.

    ``alu`` counts 32-bit integer/logic operations that execute on the
    general ALU pipe (AND, XOR, NOT, integer ADD); ``popc`` counts
    population-count operations; ``fused_alu`` is the ALU count when
    the target exposes a fused AND-NOT instruction (BFI/LOP3-style on
    NVIDIA, V_ANDN2 on GCN).
    """

    alu: int
    popc: int
    fused_alu: int

    def alu_ops(self, has_fused_andnot: bool) -> int:
        """ALU-op count given the target's fused-AND-NOT support."""
        return self.fused_alu if has_fused_andnot else self.alu


@dataclass(frozen=True)
class MicroKernel:
    """A comparison micro-kernel: combiner plus instruction mix.

    The combiner maps two packed-word arrays to the packed comparison
    result; the accumulation ``gamma += POPC(result)`` is shared by all
    kernels and accounted separately (1 POPC + 1 ADD per word).
    """

    op: ComparisonOp
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]
    # Mix of the *combiner only*; accumulate adds (1 popc, 1 alu add).
    combine_mix: InstructionMix
    description: str

    @property
    def mix(self) -> InstructionMix:
        """Full per-word mix including the POPC and the accumulate ADD."""
        return InstructionMix(
            alu=self.combine_mix.alu + 1,
            popc=self.combine_mix.popc + 1,
            fused_alu=self.combine_mix.fused_alu + 1,
        )


def _and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.bitwise_and(a, b)


def _xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.bitwise_xor(a, b)


def _andnot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.bitwise_and(a, np.bitwise_not(b))


MICROKERNELS: dict[ComparisonOp, MicroKernel] = {
    ComparisonOp.AND: MicroKernel(
        op=ComparisonOp.AND,
        combine=_and,
        combine_mix=InstructionMix(alu=1, popc=0, fused_alu=1),
        description="gamma += POPC(a & b)  [linkage disequilibrium]",
    ),
    ComparisonOp.XOR: MicroKernel(
        op=ComparisonOp.XOR,
        combine=_xor,
        combine_mix=InstructionMix(alu=1, popc=0, fused_alu=1),
        description="gamma += POPC(a ^ b)  [FastID identity search]",
    ),
    ComparisonOp.ANDNOT: MicroKernel(
        op=ComparisonOp.ANDNOT,
        combine=_andnot,
        # NOT + AND on plain ALUs; a single fused op where supported.
        combine_mix=InstructionMix(alu=2, popc=0, fused_alu=1),
        description="gamma += POPC(r & ~m)  [FastID mixture analysis]",
    ),
    ComparisonOp.AND_PRENEGATED: MicroKernel(
        op=ComparisonOp.AND_PRENEGATED,
        combine=_and,
        combine_mix=InstructionMix(alu=1, popc=0, fused_alu=1),
        description=(
            "gamma += POPC(r & m_neg)  [mixture analysis, database pre-negated]"
        ),
    ),
}


def get_microkernel(op: ComparisonOp | str) -> MicroKernel:
    """Look up a micro-kernel by :class:`ComparisonOp` or its value string."""
    if isinstance(op, str):
        try:
            op = ComparisonOp(op)
        except ValueError as exc:
            valid = ", ".join(o.value for o in ComparisonOp)
            raise ModelError(
                f"get_microkernel: unknown op {op!r} (valid: {valid})"
            ) from exc
    kernel = MICROKERNELS.get(op)
    if kernel is None:
        raise ModelError(f"get_microkernel: no kernel registered for {op!r}")
    return kernel
