"""Popcount-GEMM drivers: ``C[i, j] = sum_k POPC(op(A[i, k], B[j, k]))``.

Three functionally identical drivers with different purposes:

* :func:`bit_gemm_reference` -- the transparent oracle: a literal
  word-broadcast evaluation.  O(m*n*k) popcounts with an (m, n, k)
  temporary per row block; used by tests.
* :func:`bit_gemm_blocked` -- the BLIS-structured driver: packs panels,
  iterates the five loops, calls the micro-kernel per tile.  This is
  the code path whose *structure* matches the paper's kernel; the GPU
  executor reuses its tile walk.
* :func:`bit_gemm_fast` -- the high-throughput functional path using
  the algebraic identities

      POPC(a & b)  summed over words  =  <bits(a), bits(b)>
      POPC(a ^ b)                      =  |a| + |b| - 2 <a, b>
      POPC(a & ~b)                     =  |a| - <a, b>

  evaluated as one integer GEMM over the unpacked bits.  Used to verify
  large problems where the word-walk would be too slow in Python.

All drivers take *row-major packed* operands: A is ``(m, k)`` words,
B is ``(n, k)`` words (note B is stored row-per-output-column, i.e.
already "transposed" -- both SNP applications naturally produce this
layout because every entity is a packed row).

**Gram (symmetric) hint.**  Self-comparisons with a symmetric op
(AND, XOR, AND_PRENEGATED -- see
:attr:`~repro.blis.microkernel.ComparisonOp.is_symmetric`) produce
``C == C.T``.  ``bit_gemm_blocked(..., symmetric=True)`` skips every
micro-tile lying entirely below the diagonal and fills it afterwards
by reflecting its (computed) transpose tile, roughly halving the
word-ops; the :data:`GEMM_WORD_OPS` counter records only the computed
tiles.  The hint is *validated*: asymmetric ops and non-self operands
are rejected, so ANDNOT provably never takes the triangular path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError
from repro.blis.blocking import BlockingPlan, tile_ranges
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.blis.packing import pack_a_panel, pack_b_panel
from repro.observability.counters import GEMM_CALLS, GEMM_WORD_OPS
from repro.observability.tracer import get_tracer
from repro.util.bitops import popcount, unpack_bits

__all__ = [
    "bit_gemm_reference",
    "bit_gemm_blocked",
    "bit_gemm_fast",
    "bit_gemm_backend",
    "same_operand",
]


def same_operand(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether ``a`` and ``b`` are views of the *same* packed matrix.

    ``a is b`` plus the view case the tiled pipeline produces: a
    full-extent slice shares the data pointer, shape and strides of
    the original without being the same Python object.
    """
    if a is b:
        return True
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and a.strides == b.strides
        and bool(a.size)
        and a.__array_interface__["data"] == b.__array_interface__["data"]
    )


def _check_symmetric(
    fn: str, a: np.ndarray, b: np.ndarray, op: ComparisonOp
) -> None:
    """Validate a ``symmetric=True`` hint (Gram mode preconditions).

    The same-matrix check accepts equal-*content* copies as well as
    views: the simulated device pipeline stages operands through
    buffer copies, so a self-comparison's A and B buffers are distinct
    arrays with identical words.  The content comparison is O(m*k)
    words -- noise next to the O(m*n*k) GEMM it guards.
    """
    if not op.is_symmetric:
        raise PackingError(
            f"{fn}: symmetric=True is invalid for asymmetric op {op.value!r}"
        )
    if not same_operand(a, b) and not (
        a.shape == b.shape and bool(np.array_equal(a, b))
    ):
        raise PackingError(
            f"{fn}: symmetric=True requires a self-comparison "
            f"(operands must hold the same packed matrix)"
        )


def _check_operands(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a)
    b = np.asarray(b)
    for name, arr in (("A", a), ("B", b)):
        if arr.ndim != 2:
            raise PackingError(f"bit_gemm: {name} must be 2-D packed words")
        if arr.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
            raise PackingError(f"bit_gemm: {name} has non-word dtype {arr.dtype}")
    if a.dtype != b.dtype:
        raise PackingError(f"bit_gemm: dtype mismatch ({a.dtype} vs {b.dtype})")
    if a.shape[1] != b.shape[1]:
        raise PackingError(
            f"bit_gemm: k mismatch (A has {a.shape[1]} words, B has {b.shape[1]})"
        )
    return a, b


def bit_gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    row_block: int = 64,
) -> np.ndarray:
    """Literal evaluation of the popcount-GEMM (test oracle).

    The loop itself lives in
    :func:`repro.kernels.numpy_backend.reference_panel` -- the
    registered ``"numpy"`` reference backend -- so the oracle tests
    race against *is* the reference backend, by construction.
    ``row_block`` bounds the size of the (rows, n, k) broadcast
    temporary.
    """
    # Lazy import: repro.kernels registers backends that reach back
    # into this module, so the module-level edge must stay one-way.
    from repro.kernels.numpy_backend import reference_panel

    a, b = _check_operands(a, b)
    kernel = get_microkernel(op)
    return reference_panel(a, b, kernel, row_block)


def bit_gemm_backend(
    a: np.ndarray,
    b: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    backend: str = "auto",
    symmetric: bool = False,
) -> np.ndarray:
    """Evaluate the popcount-GEMM through a registered kernel backend.

    ``backend`` resolves per :func:`repro.kernels.resolve_backend`
    (``"auto"`` honours ``REPRO_BACKEND`` and defaults to the
    reference backend).  ``symmetric=True`` is accepted (and
    validated) for API uniformity with the other drivers, but panel
    backends compute the full product -- the triangular savings live
    in the shard plan above this layer -- so the word-op counter
    records the full ``m * n * k``, matching :func:`bit_gemm_fast`.
    """
    from repro.kernels import resolve_backend

    a, b = _check_operands(a, b)
    kernel = get_microkernel(op)
    if symmetric:
        _check_symmetric("bit_gemm_backend", a, b, kernel.op)
    be = resolve_backend(backend)
    obs = get_tracer()
    obs.counters.add(GEMM_CALLS)
    obs.counters.add(GEMM_WORD_OPS, a.shape[0] * b.shape[0] * a.shape[1])
    with obs.span(
        "gemm.backend",
        backend=be.info.name,
        m=a.shape[0],
        n=b.shape[0],
        k=a.shape[1],
    ):
        return be.bit_gemm_panel(a, b, kernel.op)


def bit_gemm_blocked(
    a: np.ndarray,
    b: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    plan: BlockingPlan | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """BLIS five-loop evaluation with packed panels.

    The loop nest (outside-in) is: k_c panels -> core assignments
    (m_c x n_r C tiles) -> micro-tiles -> micro-kernel.  Cores are
    iterated sequentially here (this is the functional semantics; the
    device executor overlays timing on the same walk).

    ``symmetric=True`` (Gram mode) skips micro-tiles entirely below the
    diagonal and mirror-fills them from their computed transpose tiles
    after the walk.  Requires a symmetric op, ``a`` and ``b`` the same
    matrix, and a square output.
    """
    a, b = _check_operands(a, b)
    kernel = get_microkernel(op)
    m, k = a.shape
    n = b.shape[0]
    if symmetric:
        _check_symmetric("bit_gemm_blocked", a, b, kernel.op)
    if plan is None:
        plan = BlockingPlan(m=m, n=n, k=k, m_c=32, k_c=256, m_r=4, n_r=64)
    if (plan.m, plan.n, plan.k) != (m, n, k):
        raise PackingError(
            f"bit_gemm_blocked: plan extents {(plan.m, plan.n, plan.k)} do not "
            f"match operands {(m, n, k)}"
        )

    obs = get_tracer()
    obs.counters.add(GEMM_CALLS)
    skipped_ops = _below_diagonal_ops(plan) if symmetric else 0
    obs.counters.add(GEMM_WORD_OPS, plan.total_ops() - skipped_ops)
    c = np.zeros((m, n), dtype=np.int64)
    with obs.span("gemm.blocked", m=m, n=n, k=k):
        for k0, k1 in plan.k_panels():
            for assign in plan.core_assignments():
                if assign.is_empty:
                    continue
                m0, m1 = assign.m_range
                n0, n1 = assign.n_range
                # Loop 3: walk m_c panels of A inside this core's M range,
                # packing each into the shared-memory layout.
                for pm0, pm1 in _panel_ranges(m0, m1, plan.m_c):
                    a_packed = pack_a_panel(a[pm0:pm1, k0:k1], plan.m_r)
                    # Loops 2/1: n_r micro-panels of B, micro-tiles of C.
                    for pn0, pn1 in _panel_ranges(n0, n1, plan.n_r):
                        if symmetric and pm0 >= pn1:
                            # Every micro-tile in this panel pairing lies
                            # below the diagonal; skip the B pack too.
                            continue
                        b_packed = pack_b_panel(b[pn0:pn1, k0:k1].T, plan.n_r)
                        _micro_update(
                            c, a_packed, b_packed, kernel.combine,
                            pm0, pm1, pn0, pn1, plan.m_r,
                            symmetric=symmetric,
                        )
    if symmetric:
        _mirror_fill(c, plan)
    return c


def _below_diagonal_ops(plan: BlockingPlan) -> int:
    """Word-ops of micro-tiles lying entirely below the diagonal.

    These are exactly the tiles Gram mode skips and mirror-fills; all
    micro-tile boundaries in the five-loop walk land on the global
    ``tile_ranges`` grid (``m_c`` is a multiple of ``m_r`` and
    :func:`split_in_units` aligns core boundaries), so this closed-form
    count matches the tiles the walk skips.
    """
    skipped = 0
    for r0, r1 in tile_ranges(plan.m, plan.m_r):
        for c0, c1 in tile_ranges(plan.n, plan.n_r):
            if r0 >= c1:
                skipped += (r1 - r0) * (c1 - c0) * plan.k
    return skipped


def _mirror_fill(c: np.ndarray, plan: BlockingPlan) -> None:
    """Fill skipped below-diagonal micro-tiles by transposition.

    A tile is skipped iff ``r0 >= c1``; its source tile at the
    transposed ranges satisfies ``c0 < r1`` (the two conditions are
    mutually exclusive for non-empty tiles), so every source was
    computed during the walk.
    """
    for r0, r1 in tile_ranges(plan.m, plan.m_r):
        for col0, col1 in tile_ranges(plan.n, plan.n_r):
            if r0 >= col1:
                c[r0:r1, col0:col1] = c[col0:col1, r0:r1].T


def _panel_ranges(start: int, stop: int, block: int) -> list[tuple[int, int]]:
    return [(s, min(s + block, stop)) for s in range(start, stop, block)]


def _micro_update(
    c: np.ndarray,
    a_packed: np.ndarray,
    b_packed: np.ndarray,
    combine,
    m0: int,
    m1: int,
    n0: int,
    n1: int,
    m_r: int,
    symmetric: bool = False,
) -> np.ndarray:
    """Rank-k_c update of C[m0:m1, n0:n1] from packed panels.

    With ``symmetric=True``, micro-tiles entirely below the diagonal
    (``rows0 >= cols1``) are skipped; :func:`_mirror_fill` reflects
    them from their transpose tiles after the full walk.
    """
    n_b_panels, k_len, n_r = b_packed.shape
    for pa in range(a_packed.shape[0]):
        # (k, m_r) micro-panel of A.
        a_micro = a_packed[pa]
        rows0 = m0 + pa * m_r
        rows1 = min(rows0 + m_r, m1)
        live_rows = rows1 - rows0
        if live_rows <= 0:
            continue
        for pb in range(n_b_panels):
            b_micro = b_packed[pb]  # (k, n_r)
            cols0 = n0 + pb * n_r
            cols1 = min(cols0 + n_r, n1)
            live_cols = cols1 - cols0
            if live_cols <= 0:
                continue
            if symmetric and rows0 >= cols1:
                continue
            # Micro-kernel: (m_r, n_r) popcount-accumulate over k.
            combined = combine(
                a_micro[:, :live_rows, None], b_micro[:, None, :live_cols]
            )
            c[rows0:rows1, cols0:cols1] += popcount(combined).sum(axis=0)
    return c


def bit_gemm_fast(
    a: np.ndarray,
    b: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    symmetric: bool = False,
) -> np.ndarray:
    """Identity-based evaluation via one integer GEMM over unpacked bits.

    Bit-exact with the other drivers; used for large functional runs.
    Note XOR/ANDNOT identities act on the *stored words*, so padding
    bits (always 0 in both operands by construction) contribute 0.

    ``symmetric=True`` is accepted (and validated) for API uniformity
    with :func:`bit_gemm_blocked`, but the BLAS path computes the full
    product either way -- one dense GEMM beats a triangular walk in
    NumPy -- so the word-op counter records the full ``m * n * k``.
    """
    a, b = _check_operands(a, b)
    op = get_microkernel(op).op
    if symmetric:
        _check_symmetric("bit_gemm_fast", a, b, op)
    obs = get_tracer()
    obs.counters.add(GEMM_CALLS)
    obs.counters.add(GEMM_WORD_OPS, a.shape[0] * b.shape[0] * a.shape[1])
    with obs.span("gemm.fast", m=a.shape[0], n=b.shape[0], k=a.shape[1]):
        # float64 GEMM hits BLAS (orders of magnitude faster than integer
        # matmul) and is exact here: dot products are bounded by the bit
        # count k * word_bits, far below 2**53.
        bits_a = unpack_bits(a).astype(np.float64)
        bits_b = unpack_bits(b).astype(np.float64)
        dots = np.rint(bits_a @ bits_b.T).astype(np.int64)
        if op in (ComparisonOp.AND, ComparisonOp.AND_PRENEGATED):
            return dots
        pop_a = popcount(a).sum(axis=1)
        if op is ComparisonOp.XOR:
            pop_b = popcount(b).sum(axis=1)
            return pop_a[:, None] + pop_b[None, :] - 2 * dots
        if op is ComparisonOp.ANDNOT:
            return pop_a[:, None] - dots
        raise PackingError(f"bit_gemm_fast: unhandled op {op!r}")
