"""Panel packing: the BLIS pack-buffer layouts for A and B.

Packing rearranges a panel of the row-major input matrix into the
contiguous access order of the micro-kernel, so the inner loop streams
memory with unit stride:

* **A panels** (``m_c x k_c``) are stored as a sequence of
  ``m_r``-row *micro-panels*, each laid out column-major within the
  micro-panel: element order is ``(panel, k, r)``.  Reading one ``k``
  column of a micro-panel is then contiguous -- this is the tile the
  GPU kernel stages into shared memory (Section V of the paper).
* **B panels** (``k_c x n_r``) are stored as ``n_r``-column micro-panels
  in ``(panel, k, c)`` order; on the GPU each thread group streams its
  ``n_r / L_fn`` columns directly from global memory.

Partial edge panels are zero-padded to full ``m_r``/``n_r`` width.
Zero padding is safe for every comparison op in this library:
AND/AND-NOT of a zero word is zero (0 popcount), and XOR rows that are
*both* padding contribute popcount 0.  XOR pairs of (real, padding)
rows would contribute ``popcount(real)``, but those output cells lie
outside the valid ``m x n`` region and are cropped by the drivers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError

__all__ = ["pack_a_panel", "unpack_a_panel", "pack_b_panel", "unpack_b_panel"]


def _check_panel(name: str, panel: np.ndarray) -> np.ndarray:
    arr = np.asarray(panel)
    if arr.ndim != 2:
        raise PackingError(f"{name}: expected 2-D panel, got ndim={arr.ndim}")
    if arr.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
        raise PackingError(f"{name}: expected unsigned integer words, got {arr.dtype}")
    return arr


def pack_a_panel(panel: np.ndarray, m_r: int) -> np.ndarray:
    """Pack an ``(m, k)`` A panel into ``m_r``-row micro-panels.

    Returns an array of shape ``(ceil(m / m_r), k, m_r)`` (contiguous),
    zero-padded in the row dimension.
    """
    arr = _check_panel("pack_a_panel", panel)
    if m_r <= 0:
        raise PackingError(f"pack_a_panel: m_r must be positive, got {m_r}")
    m, k = arr.shape
    n_panels = (m + m_r - 1) // m_r if m else 0
    packed = np.zeros((n_panels, k, m_r), dtype=arr.dtype)
    for p in range(n_panels):
        rows = arr[p * m_r : min((p + 1) * m_r, m)]
        packed[p, :, : rows.shape[0]] = rows.T
    return packed


def unpack_a_panel(packed: np.ndarray, m: int) -> np.ndarray:
    """Inverse of :func:`pack_a_panel`; crops padding back to ``m`` rows."""
    arr = np.asarray(packed)
    if arr.ndim != 3:
        raise PackingError(f"unpack_a_panel: expected 3-D pack buffer, got {arr.ndim}")
    n_panels, k, m_r = arr.shape
    if m < 0 or m > n_panels * m_r:
        raise PackingError(
            f"unpack_a_panel: m={m} outside [0, {n_panels * m_r}]"
        )
    # (panel, k, r) -> (panel, r, k) -> (panel*r, k)
    rows = arr.transpose(0, 2, 1).reshape(n_panels * m_r, k)
    return rows[:m].copy()


def pack_b_panel(panel: np.ndarray, n_r: int) -> np.ndarray:
    """Pack a ``(k, n)`` B panel into ``n_r``-column micro-panels.

    Returns an array of shape ``(ceil(n / n_r), k, n_r)`` (contiguous),
    zero-padded in the column dimension.
    """
    arr = _check_panel("pack_b_panel", panel)
    if n_r <= 0:
        raise PackingError(f"pack_b_panel: n_r must be positive, got {n_r}")
    k, n = arr.shape
    n_panels = (n + n_r - 1) // n_r if n else 0
    packed = np.zeros((n_panels, k, n_r), dtype=arr.dtype)
    for p in range(n_panels):
        cols = arr[:, p * n_r : min((p + 1) * n_r, n)]
        packed[p, :, : cols.shape[1]] = cols
    return packed


def unpack_b_panel(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_b_panel`; crops padding back to ``n`` columns."""
    arr = np.asarray(packed)
    if arr.ndim != 3:
        raise PackingError(f"unpack_b_panel: expected 3-D pack buffer, got {arr.ndim}")
    n_panels, k, n_r = arr.shape
    if n < 0 or n > n_panels * n_r:
        raise PackingError(f"unpack_b_panel: n={n} outside [0, {n_panels * n_r}]")
    # (panel, k, c) -> (k, panel, c) -> (k, panel*c)
    cols = arr.transpose(1, 0, 2).reshape(k, n_panels * n_r)
    return cols[:, :n].copy()
