"""Loop blocking and core-grid partitioning (the BLIS loop structure).

The BLIS algorithm (paper Fig. 3) wraps a micro-kernel in five loops:

* loop 5 (``n_c``): partition N -- omitted here; problems either fit or
  are tiled by :mod:`repro.core.pipeline` at a coarser granularity.
* loop 4 (``k_c``): partition K into panels packed into fast memory.
* loop 3 (``m_c``): partition M into panels of A packed into shared
  memory / L2.
* loops 2 and 1 (``n_r``, ``m_r``): micro-tile loops *parallelized
  across cores* -- each core owns an ``m_c x n_r`` tile of C
  (Section IV-C of the paper).
* micro-kernel: ``m_r x n_r`` rank-``k_c`` update.

This module provides the index arithmetic for those partitions and the
assignment of ``m_c x n_r`` C-tiles to a 2-D grid of compute cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "tile_ranges",
    "split_evenly",
    "split_in_units",
    "BlockingPlan",
    "CoreAssignment",
]


def tile_ranges(extent: int, block: int) -> list[tuple[int, int]]:
    """Half-open ``[start, stop)`` ranges tiling ``extent`` by ``block``.

    The final range may be shorter.  ``extent == 0`` yields no ranges.
    """
    if block <= 0:
        raise ConfigurationError(f"tile_ranges: block must be positive, got {block}")
    if extent < 0:
        raise ConfigurationError(f"tile_ranges: extent must be >= 0, got {extent}")
    return [(start, min(start + block, extent)) for start in range(0, extent, block)]


def split_evenly(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split ``extent`` into ``parts`` contiguous near-equal ranges.

    The first ``extent % parts`` ranges are one element longer, matching
    how a static OpenCL work partition distributes remainder rows.
    """
    if parts <= 0:
        raise ConfigurationError(f"split_evenly: parts must be positive, got {parts}")
    if extent < 0:
        raise ConfigurationError(f"split_evenly: extent must be >= 0, got {extent}")
    base, extra = divmod(extent, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class CoreAssignment:
    """One core's share of the output: a C sub-block and its A/B panels."""

    core_row: int
    core_col: int
    m_range: tuple[int, int]
    n_range: tuple[int, int]

    @property
    def m_size(self) -> int:
        return self.m_range[1] - self.m_range[0]

    @property
    def n_size(self) -> int:
        return self.n_range[1] - self.n_range[0]

    @property
    def is_empty(self) -> bool:
        return self.m_size == 0 or self.n_size == 0


@dataclass(frozen=True)
class BlockingPlan:
    """Concrete blocking of one ``C = op(A, B)`` popcount-GEMM.

    Parameters
    ----------
    m, n, k:
        Problem extents: C is ``m x n``; the reduction runs over ``k``
        packed words.
    m_c, k_c:
        Panel blockings (loop 3 / loop 4).
    m_r, n_r:
        Micro-tile sizes (register blocking).
    grid_rows, grid_cols:
        Core grid: ``grid_rows x grid_cols`` cores partition the M and N
        dimensions respectively (the paper's "core configuration",
        Table II).
    """

    m: int
    n: int
    k: int
    m_c: int
    k_c: int
    m_r: int
    n_r: int
    grid_rows: int = 1
    grid_cols: int = 1

    def __post_init__(self) -> None:
        for name in ("m", "n", "k"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"BlockingPlan: {name} must be >= 0")
        for name in ("m_c", "k_c", "m_r", "n_r", "grid_rows", "grid_cols"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"BlockingPlan: {name} must be positive")
        if self.m_c % self.m_r != 0:
            raise ConfigurationError(
                f"BlockingPlan: m_c ({self.m_c}) must be a multiple of "
                f"m_r ({self.m_r})"
            )

    @property
    def n_cores(self) -> int:
        return self.grid_rows * self.grid_cols

    def k_panels(self) -> list[tuple[int, int]]:
        """Loop-4 partition of the reduction dimension."""
        return tile_ranges(self.k, self.k_c)

    def core_assignments(self) -> list[CoreAssignment]:
        """Partition C across the core grid (loops 3 and 2).

        M is split across grid rows at micro-panel (``m_r``) granularity
        -- the finest unit that keeps register tiles whole -- which is
        what lets strongly skewed grids (the Titan V's 80x1) stay
        balanced on row counts that no ``m_c`` multiple divides.  N is
        split across grid columns in units of ``n_r``.  Mirrors the
        hierarchical partition of Smith et al. [23] the paper adopts.
        """
        m_splits = split_in_units(self.m, self.grid_rows, self.m_r)
        n_splits = split_in_units(self.n, self.grid_cols, self.n_r)
        out = []
        for r, m_range in enumerate(m_splits):
            for c, n_range in enumerate(n_splits):
                out.append(
                    CoreAssignment(
                        core_row=r, core_col=c, m_range=m_range, n_range=n_range
                    )
                )
        return out

    def micro_tiles(
        self, m_range: tuple[int, int], n_range: tuple[int, int]
    ) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """All (m_r x n_r) micro-tile ranges inside a core's C block."""
        m0, m1 = m_range
        n0, n1 = n_range
        tiles = []
        for mr0, mr1 in tile_ranges(m1 - m0, self.m_r):
            for nr0, nr1 in tile_ranges(n1 - n0, self.n_r):
                tiles.append(((m0 + mr0, m0 + mr1), (n0 + nr0, n0 + nr1)))
        return tiles

    def total_ops(self) -> int:
        """Packed-word comparison operations in the full problem (m*n*k)."""
        return self.m * self.n * self.k


def split_in_units(extent: int, parts: int, unit: int) -> list[tuple[int, int]]:
    """Split ``extent`` into ``parts`` ranges aligned to ``unit``.

    Each boundary lands on a multiple of ``unit`` except possibly the
    final stop at ``extent``; remainder units are distributed to the
    leading parts.  Degenerates gracefully when ``extent`` has fewer
    than ``parts`` units (trailing parts get empty ranges).  Shared by
    the core-grid partition above and the host-side shard partition
    (:mod:`repro.parallel.plan`), so device tiling and host sharding
    cannot drift apart.
    """
    n_units = (extent + unit - 1) // unit if extent else 0
    unit_splits = split_evenly(n_units, parts)
    ranges = []
    for u0, u1 in unit_splits:
        start = min(u0 * unit, extent)
        stop = min(u1 * unit, extent)
        ranges.append((start, stop))
    return ranges
