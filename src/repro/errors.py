"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so applications can catch the whole family with a
single ``except`` clause while still distinguishing sub-categories.

The hierarchy mirrors the major subsystems:

* :class:`ConfigurationError` -- invalid kernel/framework configuration
  (bad ``m_c``/``n_r`` values, impossible core grids, ...).
* :class:`DeviceError` -- simulated OpenCL device stack failures
  (allocation beyond global memory, use of released buffers, queue
  misuse, ...).
* :class:`PackingError` -- SNP bit-packing problems (shape mismatches,
  non-binary input, overflow of padding constraints).
* :class:`DatasetError` -- genetics substrate problems (inconsistent
  sample/site counts, malformed files).
* :class:`ModelError` -- analytical performance-model failures
  (unknown instruction, unsatisfiable bottleneck query).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DeviceError",
    "AllocationError",
    "KernelLaunchError",
    "PackingError",
    "DatasetError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid software configuration was supplied or derived.

    Raised when a :class:`~repro.core.config.KernelConfig` violates the
    constraints of the model GPU architecture (e.g. ``m_r`` not a
    multiple of the vector width, shared-memory tile exceeding
    ``N_shared``) or when the planner cannot satisfy Eq. 4-7 of the
    paper for the requested device/problem combination.
    """


class DeviceError(ReproError, RuntimeError):
    """A simulated device-stack operation failed."""


class AllocationError(DeviceError):
    """A buffer allocation exceeded device limits.

    Mirrors ``CL_MEM_OBJECT_ALLOCATION_FAILURE`` /
    ``CL_DEVICE_MAX_MEM_ALLOC_SIZE`` violations in a real OpenCL stack.
    """


class KernelLaunchError(DeviceError):
    """A kernel was enqueued with an invalid launch configuration."""


class PackingError(ReproError, ValueError):
    """SNP data could not be packed into bitvectors."""


class DatasetError(ReproError, ValueError):
    """A genetics dataset is malformed or inconsistent."""


class ModelError(ReproError, ValueError):
    """The analytical performance model was queried inconsistently."""
