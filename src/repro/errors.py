"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so applications can catch the whole family with a
single ``except`` clause while still distinguishing sub-categories.

The hierarchy mirrors the major subsystems:

* :class:`ConfigurationError` -- invalid kernel/framework configuration
  (bad ``m_c``/``n_r`` values, impossible core grids, ...).
* :class:`DeviceError` -- simulated OpenCL device stack failures
  (allocation beyond global memory, use of released buffers, queue
  misuse, ...).
* :class:`PackingError` -- SNP bit-packing problems (shape mismatches,
  non-binary input, overflow of padding constraints).
* :class:`DatasetError` -- genetics substrate problems (inconsistent
  sample/site counts, malformed files).
* :class:`ModelError` -- analytical performance-model failures
  (unknown instruction, unsatisfiable bottleneck query).

Two :class:`DeviceError` subclasses belong to the fault-tolerance
layer (:mod:`repro.resilience`):

* :class:`FaultInjectedError` -- a *simulated* fault fired by the
  deterministic fault injector at an instrumented hook point (kernel
  launch, allocation, device loss, shard execution).  It carries the
  fault ``kind`` and ``target`` so the error classifier
  (:func:`repro.resilience.retry.classify`) can map it to a
  retryable / degradable / fatal disposition.
* :class:`ShardExecutionError` -- a shard (or a whole partitioned
  run) exhausted its retry budget with no recovery path left; raised
  instead of ever returning a possibly-corrupt result.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DeviceError",
    "AllocationError",
    "KernelLaunchError",
    "FaultInjectedError",
    "ShardExecutionError",
    "PackingError",
    "DatasetError",
    "IntegrityError",
    "ModelError",
    "DeadlineExceededError",
    "OverloadedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid software configuration was supplied or derived.

    Raised when a :class:`~repro.core.config.KernelConfig` violates the
    constraints of the model GPU architecture (e.g. ``m_r`` not a
    multiple of the vector width, shared-memory tile exceeding
    ``N_shared``) or when the planner cannot satisfy Eq. 4-7 of the
    paper for the requested device/problem combination.
    """


class DeviceError(ReproError, RuntimeError):
    """A simulated device-stack operation failed."""


class AllocationError(DeviceError):
    """A buffer allocation exceeded device limits.

    Mirrors ``CL_MEM_OBJECT_ALLOCATION_FAILURE`` /
    ``CL_DEVICE_MAX_MEM_ALLOC_SIZE`` violations in a real OpenCL stack.
    """


class KernelLaunchError(DeviceError):
    """A kernel was enqueued with an invalid launch configuration."""


class FaultInjectedError(DeviceError):
    """A simulated fault fired by the deterministic fault injector.

    Parameters
    ----------
    message:
        Human-readable description of the injected fault.
    kind:
        The fault kind (``"kernel"``, ``"alloc"``, ``"device"``,
        ``"shard"``, ``"slow"``); the classifier keys its disposition
        off this.
    target:
        The hook-point target the fault fired at (launch ordinal,
        shard id, device index), when known.
    attempt:
        The attempt number the fault fired on (0 = first try).
    """

    def __init__(
        self,
        message: str,
        kind: str = "fault",
        target: int | None = None,
        attempt: int = 0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.target = target
        self.attempt = attempt


class ShardExecutionError(DeviceError):
    """A shard (or partitioned run) failed beyond recovery.

    Raised when the retry budget is exhausted and no degradation path
    (quarantine recompute, device re-partition) remains -- the
    resilience layer's guarantee is that corrupt or partial results
    are never returned silently.
    """

    def __init__(self, message: str, shard_id: int | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class PackingError(ReproError, ValueError):
    """SNP data could not be packed into bitvectors."""


class DatasetError(ReproError, ValueError):
    """A genetics dataset is malformed or inconsistent."""


class IntegrityError(DatasetError):
    """On-disk data failed a checksum or structural integrity check.

    Raised by the ``.snpbin`` reader when a per-chunk CRC or the header
    CRC does not match the stored value -- the serving stack's
    guarantee is that a flipped bit on disk becomes a loud error, never
    a confidently wrong top-k answer.  Classified FATAL by the retry
    layer (a bit flip does not heal on retry); the fsck path
    quarantines the shard instead.
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        chunk: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.chunk = chunk


class ModelError(ReproError, ValueError):
    """The analytical performance model was queried inconsistently."""


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline expired before (or while) it was served.

    Carries how far past the deadline the check happened
    (``overrun_s``; ``0.0`` when rejected exactly at expiry) so
    callers and tests can assert bounded overrun.  Classified FATAL by
    the retry layer: the budget belongs to the client, retrying on the
    server only wastes more of it.
    """

    def __init__(self, message: str, overrun_s: float = 0.0) -> None:
        super().__init__(message)
        self.overrun_s = overrun_s


class OverloadedError(ReproError, RuntimeError):
    """The service shed this request instead of queuing it unboundedly.

    Parameters
    ----------
    message:
        Human-readable description.
    retry_after_ms:
        Hint for when the client should retry (milliseconds); derived
        from the batcher window and current queue depth.
    reason:
        Machine-readable shed reason: ``"queue_full"``,
        ``"breaker_open"`` or ``"shutting_down"``.
    """

    def __init__(
        self,
        message: str,
        retry_after_ms: int = 0,
        reason: str = "queue_full",
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.reason = reason
