"""Operand preparation: bit packing and padding for the device kernels.

This is the host-side "pack" stage of Fig. 2: binary SNP matrices are
converted into padded bitvector matrices in the device's word width.
Rows are zero-padded up to a multiple of the register tile ``m_r`` (so
micro-tiles divide evenly); the site dimension is zero-padded to a
whole number of words.

Padding is semantically neutral for every kernel *within the valid
output region*; rows added by padding produce extra output rows/columns
that :func:`crop_result` removes.  For mixture analysis with a
pre-negated database the padding interacts with the negation (padding
words of the negated operand must be the negation of zero), which
:func:`pack_operand` handles via ``negate=True`` -- it negates the
*data* bits only and leaves padding bits zero, exactly what storing a
pre-negated database does to bits that do not exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PackingError
from repro.observability.counters import PACK_BYTES, PACK_OPERANDS
from repro.observability.tracer import get_tracer
from repro.util.bitops import pack_bits

__all__ = ["PackedOperand", "pack_operand", "crop_result"]


@dataclass(frozen=True)
class PackedOperand:
    """A device-ready packed matrix plus its logical extents.

    Attributes
    ----------
    words:
        ``(padded_rows, k_words)`` packed matrix.
    n_rows:
        Valid (unpadded) row count.
    n_bits:
        Valid site count.
    negated:
        Whether the data bits were negated during packing (pre-negated
        mixture databases, Section II-C).
    """

    words: np.ndarray
    n_rows: int
    n_bits: int
    negated: bool = False

    @property
    def padded_rows(self) -> int:
        return int(self.words.shape[0])

    @property
    def k_words(self) -> int:
        return int(self.words.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)


def pack_operand(
    bits: np.ndarray,
    word_bits: int = 32,
    row_multiple: int = 1,
    negate: bool = False,
) -> PackedOperand:
    """Pack a binary matrix for the device.

    Parameters
    ----------
    bits:
        ``(rows, sites)`` binary matrix.
    word_bits:
        Device word width (32 for all modeled GPUs, 64 for the CPU).
    row_multiple:
        Pad the row count up to a multiple of this (typically ``m_r``).
    negate:
        Negate the *data* bits before packing (pre-negated mixture
        database).  Padding bits stay zero.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise PackingError(f"pack_operand: expected 2-D bits, got ndim={arr.ndim}")
    if row_multiple <= 0:
        raise PackingError("pack_operand: row_multiple must be positive")
    n_rows, n_bits = arr.shape
    obs = get_tracer()
    with obs.span("pack.operand", rows=n_rows, bits=n_bits, negate=negate):
        if negate:
            if arr.dtype != np.bool_ and arr.size and not np.isin(arr, (0, 1)).all():
                raise PackingError("pack_operand: input must be binary to negate")
            arr = 1 - arr.astype(np.uint8)
        padded_rows = -(-max(n_rows, 1) // row_multiple) * row_multiple
        if padded_rows != n_rows:
            pad = np.zeros((padded_rows - n_rows, n_bits), dtype=np.uint8)
            arr = np.vstack([np.asarray(arr, dtype=np.uint8), pad])
        words = pack_bits(arr, word_bits=word_bits)
    obs.counters.add(PACK_OPERANDS)
    obs.counters.add(PACK_BYTES, int(words.nbytes))
    return PackedOperand(words=words, n_rows=n_rows, n_bits=n_bits, negated=negate)


def crop_result(
    table: np.ndarray, a: PackedOperand, b: PackedOperand
) -> np.ndarray:
    """Remove padding rows/columns from a raw device output table."""
    t = np.asarray(table)
    if t.ndim != 2:
        raise PackingError(f"crop_result: expected 2-D table, got ndim={t.ndim}")
    if t.shape[0] < a.n_rows or t.shape[1] < b.n_rows:
        raise PackingError(
            f"crop_result: table {t.shape} smaller than valid region "
            f"({a.n_rows}, {b.n_rows})"
        )
    return t[: a.n_rows, : b.n_rows].copy()
