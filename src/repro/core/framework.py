"""The portable SNP-comparison framework: the paper's headline artifact.

:class:`SNPComparisonFramework` ties the stack together the way the
OpenCL implementation does:

1. select a device (by name or architecture object),
2. derive the software configuration from its hardware features
   (:mod:`repro.core.planner`; users "only identify the hardware
   features of the GPU"),
3. compile the parameterized kernel against the device,
4. pack the binary operands into padded device bitvectors,
5. run the tiled, double-buffered transfer/compute/read pipeline,
6. crop padding and return the comparison table plus an itemized
   :class:`~repro.core.profiles.RunReport`.

The same object also answers "what would the CPU baseline take"
(:meth:`cpu_reference_seconds`) so callers can reproduce the paper's
end-to-end comparisons directly.
"""

from __future__ import annotations

import numpy as np

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm, KernelConfig
from repro.core.packing import PackedOperand, crop_result, pack_operand
from repro.core.pipeline import run_pipeline
from repro.core.planner import derive_config
from repro.core.profiles import RunReport
from repro.cpu.timing import CPUTimingModel
from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture, get_gpu
from repro.gpu.device import CommandQueue, Context, Device
from repro.gpu.kernel import SnpKernel
from repro.kernels import get_backend
from repro.observability.counters import SIM_DEVICE_SECONDS
from repro.observability.report import MetricsReport
from repro.observability.tracer import get_tracer
from repro.resilience.report import ResilienceReport
from repro.resilience.runtime import get_resilience

__all__ = ["SNPComparisonFramework"]


class SNPComparisonFramework:
    """End-to-end driver for one (device, algorithm) pair.

    Parameters
    ----------
    device:
        Device name (``"GTX 980"``, ``"Titan V"``, ``"Vega 64"``, or a
        microarchitecture alias) or a :class:`GPUArchitecture`.
    algorithm:
        Which comparison to run; decides the micro-kernel and the
        core-grid tuning.
    config:
        Explicit configuration override; default derives it from the
        device's hardware features (published Table II tunings for the
        evaluation devices).
    prenegate:
        Mixture analysis only: force (or forbid) the pre-negated
        database variant; default follows the device's fused-AND-NOT
        support (Section VI-E1).
    double_buffering:
        Overlap transfers with compute (the paper's default); disable
        for the ablation comparison.
    workers:
        Host threads for the functional compute.  ``workers > 1``
        shards each kernel launch across the process-wide pool
        (:mod:`repro.parallel`); results stay bit-exact and the
        simulated device timing is unchanged.  Default (``None``)
        keeps the serial functional path.
    gram:
        Allow Gram mode: single-tile self-comparisons with a symmetric
        op compute only the upper triangle and mirror the rest (see
        ``docs/PERF.md``).  ``False`` forces the full-output path
        (useful for benchmarking the symmetry win).
    strategy:
        Host shard strategy: ``"auto"`` (consults the persisted host
        tuning cache), ``"gemm"``, or ``"blocked"``.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`) for the functional
        tables: ``"auto"`` (``REPRO_BACKEND`` env, then the tuner's
        per-machine winner, then the reference backend) or an explicit
        registered name such as ``"numpy"`` or ``"numba"``.
    """

    def __init__(
        self,
        device: str | GPUArchitecture,
        algorithm: Algorithm | str = Algorithm.LD,
        config: KernelConfig | None = None,
        prenegate: bool | None = None,
        double_buffering: bool = True,
        workers: int | None = None,
        gram: bool = True,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
    ) -> None:
        self.arch = get_gpu(device) if isinstance(device, str) else device
        self.algorithm = (
            Algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        )
        self.prenegate = prenegate
        self.double_buffering = double_buffering
        self.workers = workers
        self.gram = gram
        self.strategy = strategy
        if backend != "auto":
            get_backend(backend)  # unknown names fail at construction
        self.backend = backend
        self.executor = executor
        self.config = config or derive_config(
            self.arch, self.algorithm, prenegate=prenegate
        )
        if self.config.n_cores > self.arch.n_c:
            raise ConfigurationError(
                f"SNPComparisonFramework: configuration uses "
                f"{self.config.n_cores} cores, device has {self.arch.n_c}"
            )
        self.kernel = SnpKernel.compile(
            self.arch,
            self.config.op,
            m_c=self.config.m_c,
            m_r=self.config.m_r,
            k_c=self.config.k_c,
            n_r=self.config.n_r,
            grid_rows=self.config.grid_rows,
            grid_cols=self.config.grid_cols,
        )
        self._cpu_model = CPUTimingModel()
        #: Command queue of the most recent :meth:`run_packed`; the CLI
        #: uses it to export the simulated device lanes alongside host
        #: spans in one merged Chrome trace.
        self.last_queue: CommandQueue | None = None

    # -- operand preparation --------------------------------------------------

    def pack(self, bits: np.ndarray, negate: bool = False) -> PackedOperand:
        """Pack a binary matrix for this framework's device."""
        return pack_operand(
            bits,
            word_bits=self.arch.word_bits,
            row_multiple=self.config.m_r,
            negate=negate,
        )

    @property
    def database_needs_prenegation(self) -> bool:
        """Whether the right operand must be packed negated."""
        return self.config.op is ComparisonOp.AND_PRENEGATED

    # -- execution --------------------------------------------------------------

    def run(
        self,
        a_bits: np.ndarray,
        b_bits: np.ndarray | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """Compare ``a_bits`` rows against ``b_bits`` rows (binary matrices).

        ``b_bits=None`` compares ``a_bits`` against itself (the LD
        case).  Mixture pre-negation is applied automatically to the
        right operand when the configuration calls for it.
        """
        # Widen the metrics window over packing too: ``run_packed``
        # scopes its own capture, so re-derive the delta from before the
        # operands were packed and overwrite the narrower report.
        obs = get_tracer()
        counters_before = obs.counters.snapshot() if obs.enabled else None
        spans_before = obs.n_spans()
        a_arr = np.asarray(a_bits)
        a = self.pack(a_arr)
        # Passing the same matrix for both operands is a self-comparison
        # too; folding it onto the b_bits=None path keeps the packed
        # operands identical, which is what Gram-mode detection keys on.
        if b_bits is not None and np.asarray(b_bits) is a_arr:
            b_bits = None
        if b_bits is None:
            b = (
                self.pack(a_arr, negate=True)
                if self.database_needs_prenegation
                else a
            )
        else:
            b = self.pack(
                np.asarray(b_bits), negate=self.database_needs_prenegation
            )
        if a.n_bits != b.n_bits:
            raise ConfigurationError(
                f"run: operands cover different site counts "
                f"({a.n_bits} vs {b.n_bits})"
            )
        table, report = self.run_packed(a, b)
        if obs.enabled:
            report.metrics = MetricsReport.from_delta(
                obs, counters_before, spans_before
            )
        return table, report

    def run_packed(
        self, a: PackedOperand, b: PackedOperand
    ) -> tuple[np.ndarray, RunReport]:
        """Run with pre-packed operands; returns (cropped table, report)."""
        obs = get_tracer()
        res = get_resilience()
        counters_before = obs.counters.snapshot() if obs.enabled else None
        spans_before = obs.n_spans()
        events_before = res.injector.n_fired()
        with obs.span(
            "framework.run",
            device=self.arch.name,
            algorithm=self.algorithm.value,
            m=a.n_rows,
            n=b.n_rows,
            k_bits=a.n_bits,
        ):
            device = Device(self.arch)
            context: Context = device.create_context()
            queue = context.create_queue()
            self.last_queue = queue

            raw, profiles, plan = run_pipeline(
                queue,
                self.kernel,
                a,
                b,
                double_buffering=self.double_buffering,
                workers=self.workers,
                symmetric=None if self.gram else False,
                strategy=self.strategy,
                backend=self.backend,
                executor=self.executor,
            )
            end_to_end = queue.finish()
            busy = queue.busy_summary()
        obs.counters.add(SIM_DEVICE_SECONDS, end_to_end)

        report = RunReport(
            device=self.arch.name,
            algorithm=self.algorithm.value,
            m=a.n_rows,
            n=b.n_rows,
            k_bits=a.n_bits,
            init_s=context.ready_at,
            h2d_s=busy["h2d"],
            kernel_s=busy["compute"],
            d2h_s=busy["d2h"],
            end_to_end_s=end_to_end,
            n_kernel_launches=len(profiles),
            n_tiles=plan.n_tiles,
            kernel_profiles=profiles,
        )
        if obs.enabled:
            report.metrics = MetricsReport.from_delta(
                obs, counters_before, spans_before
            )
        if res.active:
            events = tuple(res.injector.fired()[events_before:])
            engine_totals = ResilienceReport.combine(
                p.parallel.resilience
                for p in profiles
                if p.parallel is not None and p.parallel.resilience is not None
            )
            # Process-executor runs ship injector events fired inside
            # worker processes (plus synthesized worker-lost records);
            # the engine absorbs them into this process's injector log
            # under an active context, so one slice covers thread,
            # serial and process runs alike.
            report.resilience = ResilienceReport(
                faults_injected=len(events),
                retries=engine_totals.retries
                + sum(p.retries for p in profiles),
                quarantined=engine_totals.quarantined,
                tiles_verified=engine_totals.tiles_verified,
                verify_mismatches=engine_totals.verify_mismatches,
                workers_lost=engine_totals.workers_lost,
                events=events,
            )
        return crop_result(raw, a, b), report

    # -- baselines ---------------------------------------------------------------

    def cpu_reference_seconds(self, m: int, n: int, k_bits: int) -> float:
        """Modeled CPU-baseline time for the same problem (Fig. 6 line)."""
        return self._cpu_model.execution_time(m, n, k_bits)

    def __repr__(self) -> str:
        workers = f", workers={self.workers}" if self.workers else ""
        gram = "" if self.gram else ", gram=False"
        strategy = "" if self.strategy == "auto" else f", strategy={self.strategy!r}"
        backend = "" if self.backend == "auto" else f", backend={self.backend!r}"
        executor = (
            "" if self.executor == "auto" else f", executor={self.executor!r}"
        )
        return (
            f"SNPComparisonFramework(device={self.arch.name!r}, "
            f"algorithm={self.algorithm.value!r}, op={self.config.op.value!r}, "
            f"grid={self.config.grid_rows}x{self.config.grid_cols}"
            f"{workers}{gram}{strategy}{backend}{executor})"
        )
