"""The paper's primary contribution: the portable SNP-comparison framework.

Public surface:

* :class:`~repro.core.framework.SNPComparisonFramework` -- the
  end-to-end driver (device selection, analytic configuration,
  packing, double-buffered execution).
* :func:`~repro.core.ld.linkage_disequilibrium`,
  :func:`~repro.core.identity.identity_search`,
  :func:`~repro.core.mixture.mixture_analysis` -- the three
  application APIs (Section II).
* :mod:`repro.core.planner` -- the hardware-features -> software-
  parameters derivation (Section V-A, Eqs. 4-7, Table II).
* :mod:`repro.core.config` -- :class:`KernelConfig` and the C-header
  emission.
"""

from repro.core.config import Algorithm, KernelConfig, render_header
from repro.core.framework import SNPComparisonFramework
from repro.core.identity import IdentityResult, identity_search
from repro.core.ld import LDResult, linkage_disequilibrium
from repro.core.mixture import MixtureResult, mixture_analysis
from repro.core.packing import PackedOperand, crop_result, pack_operand
from repro.core.planner import (
    ProblemShape,
    derive_config,
    published_config,
    PUBLISHED_CONFIGS,
)
from repro.core.profiles import RunReport

__all__ = [
    "Algorithm",
    "KernelConfig",
    "render_header",
    "SNPComparisonFramework",
    "IdentityResult",
    "identity_search",
    "LDResult",
    "linkage_disequilibrium",
    "MixtureResult",
    "mixture_analysis",
    "PackedOperand",
    "crop_result",
    "pack_operand",
    "ProblemShape",
    "derive_config",
    "published_config",
    "PUBLISHED_CONFIGS",
    "RunReport",
]
