"""Tiling and double buffering for problems beyond device memory.

Section VI-E2: "For GPUs that do not support matrices of the size
required by the database or resulting output matrix (e.g. the GTX 980),
the problem must be broken down into smaller tile sizes.  This can be
done naturally due to the tiling approach taken in our framework.  Even
for GPUs that can fit the entire database ... double buffering input
and output tiles allows some of the data transfer to be overlapped with
computation."

The pipeline tiles the *N* dimension (database rows -- the dimension
with unbounded growth in both applications) into chunks whose B tile
and C tile fit device memory twice over (two in-flight copies each:
that is the double buffer), plus the resident A operand:

    A + 2 * (B_tile + C_tile)  <=  budget

Each chunk runs ``write B_i -> kernel_i -> read C_i`` with dependencies
expressed through events; the H2D engine, compute engine and D2H engine
then overlap adjacent chunks exactly as the real double-buffered queue
would.  With ``double_buffering=False`` every stage additionally waits
for the previous chunk's read-back, serializing the pipeline -- the
ablation bench's baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blis.blocking import tile_ranges
from repro.blis.gemm import same_operand
from repro.core.packing import PackedOperand
from repro.errors import AllocationError, ConfigurationError
from repro.gpu.device import Buffer, CommandQueue, Context
from repro.gpu.executor import KernelProfile
from repro.gpu.kernel import SnpKernel
from repro.gpu.event import Event
from repro.observability.tracer import get_tracer
from repro.resilience.retry import call_with_retry
from repro.resilience.runtime import get_resilience

__all__ = ["TilePlan", "plan_tiles", "run_pipeline"]

#: Fraction of global memory the pipeline allows itself (headroom for
#: runtime allocations the real driver makes).
_MEMORY_FILL_FRACTION = 0.90

#: Result element size: the accumulators are 32-bit on device; we
#: account 4 bytes per output cell for transfer sizing even though the
#: functional path returns int64 host-side.
_RESULT_BYTES = 4


@dataclass(frozen=True)
class TilePlan:
    """How one problem is chopped along the database (N) dimension."""

    n_total: int
    tile_rows: int
    ranges: tuple[tuple[int, int], ...]

    @property
    def n_tiles(self) -> int:
        return len(self.ranges)


def plan_tiles(
    context: Context,
    kernel: SnpKernel,
    a: PackedOperand,
    b: PackedOperand,
) -> TilePlan:
    """Choose the N-dimension tiling that fits device memory.

    Honors the per-buffer max-allocation limit and total global memory
    (with double-buffer duplication).  Raises
    :class:`~repro.errors.AllocationError` when even a minimal tile
    cannot fit.
    """
    arch = context.device.arch
    word_bytes = arch.word_bytes
    k = b.k_words
    m_padded = a.padded_rows

    budget = int(arch.global_memory_bytes * _MEMORY_FILL_FRACTION)
    a_bytes = a.nbytes
    per_row = k * word_bytes + m_padded * _RESULT_BYTES  # B row + C column
    available = budget - a_bytes
    if available <= 0:
        raise AllocationError(
            f"plan_tiles: operand A ({a_bytes} bytes) alone exceeds the "
            f"memory budget on {arch.name}"
        )
    rows_by_total = available // (2 * per_row)
    # Per-buffer cap: both the B tile and the C tile must individually
    # respect CL_DEVICE_MAX_MEM_ALLOC_SIZE.
    rows_by_b = arch.max_alloc_bytes // (k * word_bytes)
    rows_by_c = arch.max_alloc_bytes // max(1, m_padded * _RESULT_BYTES)
    tile_rows = int(min(rows_by_total, rows_by_b, rows_by_c))
    # Keep tiles aligned to the kernel's n_r so micro-tiles stay whole.
    if tile_rows >= kernel.n_r:
        tile_rows = tile_rows // kernel.n_r * kernel.n_r
    if tile_rows <= 0:
        raise AllocationError(
            f"plan_tiles: cannot fit any tile of the {b.padded_rows}-row "
            f"database on {arch.name} (k={k} words, m={m_padded})"
        )
    tile_rows = min(tile_rows, b.padded_rows)
    ranges = tuple(tile_ranges(b.padded_rows, tile_rows))
    return TilePlan(n_total=b.padded_rows, tile_rows=tile_rows, ranges=ranges)


def run_pipeline(
    queue: CommandQueue,
    kernel: SnpKernel,
    a: PackedOperand,
    b: PackedOperand,
    plan: TilePlan | None = None,
    double_buffering: bool = True,
    workers: int | None = None,
    symmetric: bool | None = None,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> tuple[np.ndarray, list[KernelProfile], TilePlan]:
    """Execute the tiled comparison; returns (raw table, profiles, plan).

    The returned table is *uncropped* (padded extents); callers crop
    with :func:`repro.core.packing.crop_result`.  ``workers > 1``
    computes each tile's functional table on the sharded host engine
    (:mod:`repro.parallel`); simulated device timing is unchanged.

    ``symmetric=None`` auto-detects Gram mode: when both operands are
    the same packed matrix, the op is symmetric, and the whole
    database fits one tile (multi-tile launches compare *different*
    row ranges, so per-tile outputs are not symmetric), the kernel is
    launched with the Gram hint and computes only the upper triangle.
    ``False`` disables the hint; ``True`` requires eligibility and
    raises otherwise.  ``strategy`` selects the host shard strategy,
    ``backend`` the kernel-ABI backend (:mod:`repro.kernels`), and
    ``executor`` the shard executor (thread pool or worker processes,
    :mod:`repro.parallel.procpool`) for each tile's functional
    table.
    """
    context = queue.context
    arch = context.device.arch
    if kernel.arch is not arch:
        raise ConfigurationError(
            f"run_pipeline: kernel compiled for {kernel.arch.name}, queue on "
            f"{arch.name}"
        )
    if plan is None:
        plan = plan_tiles(context, kernel, a, b)

    gram_eligible = (
        kernel.op.is_symmetric
        and same_operand(a.words, b.words)
        and plan.n_tiles == 1
        and a.padded_rows == plan.n_total
    )
    if symmetric is None:
        symmetric = gram_eligible
    elif symmetric and not gram_eligible:
        raise ConfigurationError(
            "run_pipeline: symmetric=True requires a single-tile "
            "self-comparison with a symmetric op"
        )

    word_bytes = arch.word_bytes
    m_padded = a.padded_rows
    out = np.zeros((m_padded, plan.n_total), dtype=np.int64)
    profiles: list[KernelProfile] = []

    obs = get_tracer()
    res = get_resilience()

    def _alloc(n_bytes: int, label: str) -> Buffer:
        # Allocation failures (injected ``alloc`` faults or real
        # AllocationError memory pressure) are retried under the
        # active resilience policy; the one-attempt default makes
        # this a plain create_buffer call.
        return call_with_retry(
            lambda: context.create_buffer(n_bytes, label=label), res.policy
        )

    with obs.span(
        "pipeline.run",
        device=arch.name,
        n_tiles=plan.n_tiles,
        double_buffering=double_buffering,
    ):
        # Resident A upload.
        a_buf = _alloc(a.nbytes, label="A")
        a_event = queue.enqueue_write_buffer(a_buf, a.words, label="write:A")

        # Double-buffered B/C rotation (two slots each).
        n_slots = 2 if double_buffering and plan.n_tiles > 1 else 1
        b_bufs = [
            _alloc(plan.tile_rows * b.k_words * word_bytes, label=f"B{i}")
            for i in range(n_slots)
        ]
        c_bufs = [
            _alloc(m_padded * plan.tile_rows * _RESULT_BYTES, label=f"C{i}")
            for i in range(n_slots)
        ]
        # Last events occupying each slot (must complete before reuse).
        slot_free: list[list[Event]] = [[] for _ in range(n_slots)]
        prev_read: Event | None = None

        for tile_idx, (n0, n1) in enumerate(plan.ranges):
            slot = tile_idx % n_slots
            with obs.span("pipeline.tile", tile=tile_idx, n0=n0, n1=n1):
                b_tile = np.ascontiguousarray(b.words[n0:n1])
                deps: list[Event] = list(slot_free[slot])
                if not double_buffering and prev_read is not None:
                    deps.append(prev_read)
                write_ev = queue.enqueue_write_buffer(
                    b_bufs[slot], b_tile, wait_for=deps, label=f"write:B[{tile_idx}]"
                )
                kernel_ev, profile = queue.enqueue_kernel(
                    kernel,
                    a_buf,
                    b_bufs[slot],
                    c_bufs[slot],
                    wait_for=[a_event, write_ev],
                    label=f"kernel[{tile_idx}]",
                    workers=workers,
                    symmetric=symmetric,
                    strategy=strategy,
                    backend=backend,
                    executor=executor,
                )
                profiles.append(profile)
                tile_out, read_ev = queue.enqueue_read_buffer(
                    c_bufs[slot], wait_for=[kernel_ev], label=f"read:C[{tile_idx}]"
                )
                out[:, n0:n1] = tile_out
                slot_free[slot] = [read_ev]
                prev_read = read_ev

        for buf in [a_buf, *b_bufs, *c_bufs]:
            buf.release()
    return out, profiles, plan
