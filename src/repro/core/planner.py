"""The analytical planner: hardware features -> software configuration.

Implements Section V-A of the paper: "Users of the framework are
expected to only identify the hardware features of the GPU"; the
formulas do the rest.

Derivation implemented here:

* ``m_r = N_vec``                                         (Eq. 4)
* ``m_c = N_b``  -- the tile height of the published configurations
  (Table II); the paper's Eq. 5 text (``N_b / N_cl``) describes the
  per-cluster conflict-free access width, see DESIGN.md Section 4.
* ``k_c = usable_shared / (word_bytes * N_b)``            (Eq. 6),
  where *usable* subtracts NVIDIA's OpenCL shared-memory reservation
  (Section V-E) -- this is exactly why Table II shows 383 rather than
  384 on the NVIDIA parts.
* ``n_r >= (N_T * m_r / m_c) * N_vec * L_fn``             (Eq. 7).
  Eq. 7 is a *lower bound*; the upper bound is register pressure, and
  the published values are empirically tuned within that corridor.
  For the three evaluation devices the planner returns the published
  tuning (and asserts it sits inside the analytic corridor); for other
  devices it picks the largest ``L_fn``-divisible multiple of the
  bound that keeps the per-thread accumulator block within the
  register budget.
* **Core grid** (Section IV-C): "the distribution of GPU cores between
  the second and third loop is left as a parameter since different
  problems may require different distribution".  FastID problems put
  every core on the database dimension (``1 x N_c``); LD grids follow
  the published tuning, with a near-square fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm, KernelConfig
from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import min_n_r

__all__ = [
    "ProblemShape",
    "derive_m_r",
    "derive_m_c",
    "derive_k_c",
    "n_r_lower_bound",
    "n_r_register_cap",
    "derive_n_r",
    "derive_core_grid",
    "derive_config",
    "published_config",
    "PUBLISHED_CONFIGS",
]


@dataclass(frozen=True)
class ProblemShape:
    """Extents of one comparison problem.

    ``m``: rows of the query/left operand (SNP strings for LD, queries
    for FastID); ``n``: rows of the right operand (same strings for
    LD, database profiles for FastID); ``k_bits``: SNP sites.
    """

    m: int
    n: int
    k_bits: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k_bits) <= 0:
            raise ConfigurationError(
                f"ProblemShape: extents must be positive, got "
                f"({self.m}, {self.n}, {self.k_bits})"
            )


def derive_m_r(arch: GPUArchitecture) -> int:
    """Eq. 4: the micro-tile height equals the vector load width."""
    return arch.n_vec


def derive_m_c(arch: GPUArchitecture) -> int:
    """Tile height staged in shared memory: the bank count (Table II)."""
    return arch.shared_memory_banks


def derive_k_c(arch: GPUArchitecture) -> int:
    """Eq. 6 with the Section V-E shared-memory reservation applied."""
    return arch.usable_shared_memory_bytes // (arch.word_bytes * arch.shared_memory_banks)


def n_r_lower_bound(arch: GPUArchitecture) -> int:
    """Eq. 7's latency-hiding lower bound for the derived m_r/m_c."""
    return min_n_r(arch, derive_m_r(arch), derive_m_c(arch))


def n_r_register_cap(arch: GPUArchitecture, accumulator_budget: int = 48) -> int:
    """Largest ``n_r`` keeping per-thread accumulators within budget.

    Each thread holds ``m_r * n_r / (L_fn * N_T)`` accumulators; the
    budget is the smaller of the occupancy-derived register share and
    the ISA per-thread maximum, minus a fixed overhead, additionally
    capped by ``accumulator_budget`` (beyond ~48 accumulators the
    compilers observed by the paper start spilling regardless).
    """
    m_r = derive_m_r(arch)
    budget = min(arch.registers_per_thread(), arch.max_registers_per_thread) - 16
    budget = min(budget, accumulator_budget)
    if budget <= 0:
        raise ConfigurationError(
            f"n_r_register_cap: no register headroom on {arch.name}"
        )
    return budget * arch.l_fn * arch.n_t // m_r


def derive_n_r(arch: GPUArchitecture) -> int:
    """Analytic ``n_r``: largest bound-multiple under the register cap."""
    lower = n_r_lower_bound(arch)
    cap = n_r_register_cap(arch)
    if cap < lower:
        raise ConfigurationError(
            f"derive_n_r: register cap {cap} below Eq. 7 bound {lower} on "
            f"{arch.name} -- the device cannot hide latency at this blocking"
        )
    multiples = cap // lower
    return lower * multiples


def derive_core_grid(
    arch: GPUArchitecture, algorithm: Algorithm, problem: ProblemShape | None = None
) -> tuple[int, int]:
    """Core-grid distribution heuristic (Section IV-C fallback).

    FastID problems have all their parallelism in the database
    dimension -> ``1 x N_c``.  LD problems get the most-square
    factorization of ``N_c`` (published LD grids override this via
    :func:`published_config`).
    """
    if algorithm in (Algorithm.FASTID_IDENTITY, Algorithm.FASTID_MIXTURE):
        return (1, arch.n_c)
    if problem is not None and problem.m <= derive_m_c(arch):
        # Degenerate M: behave like FastID.
        return (1, arch.n_c)
    best = (1, arch.n_c)
    best_gap = arch.n_c
    for rows in range(1, arch.n_c + 1):
        if arch.n_c % rows:
            continue
        cols = arch.n_c // rows
        gap = abs(rows - cols)
        if gap < best_gap:
            best, best_gap = (rows, cols), gap
    return best


#: Table II verbatim: the paper's tuned configurations.
#: Keys: (device name, algorithm).  Values: (n_r, grid_rows, grid_cols).
PUBLISHED_CONFIGS: dict[tuple[str, Algorithm], tuple[int, int, int]] = {
    ("GTX 980", Algorithm.LD): (384, 4, 4),
    ("Titan V", Algorithm.LD): (1024, 80, 1),
    ("Vega 64", Algorithm.LD): (1024, 32, 2),
    ("GTX 980", Algorithm.FASTID_IDENTITY): (768, 1, 16),
    ("Titan V", Algorithm.FASTID_IDENTITY): (1024, 1, 80),
    ("Vega 64", Algorithm.FASTID_IDENTITY): (1024, 1, 64),
    ("GTX 980", Algorithm.FASTID_MIXTURE): (768, 1, 16),
    ("Titan V", Algorithm.FASTID_MIXTURE): (1024, 1, 80),
    ("Vega 64", Algorithm.FASTID_MIXTURE): (1024, 1, 64),
}


def _select_op(arch: GPUArchitecture, algorithm: Algorithm, prenegate: bool | None) -> ComparisonOp:
    """Pick the mixture micro-kernel variant (Section VI-E1).

    With a fused AND-NOT (NVIDIA) the in-kernel negation is free, so
    the fused kernel is used.  Without one (Vega) the NOT costs a
    third ALU op on the bottleneck pipe; pre-negating the database
    recovers the LD-rate kernel.  ``prenegate`` forces the choice.
    """
    if algorithm is not Algorithm.FASTID_MIXTURE:
        return algorithm.default_op
    if prenegate is None:
        prenegate = not arch.has_fused_andnot
    return ComparisonOp.AND_PRENEGATED if prenegate else ComparisonOp.ANDNOT


def derive_config(
    arch: GPUArchitecture,
    algorithm: Algorithm,
    problem: ProblemShape | None = None,
    prenegate: bool | None = None,
    use_published: bool = True,
) -> KernelConfig:
    """Full configuration for ``algorithm`` on ``arch``.

    With ``use_published`` (default) the three evaluation devices get
    their Table II tunings; any other device -- or
    ``use_published=False`` -- takes the pure analytic derivation.
    The analytic corridor (Eq. 7 bound, register cap, shared-memory
    fit) is validated either way.
    """
    m_r = derive_m_r(arch)
    m_c = derive_m_c(arch)
    k_c = derive_k_c(arch)
    lower = n_r_lower_bound(arch)
    cap = n_r_register_cap(arch)

    published = PUBLISHED_CONFIGS.get((arch.name, algorithm)) if use_published else None
    if published is not None:
        n_r, grid_rows, grid_cols = published
    else:
        n_r = derive_n_r(arch)
        grid_rows, grid_cols = derive_core_grid(arch, algorithm, problem)

    if n_r < lower:
        raise ConfigurationError(
            f"derive_config: n_r={n_r} below Eq. 7 bound {lower} on {arch.name}"
        )
    if n_r > cap:
        raise ConfigurationError(
            f"derive_config: n_r={n_r} above register cap {cap} on {arch.name}"
        )
    return KernelConfig(
        device=arch.name,
        algorithm=algorithm,
        op=_select_op(arch, algorithm, prenegate),
        m_r=m_r,
        n_r=n_r,
        k_c=k_c,
        m_c=m_c,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
    )


def published_config(arch: GPUArchitecture, algorithm: Algorithm) -> KernelConfig:
    """The Table II configuration; raises for devices the paper lacks."""
    if (arch.name, algorithm) not in PUBLISHED_CONFIGS:
        raise ConfigurationError(
            f"published_config: no Table II entry for ({arch.name}, "
            f"{algorithm.value})"
        )
    return derive_config(arch, algorithm, use_published=True)
