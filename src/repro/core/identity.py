"""FastID identity-search application API (Section II-B).

Compares query profiles against a reference database with the XOR
micro-kernel: ``gamma = popcount(query XOR profile)`` counts the sites
where the two profiles differ.  "No set bits in the result signifies a
positive match"; small non-zero distances flag near matches (degraded
samples, genotyping error, close relatives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture
from repro.snp.forensic import ForensicDatabase

__all__ = ["IdentityResult", "identity_search"]


@dataclass
class IdentityResult:
    """Output of one identity search.

    Attributes
    ----------
    distances:
        XOR popcount distances, shape ``(n_queries, n_profiles)``.
    report:
        Framework performance report.
    """

    distances: np.ndarray
    report: RunReport

    def matches(self, max_distance: int = 0) -> list[tuple[int, int, int]]:
        """(query index, profile index, distance) for hits within threshold.

        Sorted by distance then query; ``max_distance=0`` returns exact
        matches only.
        """
        rows, cols = np.nonzero(self.distances <= max_distance)
        hits = [
            (int(q), int(p), int(self.distances[q, p])) for q, p in zip(rows, cols)
        ]
        hits.sort(key=lambda t: (t[2], t[0], t[1]))
        return hits

    def best_match(self, query_index: int) -> tuple[int, int]:
        """(profile index, distance) of the closest database entry."""
        row = self.distances[query_index]
        best = int(np.argmin(row))
        return best, int(row[best])


def identity_search(
    queries: np.ndarray,
    database: ForensicDatabase | np.ndarray,
    device: str | GPUArchitecture = "Titan V",
    framework: SNPComparisonFramework | None = None,
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> IdentityResult:
    """Search ``queries`` against ``database`` on the simulated GPU.

    Parameters
    ----------
    queries:
        Binary matrix ``(n_queries, n_sites)``.
    database:
        A :class:`~repro.snp.forensic.ForensicDatabase` or a raw binary
        matrix ``(n_profiles, n_sites)``.
    workers:
        Host threads for the functional compute (``> 1`` shards the
        bit-GEMM).  Ignored when ``framework`` is supplied.
    gram:
        Allow the symmetric (Gram) fast path when queries *are* the
        database (an all-pairs self-scan -- XOR is symmetric).
        Ignored when ``framework`` is supplied.
    strategy:
        Host shard strategy (``"auto"``/``"gemm"``/``"blocked"``).
        Ignored when ``framework`` is supplied.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`): ``"auto"`` or a
        registered name.  Ignored when ``framework`` is supplied.
    executor:
        Host shard executor (``"auto"``/``"thread"``/``"process"``).
        Ignored when ``framework`` is supplied.
    """
    q = np.asarray(queries)
    db = database.profiles if isinstance(database, ForensicDatabase) else np.asarray(database)
    if q.ndim != 2 or db.ndim != 2:
        raise DatasetError("identity_search: queries and database must be 2-D")
    if q.shape[1] != db.shape[1]:
        raise DatasetError(
            f"identity_search: site counts differ "
            f"({q.shape[1]} vs {db.shape[1]})"
        )
    if framework is None:
        framework = SNPComparisonFramework(
            device, Algorithm.FASTID_IDENTITY, workers=workers,
            gram=gram, strategy=strategy, backend=backend,
            executor=executor,
        )
    distances, report = framework.run(q, db)
    return IdentityResult(distances=distances, report=report)
