"""Performance reports: what one framework run measured.

The paper reports two classes of numbers (Section VI-A1): kernel
execution time from OpenCL event profiling, and end-to-end time (data
transfer + computation, including OpenCL initialization but excluding
kernel compilation).  :class:`RunReport` carries both, itemized, plus
the kernel cycle breakdowns for efficiency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.executor import KernelProfile
from repro.observability.report import MetricsReport
from repro.resilience.report import ResilienceReport
from repro.util.units import format_ops, format_percent, format_seconds

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Itemized timing of one end-to-end framework run (simulated).

    All times are simulated seconds.  ``end_to_end_s`` is the makespan
    from simulated time zero (context creation start) to the last
    read-back completing; because transfers and kernels overlap under
    double buffering, it is generally *less* than the sum of the parts.
    """

    device: str
    algorithm: str
    m: int
    n: int
    k_bits: int
    init_s: float = 0.0
    h2d_s: float = 0.0
    kernel_s: float = 0.0
    d2h_s: float = 0.0
    end_to_end_s: float = 0.0
    n_kernel_launches: int = 0
    n_tiles: int = 0
    kernel_profiles: list[KernelProfile] = field(default_factory=list)
    #: Observability capture scoped to this run; ``None`` when the
    #: process tracer was disabled (the default).
    metrics: MetricsReport | None = None
    #: Fault-tolerance accounting scoped to this run; ``None`` when no
    #: resilience context was active (the default).
    resilience: ResilienceReport | None = None

    @property
    def word_ops(self) -> int:
        """Total packed-word operations across all launches."""
        return sum(p.breakdown.word_ops for p in self.kernel_profiles)

    @property
    def kernel_throughput_word_ops(self) -> float:
        """Aggregate kernel throughput (word-ops per kernel second)."""
        return self.word_ops / self.kernel_s if self.kernel_s > 0 else 0.0

    @property
    def kernel_efficiency(self) -> float:
        """Ops-weighted mean kernel efficiency (fraction of pipe peak)."""
        total = self.word_ops
        if total == 0:
            return 0.0
        return sum(
            p.efficiency * p.breakdown.word_ops for p in self.kernel_profiles
        ) / total

    @property
    def overlap_s(self) -> float:
        """Time hidden by overlapping engines (sum of parts - makespan)."""
        serial = self.init_s + self.h2d_s + self.kernel_s + self.d2h_s
        return max(0.0, serial - self.end_to_end_s)

    def speedup_over(self, other_seconds: float) -> float:
        """``other / this`` end-to-end speedup factor."""
        if self.end_to_end_s <= 0:
            return float("inf")
        return other_seconds / self.end_to_end_s

    def summary_lines(self) -> list[str]:
        """Human-readable report block."""
        return [
            f"device        : {self.device}",
            f"algorithm     : {self.algorithm}",
            f"problem       : m={self.m} n={self.n} k_bits={self.k_bits}",
            f"tiles/launches: {self.n_tiles}/{self.n_kernel_launches}",
            f"init          : {format_seconds(self.init_s)}",
            f"h2d transfer  : {format_seconds(self.h2d_s)}",
            f"kernel        : {format_seconds(self.kernel_s)}"
            f"  ({format_ops(self.kernel_throughput_word_ops)},"
            f" {format_percent(self.kernel_efficiency)} of pipe peak)",
            f"d2h transfer  : {format_seconds(self.d2h_s)}",
            f"end-to-end    : {format_seconds(self.end_to_end_s)}"
            f"  (overlap hid {format_seconds(self.overlap_s)})",
        ]

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
