"""Linkage-disequilibrium application API (Section II-A).

Drives the framework with the AND micro-kernel and converts the raw
joint counts into the population-genetics statistics:

    D     = p_AB - p_A p_B
    D'    = D / D_max
    r^2   = D^2 / (p_A (1-p_A) p_B (1-p_B))

Orientation: classic LD compares *sites* across samples, so the
entities fed to the kernel are site rows (the transpose of a
sample-major :class:`~repro.snp.dataset.SNPDataset` matrix).  The
paper's Fig. 5/6 benchmarks compare "SNP strings" (sample rows); both
orientations are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture
from repro.snp.dataset import SNPDataset

__all__ = ["LDResult", "linkage_disequilibrium"]


@dataclass
class LDResult:
    """Output of one LD computation.

    Attributes
    ----------
    counts:
        Joint minor-allele counts (``p_AB * n_obs``), entities x entities.
    frequencies:
        Per-entity minor-allele frequency ``p_A``.
    n_observations:
        Number of observations the comparison ran over.
    report:
        Framework performance report.
    """

    counts: np.ndarray
    frequencies: np.ndarray
    n_observations: int
    report: RunReport

    def __post_init__(self) -> None:
        # The statistics divide by n_observations; a zero-column input
        # would otherwise surface as NaN tables plus a RuntimeWarning
        # the first time p_ab/d/d_prime/r_squared is read.  Entity-free
        # results (0 x 0 tables) stay constructible: every statistic is
        # an empty array and nothing divides.
        if self.n_observations < 0:
            raise DatasetError(
                f"LDResult: n_observations must be >= 0, "
                f"got {self.n_observations}"
            )
        if self.n_observations == 0 and np.asarray(self.counts).size:
            raise DatasetError(
                "LDResult: n_observations is 0 (zero-column input); LD "
                "statistics are undefined without observations"
            )

    @property
    def p_ab(self) -> np.ndarray:
        """Joint frequencies ``p_AB``."""
        return self.counts / self.n_observations

    @property
    def d(self) -> np.ndarray:
        """LD coefficient ``D = p_AB - p_A p_B``."""
        return self.p_ab - np.outer(self.frequencies, self.frequencies)

    @property
    def d_prime(self) -> np.ndarray:
        """Normalized coefficient ``D' = D / D_max`` (0 where undefined)."""
        d = self.d
        p = self.frequencies
        p_a = p[:, None]
        p_b = p[None, :]
        d_max_pos = np.minimum(p_a * (1 - p_b), (1 - p_a) * p_b)
        d_max_neg = np.minimum(p_a * p_b, (1 - p_a) * (1 - p_b))
        d_max = np.where(d >= 0, d_max_pos, d_max_neg)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(d_max > 0, d / d_max, 0.0)

    @property
    def r_squared(self) -> np.ndarray:
        """Squared correlation ``r^2`` (0 where a variance vanishes)."""
        d = self.d
        p = self.frequencies
        var = p * (1 - p)
        denom = np.outer(var, var)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(denom > 0, d * d / denom, 0.0)


def linkage_disequilibrium(
    data: SNPDataset | np.ndarray,
    device: str | GPUArchitecture = "Titan V",
    compare: str = "sites",
    framework: SNPComparisonFramework | None = None,
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> LDResult:
    """Compute all-pairs LD on the simulated GPU framework.

    Parameters
    ----------
    data:
        A :class:`SNPDataset` or a raw binary (samples, sites) matrix.
    device:
        Target device name or architecture.
    compare:
        ``"sites"`` (classic LD between loci, computed across samples)
        or ``"samples"`` (SNP-string comparison, the paper's benchmark
        orientation, computed across sites).
    framework:
        Reuse an existing framework instance (skips re-derivation).
    workers:
        Host threads for the functional compute (``> 1`` shards the
        bit-GEMM across the process-wide pool).  Ignored when
        ``framework`` is supplied.
    gram:
        Allow the symmetric (Gram) fast path -- LD is a
        self-comparison, so this roughly halves the computed word-ops.
        Ignored when ``framework`` is supplied.
    strategy:
        Host shard strategy (``"auto"``/``"gemm"``/``"blocked"``).
        Ignored when ``framework`` is supplied.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`): ``"auto"`` or a
        registered name.  Ignored when ``framework`` is supplied.
    executor:
        Host shard executor (``"auto"``/``"thread"``/``"process"``).
        Ignored when ``framework`` is supplied.
    """
    matrix = data.matrix if isinstance(data, SNPDataset) else np.asarray(data)
    if matrix.ndim != 2:
        raise DatasetError("linkage_disequilibrium: expected a 2-D binary matrix")
    if compare == "sites":
        entities = matrix.T.copy()
    elif compare == "samples":
        entities = matrix
    else:
        raise DatasetError(
            f"linkage_disequilibrium: compare must be 'sites' or 'samples', "
            f"got {compare!r}"
        )
    if entities.shape[0] and entities.shape[1] == 0:
        # Guarded up front: the zero-width operand would otherwise
        # surface as an arithmetic error inside the pack/tile pipeline.
        raise DatasetError(
            "linkage_disequilibrium: input has entities but zero "
            "observations; LD statistics are undefined"
        )
    if framework is None:
        framework = SNPComparisonFramework(
            device, Algorithm.LD, workers=workers, gram=gram,
            strategy=strategy, backend=backend, executor=executor,
        )
    counts, report = framework.run(entities)
    n_obs = entities.shape[1]
    frequencies = entities.mean(axis=1) if n_obs else np.zeros(entities.shape[0])
    return LDResult(
        counts=counts,
        frequencies=frequencies,
        n_observations=n_obs,
        report=report,
    )
