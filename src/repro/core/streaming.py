"""Streaming identity search: top-k matching over unbounded databases.

The Fig. 8 workload at production scale never wants the full
``queries x 20M`` distance matrix -- casework needs the best few
candidates per query.  This module processes the database in batches
through a persistent framework instance and maintains per-query top-k
result sets, so memory stays O(queries x k) regardless of database
size.  Batches map one-to-one onto the tiled transfers the pipeline
already performs, making this the natural API for databases that do
not fit in host memory either (ingest -> search -> discard).

Ties at the k-th distance are broken by database order (first seen
wins), making results deterministic and independent of batch
boundaries -- the property the equivalence tests pin down.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture

__all__ = ["Match", "StreamingIdentitySearch"]


def _check_binary_matrix(name: str, data: np.ndarray) -> np.ndarray:
    """Validate one binary operand; returns the checked array.

    Rejects wrong rank, non-integer dtypes and non-binary values with
    messages precise enough to locate the bad feed, *before* any
    search state is mutated.
    """
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise DatasetError(
            f"{name} must be a 2-D binary matrix, got {arr.ndim}-D "
            f"shape {arr.shape}"
        )
    if arr.dtype != np.bool_ and not np.issubdtype(arr.dtype, np.integer):
        raise DatasetError(
            f"{name} has dtype {arr.dtype}; binary matrices must use an "
            f"integer or bool dtype"
        )
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise DatasetError(
            f"{name} contains non-binary values "
            f"(min={int(arr.min())}, max={int(arr.max())}); entries must "
            f"be 0 or 1"
        )
    return arr


@dataclass(frozen=True, order=True)
class Match:
    """One candidate: ordered by distance, then database index."""

    distance: int
    database_index: int


@dataclass
class _QueryState:
    """Max-heap of the current best-k (stored negated for heapq)."""

    k: int
    heap: list[tuple[int, int]] = field(default_factory=list)  # (-dist, -idx)

    def offer(self, distance: int, index: int) -> None:
        item = (-distance, -index)
        if len(self.heap) < self.k:
            heapq.heappush(self.heap, item)
        elif item > self.heap[0]:
            heapq.heapreplace(self.heap, item)

    def matches(self) -> list[Match]:
        out = [Match(distance=-d, database_index=-i) for d, i in self.heap]
        out.sort()
        return out


class StreamingIdentitySearch:
    """Incremental FastID search against a database fed in batches.

    Parameters
    ----------
    queries:
        Binary ``(n_queries, n_sites)`` matrix, fixed for the session.
    k:
        Candidates retained per query.
    device:
        Simulated device (or architecture) running each batch.
    """

    def __init__(
        self,
        queries: np.ndarray,
        k: int = 5,
        device: str | GPUArchitecture = "Titan V",
    ) -> None:
        q = _check_binary_matrix("StreamingIdentitySearch: queries", queries)
        if q.shape[0] == 0:
            raise DatasetError(
                "StreamingIdentitySearch: queries must be a non-empty 2-D matrix"
            )
        if k <= 0:
            raise DatasetError("StreamingIdentitySearch: k must be positive")
        self.queries = q
        self.k = k
        self.framework = SNPComparisonFramework(device, Algorithm.FASTID_IDENTITY)
        self._states = [_QueryState(k=k) for _ in range(q.shape[0])]
        self.rows_seen = 0
        self.batches_seen = 0
        self.simulated_seconds = 0.0

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])

    def add_batch(self, profiles: np.ndarray) -> None:
        """Search one database batch and fold it into the top-k sets.

        Batch rows receive global database indices in arrival order.
        The batch is validated up front -- shape, dtype and
        binary-ness -- so a malformed feed fails with a precise
        :class:`~repro.errors.DatasetError` *before* any state
        (``rows_seen``, top-k heaps) is touched.
        """
        batch = _check_binary_matrix("add_batch: batch", profiles)
        if batch.shape[1] != self.queries.shape[1]:
            raise DatasetError(
                f"add_batch: batch shape {batch.shape} incompatible with "
                f"{self.queries.shape[1]} query sites"
            )
        if batch.shape[0] == 0:
            return
        distances, report = self.framework.run(self.queries, batch)
        self.simulated_seconds += report.end_to_end_s
        base = self.rows_seen
        for qi in range(self.n_queries):
            row = distances[qi]
            # Only candidates that could enter the heap matter; a
            # vectorized pre-filter keeps the Python loop short.
            state = self._states[qi]
            if len(state.heap) == state.k:
                cutoff = -state.heap[0][0]
                candidate_idx = np.nonzero(row <= cutoff)[0]
            else:
                candidate_idx = np.arange(row.size)
            for local in candidate_idx:
                state.offer(int(row[local]), base + int(local))
        self.rows_seen += batch.shape[0]
        self.batches_seen += 1

    def matches(self, query_index: int) -> list[Match]:
        """Current best-k matches for one query (sorted)."""
        if not (0 <= query_index < self.n_queries):
            raise DatasetError(
                f"matches: query index {query_index} out of range"
            )
        return self._states[query_index].matches()

    def all_matches(self) -> list[list[Match]]:
        """Best-k sets for every query."""
        return [state.matches() for state in self._states]

    def best(self, query_index: int) -> Match:
        """The single closest candidate for one query."""
        top = self.matches(query_index)
        if not top:
            raise DatasetError("best: no database rows seen yet")
        return top[0]
