"""Streaming workloads: unbounded inputs through the bounded pipeline.

The Fig. 8 workload at production scale never wants the full
``queries x 20M`` distance matrix -- casework needs the best few
candidates per query -- and a 20M-profile database does not fit in
host memory in the first place.  This module runs all three paper
workloads over data fed in chunks:

* :class:`StreamingIdentitySearch` -- incremental top-k FastID search
  (memory stays ``O(queries x k)`` regardless of database size);
* :class:`StreamingLD` -- all-pairs LD accumulated block-row by
  block-row (only two chunks of input are resident at a time);
* :class:`StreamingMixture` -- reference profiles streamed against a
  fixed mixture set.

Each workload accepts anything
:func:`repro.io_stream.sources.as_chunk_source` can adapt -- in-memory
arrays, ``.snpbin`` maps, NPZ files, or plain batch iterators -- and
consumes it through the double-buffered prefetch executor
(:class:`repro.io_stream.prefetch.ChunkStream`): a background thread
reads chunk *i+1* while chunk *i* runs through the engine.  Every
chunk is retried under the active resilience policy
(:mod:`repro.resilience`) before the error propagates, and per-chunk
spans/counters (``stream.chunks``, ``stream.bytes_read``,
``stream.prefetch_stall_s``) land in the observability layer.

Chunked execution is *bit-exact* against the in-memory path: the
comparisons are exact integer popcount arithmetic, so chunk boundaries
cannot change any result, and top-k ties are broken by database order
(first seen wins) independent of batching -- properties the
equivalence tests pin down.  See ``docs/STREAMING.md``.
"""

from __future__ import annotations

import heapq
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.ld import LDResult
from repro.core.mixture import MixtureResult
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture
from repro.io_stream.prefetch import ChunkStream, StreamStats
from repro.io_stream.sources import ChunkSource, as_chunk_source, materialize_source
from repro.observability.counters import (
    STREAM_CHUNK_RETRIES,
    STREAM_PREFILTER_FALLBACKS,
)
from repro.observability.tracer import get_tracer
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import call_with_retry
from repro.resilience.runtime import get_resilience

__all__ = [
    "Match",
    "StreamingIdentitySearch",
    "StreamingLD",
    "StreamingMixture",
]


def _check_binary_matrix(name: str, data: np.ndarray) -> np.ndarray:
    """Validate one binary operand; returns the checked array.

    Rejects wrong rank, non-integer dtypes and non-binary values with
    messages precise enough to locate the bad feed, *before* any
    search state is mutated.
    """
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise DatasetError(
            f"{name} must be a 2-D binary matrix, got {arr.ndim}-D "
            f"shape {arr.shape}"
        )
    if arr.dtype != np.bool_ and not np.issubdtype(arr.dtype, np.integer):
        raise DatasetError(
            f"{name} has dtype {arr.dtype}; binary matrices must use an "
            f"integer or bool dtype"
        )
    if arr.size:
        # One pass each: min()/max() walk the whole chunk, and this
        # runs on every streamed chunk's hot validation path.
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi > 1:
            raise DatasetError(
                f"{name} contains non-binary values "
                f"(min={lo}, max={hi}); entries must be 0 or 1"
            )
    return arr


def _run_chunk(fn: Callable[[], Any]) -> Any:
    """Run one chunk's work under the active resilience retry policy.

    The per-chunk rung of the degradation ladder: shard-level retry and
    quarantine happen inside the engine; anything retryable that still
    escapes (e.g. an allocation fault on the chunk's own launch) is
    retried here before the error propagates to the caller.  Chunk
    workloads only mutate their state *after* the framework run
    returns, so a retried chunk is folded exactly once.
    """
    policy = get_resilience().policy
    if policy.max_attempts <= 1:
        return fn()
    obs = get_tracer()

    def _count_retry(retry_index: int, exc: BaseException) -> None:
        obs.counters.add(STREAM_CHUNK_RETRIES)

    return call_with_retry(fn, policy, on_retry=_count_retry)


def _merged_report(
    framework: SNPComparisonFramework,
    reports: list[RunReport],
    m: int,
    n: int,
    k_bits: int,
) -> RunReport:
    """Aggregate per-chunk reports into one run-shaped report.

    Chunk runs are sequential on the simulated device, so timings and
    launch counts sum; ``m``/``n`` describe the *logical* streamed
    problem, not any single chunk.
    """
    merged = RunReport(
        device=framework.arch.name,
        algorithm=framework.algorithm.value,
        m=m,
        n=n,
        k_bits=k_bits,
    )
    for report in reports:
        merged.init_s += report.init_s
        merged.h2d_s += report.h2d_s
        merged.kernel_s += report.kernel_s
        merged.d2h_s += report.d2h_s
        merged.end_to_end_s += report.end_to_end_s
        merged.n_kernel_launches += report.n_kernel_launches
        merged.n_tiles += report.n_tiles
        merged.kernel_profiles.extend(report.kernel_profiles)
    resilience = [r.resilience for r in reports if r.resilience is not None]
    if resilience:
        merged.resilience = ResilienceReport.combine(resilience)
    return merged


@dataclass(frozen=True, order=True)
class Match:
    """One candidate: ordered by distance, then database index."""

    distance: int
    database_index: int


@dataclass
class _QueryState:
    """Max-heap of the current best-k (stored negated for heapq)."""

    k: int
    heap: list[tuple[int, int]] = field(default_factory=list)  # (-dist, -idx)

    def offer(self, distance: int, index: int) -> None:
        item = (-distance, -index)
        if len(self.heap) < self.k:
            heapq.heappush(self.heap, item)
        elif item > self.heap[0]:
            heapq.heapreplace(self.heap, item)

    def matches(self) -> list[Match]:
        out = [Match(distance=-d, database_index=-i) for d, i in self.heap]
        out.sort()
        return out


class StreamingIdentitySearch:
    """Incremental FastID search against a database fed in batches.

    Parameters
    ----------
    queries:
        Binary ``(n_queries, n_sites)`` matrix, fixed for the session.
    k:
        Candidates retained per query; at most :data:`MAX_K`.  The
        top-k fold relies on a vectorized pre-filter (only rows that
        could enter a full heap are visited in Python); a ``k`` near
        the database size keeps the heaps permanently unfilled and
        degrades every batch to the unfiltered fold, so huge values
        are rejected up front and unfiltered folds are surfaced
        through the ``stream.prefilter_fallbacks`` counter.
    device:
        Simulated device (or architecture) running each batch.
    """

    #: Upper bound on ``k``: beyond this the per-query heaps stop being
    #: "small working state" and callers should compute (and store) the
    #: full distance table instead of a top-k stream.
    MAX_K = 4096

    def __init__(
        self,
        queries: np.ndarray,
        k: int = 5,
        device: str | GPUArchitecture = "Titan V",
        workers: int | None = None,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        framework: SNPComparisonFramework | None = None,
    ) -> None:
        q = _check_binary_matrix("StreamingIdentitySearch: queries", queries)
        if q.shape[0] == 0:
            raise DatasetError(
                "StreamingIdentitySearch: queries must be a non-empty 2-D matrix"
            )
        if k <= 0:
            raise DatasetError("StreamingIdentitySearch: k must be positive")
        if k > self.MAX_K:
            raise DatasetError(
                f"StreamingIdentitySearch: k={k} exceeds the supported "
                f"maximum {self.MAX_K}; retain fewer candidates or run "
                f"identity_search for the full distance table"
            )
        self.queries = q
        self.k = k
        self.framework = framework or SNPComparisonFramework(
            device, Algorithm.FASTID_IDENTITY, workers=workers,
            strategy=strategy, backend=backend, executor=executor,
        )
        self._states = [_QueryState(k=k) for _ in range(q.shape[0])]
        self.rows_seen = 0
        self.batches_seen = 0
        self.simulated_seconds = 0.0

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])

    def add_batch(self, profiles: np.ndarray) -> None:
        """Search one database batch and fold it into the top-k sets.

        Batch rows receive global database indices in arrival order.
        The batch is validated up front -- shape, dtype and
        binary-ness -- so a malformed feed fails with a precise
        :class:`~repro.errors.DatasetError` *before* any state
        (``rows_seen``, top-k heaps) is touched.
        """
        batch = _check_binary_matrix("add_batch: batch", profiles)
        if batch.shape[1] != self.queries.shape[1]:
            raise DatasetError(
                f"add_batch: batch shape {batch.shape} incompatible with "
                f"{self.queries.shape[1]} query sites"
            )
        if batch.shape[0] == 0:
            return
        distances, report = self.framework.run(self.queries, batch)
        self.simulated_seconds += report.end_to_end_s
        base = self.rows_seen
        unfiltered = 0
        for qi in range(self.n_queries):
            row = distances[qi]
            # Only candidates that could enter the heap matter; a
            # vectorized pre-filter keeps the Python loop short.  An
            # unfilled heap (k not yet reached) admits every row -- a
            # full fold, surfaced through the fallback counter.
            state = self._states[qi]
            if len(state.heap) == state.k:
                cutoff = -state.heap[0][0]
                candidate_idx = np.nonzero(row <= cutoff)[0]
            else:
                candidate_idx = np.arange(row.size)
                unfiltered += 1
            for local in candidate_idx:
                state.offer(int(row[local]), base + int(local))
        if unfiltered:
            get_tracer().counters.add(STREAM_PREFILTER_FALLBACKS, unfiltered)
        self.rows_seen += batch.shape[0]
        self.batches_seen += 1

    def consume(
        self,
        source: ChunkSource | np.ndarray | Any,
        chunk_rows: int,
        prefetch: bool = True,
    ) -> StreamStats:
        """Stream an entire chunk source through :meth:`add_batch`.

        Chunks are read (and validated) on the prefetch thread while
        the previous chunk is being searched; each chunk is retried
        under the active resilience policy.  Returns the stream's I/O
        accounting.
        """
        src = as_chunk_source(source)
        obs = get_tracer()
        stream = ChunkStream(src, chunk_rows, prefetch=prefetch)
        for index, chunk in enumerate(stream):
            with obs.span(
                "stream.chunk", workload="identity", index=index,
                rows=int(chunk.shape[0]),
            ):
                _run_chunk(lambda: self.add_batch(chunk))
        return stream.stats

    def matches(self, query_index: int) -> list[Match]:
        """Current best-k matches for one query (sorted)."""
        if not (0 <= query_index < self.n_queries):
            raise DatasetError(
                f"matches: query index {query_index} out of range"
            )
        return self._states[query_index].matches()

    def all_matches(self) -> list[list[Match]]:
        """Best-k sets for every query."""
        return [state.matches() for state in self._states]

    def best(self, query_index: int) -> Match:
        """The single closest candidate for one query."""
        top = self.matches(query_index)
        if not top:
            if self.rows_seen == 0:
                raise DatasetError(
                    "best: no database rows seen yet (rows_seen=0); "
                    "feed batches with add_batch/consume first"
                )
            raise DatasetError(
                f"best: no candidates retained for query {query_index} "
                f"despite rows_seen={self.rows_seen} -- internal top-k "
                f"state error"
            )
        return top[0]


class StreamingLD:
    """Out-of-core all-pairs LD over a streamed entity matrix.

    The LD table is a Gram matrix (``C = A & A.T`` popcounts), so it
    can be accumulated *block-row by block-row*: for each new chunk of
    entity rows, compute the diagonal block (a self-comparison -- the
    symmetric/triangular Gram machinery of :mod:`repro.parallel`
    engages as usual) plus one rectangular block against every earlier
    chunk, mirroring each into its transpose slot.  Only two chunks of
    input are ever resident; the output table is the product and grows
    ``O(n^2)`` as it must.

    Earlier chunks are re-read from the source, so the source must be
    seekable (``.snpbin``, NPZ, arrays); one-shot iterator feeds are
    spooled to a temporary ``.snpbin`` automatically.

    Rows of the source are the *entities* being compared (the paper's
    SNP-string orientation, ``compare="samples"`` in
    :func:`repro.core.ld.linkage_disequilibrium`); site-major LD on an
    out-of-core matrix requires a transposed input file.
    """

    def __init__(
        self,
        device: str | GPUArchitecture = "Titan V",
        workers: int | None = None,
        gram: bool = True,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        framework: SNPComparisonFramework | None = None,
    ) -> None:
        self.framework = framework or SNPComparisonFramework(
            device, Algorithm.LD, workers=workers, gram=gram,
            strategy=strategy, backend=backend, executor=executor,
        )

    def run(
        self,
        source: ChunkSource | np.ndarray | Any,
        chunk_rows: int,
        prefetch: bool = True,
    ) -> LDResult:
        """Stream the source once and return the full :class:`LDResult`."""
        src = as_chunk_source(source)
        obs = get_tracer()
        with tempfile.TemporaryDirectory(prefix="repro-streaming-ld-") as tmp:
            if not src.seekable:
                src = materialize_source(
                    src, Path(tmp) / "spool.snpbin", chunk_rows=chunk_rows
                )
            n = src.n_rows
            assert n is not None  # seekable sources know their size
            n_sites = src.n_sites
            counts = np.zeros((n, n), dtype=np.int64)
            frequencies = np.zeros(n, dtype=np.float64)
            reports: list[RunReport] = []
            row_start = 0
            stream = ChunkStream(src, chunk_rows, prefetch=prefetch)
            for index, chunk in enumerate(stream):
                rows = int(chunk.shape[0])
                si, ei = row_start, row_start + rows
                with obs.span(
                    "stream.chunk", workload="ld", index=index, rows=rows
                ):
                    diag, report = _run_chunk(lambda: self.framework.run(chunk))
                    counts[si:ei, si:ei] = diag
                    reports.append(report)
                    # One rectangular block against every earlier chunk;
                    # AND is symmetric, so the transpose slot is a mirror.
                    for pj in range(0, si, chunk_rows):
                        sj, ej = pj, min(pj + chunk_rows, si)
                        prev = src.read(sj, ej)
                        block, report = _run_chunk(
                            lambda: self.framework.run(prev, chunk)
                        )
                        counts[sj:ej, si:ei] = block
                        counts[si:ei, sj:ej] = block.T
                        reports.append(report)
                    frequencies[si:ei] = (
                        chunk.mean(axis=1) if n_sites else 0.0
                    )
                row_start = ei
        self.last_stats = stream.stats
        return LDResult(
            counts=counts,
            frequencies=frequencies,
            n_observations=n_sites,
            report=_merged_report(self.framework, reports, n, n, n_sites),
        )


class StreamingMixture:
    """FastID mixture analysis over a streamed reference database.

    The mixture set is fixed and small (casework mixtures); the
    reference profiles -- the 20M-profile side -- stream in chunks.
    Scores accumulate row-block by row-block, so each chunk's rows are
    scored exactly as the in-memory path scores them (bit-exact).

    Incremental use mirrors :class:`StreamingIdentitySearch`
    (:meth:`add_batch` / :meth:`result`); :meth:`consume` drives a
    whole chunk source through the prefetch executor.
    """

    def __init__(
        self,
        mixtures: np.ndarray,
        device: str | GPUArchitecture = "Titan V",
        prenegate: bool | None = None,
        workers: int | None = None,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        framework: SNPComparisonFramework | None = None,
    ) -> None:
        m = _check_binary_matrix("StreamingMixture: mixtures", mixtures)
        if m.shape[0] == 0:
            raise DatasetError(
                "StreamingMixture: mixtures must be a non-empty 2-D matrix"
            )
        self.mixtures = m
        self.framework = framework or SNPComparisonFramework(
            device,
            Algorithm.FASTID_MIXTURE,
            prenegate=prenegate,
            workers=workers,
            strategy=strategy,
            backend=backend,
            executor=executor,
        )
        self._score_blocks: list[np.ndarray] = []
        self._reports: list[RunReport] = []
        self.rows_seen = 0
        self.batches_seen = 0

    @property
    def n_mixtures(self) -> int:
        return int(self.mixtures.shape[0])

    def add_batch(self, references: np.ndarray) -> None:
        """Score one chunk of reference profiles against the mixtures."""
        batch = _check_binary_matrix("add_batch: references", references)
        if batch.shape[1] != self.mixtures.shape[1]:
            raise DatasetError(
                f"add_batch: references shape {batch.shape} incompatible "
                f"with {self.mixtures.shape[1]} mixture sites"
            )
        if batch.shape[0] == 0:
            return
        scores, report = self.framework.run(batch, self.mixtures)
        self._score_blocks.append(scores)
        self._reports.append(report)
        self.rows_seen += int(batch.shape[0])
        self.batches_seen += 1

    def consume(
        self,
        source: ChunkSource | np.ndarray | Any,
        chunk_rows: int,
        prefetch: bool = True,
    ) -> StreamStats:
        """Stream a whole reference source through :meth:`add_batch`."""
        src = as_chunk_source(source)
        obs = get_tracer()
        stream = ChunkStream(src, chunk_rows, prefetch=prefetch)
        for index, chunk in enumerate(stream):
            with obs.span(
                "stream.chunk", workload="mixture", index=index,
                rows=int(chunk.shape[0]),
            ):
                _run_chunk(lambda: self.add_batch(chunk))
        return stream.stats

    def result(self) -> MixtureResult:
        """The accumulated :class:`MixtureResult` for everything seen."""
        if self._score_blocks:
            scores = np.vstack(self._score_blocks)
        else:
            scores = np.zeros((0, self.n_mixtures), dtype=np.int64)
        return MixtureResult(
            scores=scores,
            prenegated=self.framework.database_needs_prenegation,
            report=_merged_report(
                self.framework,
                self._reports,
                self.rows_seen,
                self.n_mixtures,
                int(self.mixtures.shape[1]),
            ),
        )
