"""FastID mixture-analysis application API (Section II-C).

Scores reference profiles against DNA mixtures:

    gamma = popcount((r XOR m) AND r) = popcount(r AND NOT m)

-- the minor alleles the reference carries that the mixture lacks.
Zero means every allele of the reference is present in the mixture
(consistent with being a contributor); the larger the score, the less
likely the containment.

Device-specific kernel choice (Section VI-E1): with a fused AND-NOT
instruction (NVIDIA) the negation is free in-kernel; without one
(Vega) the framework pre-negates the mixture operand at pack time and
runs the plain AND kernel -- reducing mixture analysis to "the same
computation as linkage disequilibrium", as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture

__all__ = ["MixtureResult", "mixture_analysis"]


@dataclass
class MixtureResult:
    """Output of one mixture analysis.

    Attributes
    ----------
    scores:
        ``popcount(r & ~m)`` per (reference, mixture) pair, shape
        ``(n_references, n_mixtures)``.
    prenegated:
        Whether the run used the pre-negated-database kernel.
    report:
        Framework performance report.
    """

    scores: np.ndarray
    prenegated: bool
    report: RunReport

    def consistent_contributors(
        self, mixture_index: int, max_score: int = 0
    ) -> list[tuple[int, int]]:
        """(reference index, score) pairs consistent with the mixture.

        ``max_score`` tolerates genotyping noise; 0 demands strict
        containment.
        """
        n_mixtures = int(self.scores.shape[1])
        # An unchecked index would raise a raw IndexError out of range
        # and silently wrap to the wrong mixture when negative.
        if not isinstance(mixture_index, (int, np.integer)) or not (
            0 <= mixture_index < n_mixtures
        ):
            raise DatasetError(
                f"consistent_contributors: mixture_index {mixture_index!r} "
                f"out of range for {n_mixtures} mixture(s) "
                f"(expected 0 <= index < {n_mixtures})"
            )
        column = self.scores[:, mixture_index]
        refs = np.nonzero(column <= max_score)[0]
        out = [(int(r), int(column[r])) for r in refs]
        out.sort(key=lambda t: (t[1], t[0]))
        return out


def mixture_analysis(
    references: np.ndarray,
    mixtures: np.ndarray,
    device: str | GPUArchitecture = "Titan V",
    prenegate: bool | None = None,
    framework: SNPComparisonFramework | None = None,
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> MixtureResult:
    """Score ``references`` against ``mixtures`` on the simulated GPU.

    Parameters
    ----------
    references:
        Binary matrix ``(n_references, n_sites)`` -- the individuals
        being tested for mixture membership.
    mixtures:
        Binary matrix ``(n_mixtures, n_sites)`` of mixed profiles.
    prenegate:
        Force the pre-negated variant (None = device default).
    workers:
        Host threads for the functional compute (``> 1`` shards the
        bit-GEMM).  Ignored when ``framework`` is supplied.
    gram:
        Accepted for API uniformity with the other applications;
        mixture analysis compares *different* operand contents (the
        ANDNOT kernel is asymmetric; the pre-negated variant packs the
        right operand negated), so the Gram path can never engage.
        Ignored when ``framework`` is supplied.
    strategy:
        Host shard strategy (``"auto"``/``"gemm"``/``"blocked"``).
        Ignored when ``framework`` is supplied.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`): ``"auto"`` or a
        registered name.  Ignored when ``framework`` is supplied.
    executor:
        Host shard executor (``"auto"``/``"thread"``/``"process"``).
        Ignored when ``framework`` is supplied.
    """
    r = np.asarray(references)
    m = np.asarray(mixtures)
    if r.ndim != 2 or m.ndim != 2:
        raise DatasetError("mixture_analysis: references and mixtures must be 2-D")
    if r.shape[1] != m.shape[1]:
        raise DatasetError(
            f"mixture_analysis: site counts differ ({r.shape[1]} vs {m.shape[1]})"
        )
    if framework is None:
        framework = SNPComparisonFramework(
            device, Algorithm.FASTID_MIXTURE, prenegate=prenegate,
            workers=workers, gram=gram, strategy=strategy, backend=backend,
            executor=executor,
        )
    scores, report = framework.run(r, m)
    return MixtureResult(
        scores=scores,
        prenegated=framework.database_needs_prenegation,
        report=report,
    )
