"""Streaming LD pruning and clumping on the bit-GEMM core.

The Gram-mode engine computes the all-pairs LD matrix; this module adds
the two standard downstream consumers (ROADMAP item 4) as *streaming
operators over block-rows* of that Gram output:

* :class:`LDPruner` -- windowed greedy r^2 pruning, the semantics of
  PLINK ``--indep-pairwise <window> 1 <r^2>``: sites are scanned in
  order and a site is kept iff its r^2 against every *previously kept*
  site within the trailing window of ``window`` consecutive sites is
  at or below the threshold (first seen wins, step fixed at 1).
* :class:`LDClumper` -- index-variant clumping, the semantics of PLINK
  ``--clump`` with a site-count window: sites are ranked by a supplied
  score (higher is better, ties broken by site order); in rank order
  each unabsorbed site becomes an *index variant* and absorbs every
  unabsorbed neighbor within the window whose r^2 with it is at or
  above the threshold.

Neither operator ever materializes the full ``sites x sites`` LD
matrix.  Each consumes the streamed site-major input chunk by chunk
(the block-row decomposition :class:`~repro.core.streaming.StreamingLD`
uses) and asks the comparison framework for exactly the two count
blocks a block-row of the Gram output contributes to the active
window: the chunk's diagonal block (a self-comparison -- the
symmetric/triangular Gram machinery engages as usual) and one
rectangular block against the buffered window sites.  Resident LD
state is therefore ``O(window^2)`` regardless of panel size: at most
``window`` buffered site vectors plus the current count blocks (see
``docs/LDOPS.md`` for the precise bound and the clump bookkeeping
caveat).

Decisions are made from *exact integer joint counts* (the bit-GEMM
output), via the shared predicate :func:`r2_exceeds`:

    r^2 = (n c_ab - c_a c_b)^2 / (c_a (n - c_a) c_b (n - c_b))

evaluated as an arbitrary-precision integer numerator/denominator pair,
so results are bit-identical between chunked streaming and in-memory
execution for every chunk size -- a property the tests pin down
against a naive dense reference.  A site with zero variance
(monomorphic) has an undefined r^2; it is treated as 0 (never prunes,
never absorbs, never is absorbed), matching
:attr:`~repro.core.ld.LDResult.r_squared`.

Rows of the streamed source are the *sites* being pruned/clumped
(columns are samples/observations) -- the transpose of a sample-major
:class:`~repro.snp.dataset.SNPDataset` matrix, exactly like
:class:`~repro.core.streaming.StreamingLD` with ``compare="samples"``
reads its entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.errors import DatasetError
from repro.gpu.arch import GPUArchitecture
from repro.io_stream.prefetch import ChunkStream, StreamStats
from repro.io_stream.sources import ChunkSource, as_chunk_source
from repro.observability.counters import (
    LDOPS_CLUMPS_FORMED,
    LDOPS_PAIRS_TESTED,
    LDOPS_SITES_ABSORBED,
    LDOPS_SITES_KEPT,
    LDOPS_SITES_PRUNED,
    LDOPS_SITES_SEEN,
    LDOPS_WINDOW_PEAK_SITES,
)
from repro.observability.tracer import get_tracer

__all__ = [
    "Clump",
    "ClumpResult",
    "LDClumper",
    "LDPruner",
    "PruneResult",
    "ld_clump",
    "ld_prune",
    "r2_exceeds",
]


def r2_exceeds(
    c_ab: int,
    c_a: int,
    c_b: int,
    n_obs: int,
    threshold: float,
    strict: bool,
) -> bool:
    """Whether the pair's r^2 exceeds (or meets) ``threshold``.

    Evaluates ``r^2 = (n c_ab - c_a c_b)^2 / (c_a (n-c_a) c_b (n-c_b))``
    as exact Python integers (no intermediate overflow, no float
    division), comparing the integer numerator against
    ``threshold * denominator``; the only rounding is the final float
    product, applied identically on every path, so the decision is
    bit-identical regardless of how the counts were batched.

    ``strict=True`` tests ``r^2 > threshold`` (pruning); ``False``
    tests ``r^2 >= threshold`` (clump absorption).  A zero-variance
    site (``c == 0`` or ``c == n_obs``) makes the denominator 0: the
    r^2 is undefined and treated as 0, so the predicate is False.
    """
    num_root = n_obs * c_ab - c_a * c_b
    num = num_root * num_root
    den = c_a * (n_obs - c_a) * c_b * (n_obs - c_b)
    if den == 0:
        return False
    bound = threshold * den
    return num > bound if strict else num >= bound


def _check_site_chunk(name: str, chunk: np.ndarray, n_sites: int | None) -> np.ndarray:
    """Validate one site-major chunk (rows = sites, columns = samples)."""
    arr = np.ascontiguousarray(chunk)
    if arr.ndim != 2:
        raise DatasetError(
            f"{name}: expected a 2-D site-major binary chunk, got "
            f"{arr.ndim}-D shape {arr.shape}"
        )
    if arr.dtype != np.bool_ and not np.issubdtype(arr.dtype, np.integer):
        raise DatasetError(
            f"{name}: chunk has dtype {arr.dtype}; binary matrices must "
            f"use an integer or bool dtype"
        )
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi > 1:
            raise DatasetError(
                f"{name}: chunk contains non-binary values "
                f"(min={lo}, max={hi}); entries must be 0 or 1"
            )
    if n_sites is not None and arr.shape[1] != n_sites:
        raise DatasetError(
            f"{name}: chunk has {arr.shape[1]} observation columns, "
            f"earlier chunks had {n_sites}"
        )
    return arr


def _check_params(name: str, window: int, r2: float) -> None:
    if window < 1:
        raise DatasetError(f"{name}: window must be >= 1, got {window}")
    if not (0.0 <= r2 <= 1.0):
        raise DatasetError(f"{name}: r2 threshold must be in [0, 1], got {r2}")


class _WindowGram:
    """Shared block-row machinery: buffered window sites + count blocks.

    Keeps the site vectors of the trailing window (the only input ever
    re-touched), their per-site allele counts, and computes the two
    count blocks each new chunk needs through the framework's bit-GEMM:
    the chunk's diagonal self-comparison block and the rectangle
    against the buffered rows.  Eviction keeps the buffer at most
    ``window - 1`` rows between chunks, so resident input state is
    bounded by the window, never the panel.
    """

    def __init__(self, window: int, framework: SNPComparisonFramework) -> None:
        self.window = window
        self.framework = framework
        #: Buffered site vectors (rows) still inside some future window.
        self._rows: np.ndarray | None = None
        #: Global site index of each buffered row.
        self._indices: list[int] = []
        #: Per-site allele count of each buffered row.
        self._counts: list[int] = []
        self.n_obs: int | None = None
        self.next_site = 0
        self.simulated_seconds = 0.0

    def blocks(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray, list[int], list[int], list[int]]:
        """Count blocks + bookkeeping for one new chunk of site rows.

        Returns ``(rect, diag, buf_indices, buf_counts, chunk_counts)``
        where ``rect`` is the ``(buffered, chunk)`` joint-count block
        (``None`` when the buffer is empty), ``diag`` the chunk's
        self-comparison block, and the lists give global indices and
        allele counts aligned with the block axes.
        """
        rect: np.ndarray | None = None
        if self._rows is not None and len(self._indices):
            rect, report = self.framework.run(self._rows, chunk)
            self.simulated_seconds += report.end_to_end_s
        diag, report = self.framework.run(chunk)
        self.simulated_seconds += report.end_to_end_s
        chunk_counts = [int(c) for c in chunk.sum(axis=1)]
        return rect, diag, list(self._indices), list(self._counts), chunk_counts

    def retain(
        self, chunk: np.ndarray, keep_local: list[int], base: int
    ) -> None:
        """Append the chunk rows worth buffering and evict stale ones.

        ``keep_local`` lists the chunk-local rows that future sites may
        still need (kept sites for the pruner, every site for the
        clumper).  Rows whose global index has fallen out of the next
        site's window are dropped.
        """
        if keep_local:
            fresh = chunk[keep_local]
            if self._rows is None or not len(self._indices):
                self._rows = np.array(fresh, copy=True)
            else:
                self._rows = np.concatenate([self._rows, fresh], axis=0)
            counts = chunk.sum(axis=1)
            for local in keep_local:
                self._indices.append(base + local)
                self._counts.append(int(counts[local]))
        # The next site to arrive is ``self.next_site``; it can only
        # pair with indices >= next_site - window + 1.
        horizon = self.next_site - self.window + 1
        alive = [i for i, g in enumerate(self._indices) if g >= horizon]
        if len(alive) != len(self._indices):
            rows = self._rows
            assert rows is not None
            self._rows = np.array(rows[alive], copy=True) if alive else None
            self._indices = [self._indices[i] for i in alive]
            self._counts = [self._counts[i] for i in alive]


@dataclass
class PruneResult:
    """Outcome of one windowed LD pruning pass.

    Attributes
    ----------
    kept:
        Global indices of surviving sites, ascending.
    pruned:
        Global indices of removed sites, ascending.
    blocker:
        For each pruned site, the kept site whose r^2 exceeded the
        threshold (aligned with ``pruned``).
    n_sites:
        Total sites scanned.
    window / r2:
        The parameters the pass ran with.
    pairs_tested:
        Exact number of (new site, kept window site) pairs whose r^2
        was evaluated -- invariant under chunking.
    peak_window_sites:
        Largest number of kept sites simultaneously inside one window
        (including the site being decided) -- the resident-state bound
        the O(window^2) claim rests on; invariant under chunking.
    simulated_seconds:
        Simulated device time of every count block computed.
    stream_stats:
        I/O accounting when driven by :func:`ld_prune` (else ``None``).
    """

    kept: np.ndarray
    pruned: np.ndarray
    blocker: np.ndarray
    n_sites: int
    window: int
    r2: float
    pairs_tested: int
    peak_window_sites: int
    simulated_seconds: float
    stream_stats: StreamStats | None = None


class LDPruner:
    """Streaming windowed LD pruning (PLINK ``--indep-pairwise`` style).

    Feed site-major chunks in order with :meth:`add_chunk`; call
    :meth:`finalize` for the :class:`PruneResult`.  Decisions are
    greedy first-seen-wins: a new site is kept iff its r^2 with every
    previously *kept* site in the trailing ``window`` consecutive
    sites stays at or below ``r2`` (strict ``>`` prunes).  Pruned
    sites leave the window immediately -- they never veto a later
    site -- so the kept set is exactly what PLINK's step-1 greedy scan
    with order-based (rather than MAF-based) pair resolution produces.
    """

    def __init__(
        self,
        window: int,
        r2: float,
        device: str | GPUArchitecture = "Titan V",
        workers: int | None = None,
        gram: bool = True,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        framework: SNPComparisonFramework | None = None,
    ) -> None:
        _check_params("LDPruner", window, r2)
        self.window = window
        self.r2 = r2
        self.framework = framework or SNPComparisonFramework(
            device, Algorithm.LD, workers=workers, gram=gram,
            strategy=strategy, backend=backend, executor=executor,
        )
        self._gram = _WindowGram(window, self.framework)
        self._kept: list[int] = []
        self._pruned: list[int] = []
        self._blocker: list[int] = []
        self.pairs_tested = 0
        self.peak_window_sites = 0
        self._finalized = False

    @property
    def sites_seen(self) -> int:
        return self._gram.next_site

    def add_chunk(self, chunk: np.ndarray) -> None:
        """Scan one block of site rows (global order = arrival order)."""
        if self._finalized:
            raise DatasetError("LDPruner: add_chunk after finalize")
        arr = _check_site_chunk("LDPruner.add_chunk", chunk, self._gram.n_obs)
        if arr.shape[0] == 0:
            return
        if arr.shape[1] == 0:
            raise DatasetError(
                "LDPruner.add_chunk: chunk has zero observation columns; "
                "r^2 is undefined on zero observations"
            )
        if self._gram.n_obs is None:
            self._gram.n_obs = int(arr.shape[1])
        n_obs = self._gram.n_obs
        base = self._gram.next_site
        rect, diag, buf_idx, buf_counts, chunk_counts = self._gram.blocks(arr)
        # Kept sites of the trailing window: (global index, allele
        # count, where to find the joint count against a chunk row).
        window_kept: list[tuple[int, int, bool, int]] = [
            (g, c, True, i) for i, (g, c) in enumerate(zip(buf_idx, buf_counts))
        ]
        keep_local: list[int] = []
        for local in range(arr.shape[0]):
            g = base + local
            horizon = g - self.window + 1
            window_kept = [item for item in window_kept if item[0] >= horizon]
            blocked_by = -1
            for other_g, other_count, in_buf, pos in window_kept:
                if in_buf:
                    assert rect is not None
                    joint = int(rect[pos, local])
                else:
                    joint = int(diag[pos, local])
                self.pairs_tested += 1
                if r2_exceeds(
                    joint, other_count, chunk_counts[local], n_obs,
                    self.r2, strict=True,
                ):
                    blocked_by = other_g
                    break
            if blocked_by >= 0:
                self._pruned.append(g)
                self._blocker.append(blocked_by)
                self.peak_window_sites = max(
                    self.peak_window_sites, len(window_kept)
                )
            else:
                self._kept.append(g)
                keep_local.append(local)
                window_kept.append((g, chunk_counts[local], False, local))
                self.peak_window_sites = max(
                    self.peak_window_sites, len(window_kept)
                )
        self._gram.next_site = base + arr.shape[0]
        self._gram.retain(arr, keep_local, base)

    def finalize(self) -> PruneResult:
        """Close the stream and return the result (idempotent counters)."""
        if not self._finalized:
            self._finalized = True
            counters = get_tracer().counters
            counters.add(LDOPS_SITES_SEEN, self.sites_seen)
            counters.add(LDOPS_SITES_KEPT, len(self._kept))
            counters.add(LDOPS_SITES_PRUNED, len(self._pruned))
            counters.add(LDOPS_PAIRS_TESTED, self.pairs_tested)
            counters.add(LDOPS_WINDOW_PEAK_SITES, self.peak_window_sites)
        return PruneResult(
            kept=np.array(self._kept, dtype=np.int64),
            pruned=np.array(self._pruned, dtype=np.int64),
            blocker=np.array(self._blocker, dtype=np.int64),
            n_sites=self.sites_seen,
            window=self.window,
            r2=self.r2,
            pairs_tested=self.pairs_tested,
            peak_window_sites=self.peak_window_sites,
            simulated_seconds=self._gram.simulated_seconds,
        )


@dataclass(frozen=True)
class Clump:
    """One clump: the index variant plus the sites it absorbed."""

    index_site: int
    members: tuple[int, ...]


@dataclass
class ClumpResult:
    """Outcome of one index-variant clumping pass.

    ``assignment[i]`` is the index site that absorbed site ``i`` (its
    own index for index variants).  ``clumps`` lists every clump in
    rank order of its index variant (best score first, ties by site
    order); singleton clumps (no absorbed members) are included.
    """

    clumps: list[Clump]
    assignment: np.ndarray
    n_sites: int
    window: int
    r2: float
    pairs_tested: int
    peak_window_sites: int
    simulated_seconds: float
    stream_stats: StreamStats | None = None

    @property
    def index_sites(self) -> np.ndarray:
        """Index-variant site indices in rank order."""
        return np.array([c.index_site for c in self.clumps], dtype=np.int64)


@dataclass
class _PendingSite:
    """A site whose index/absorbed status is not yet decided."""

    site: int
    #: Above-threshold window neighbors, global indices (both sides).
    edges: list[int] = field(default_factory=list)


class LDClumper:
    """Streaming index-variant clumping (PLINK ``--clump`` style).

    ``scores`` supplies one score per streamed site (higher is better,
    e.g. ``-log10 p``); the array must cover every site that arrives.
    A site is an *index variant* iff no better-ranked index variant
    within the window has r^2 >= the threshold with it; otherwise it is
    absorbed by the best-ranked such index variant.  Rank is
    ``(-score, site order)`` -- ties break toward the earlier site,
    independent of batching.

    The recursion on rank is resolved incrementally: a site's status is
    settled as soon as all its window neighbors have arrived and every
    better-ranked above-threshold neighbor is itself settled, so in
    well-mixed panels pending state stays near the window size.  Only
    above-threshold edges are remembered per pending site; the site
    *vectors* and count blocks stay bounded by the window as in
    :class:`LDPruner`.
    """

    def __init__(
        self,
        window: int,
        r2: float,
        scores: np.ndarray,
        device: str | GPUArchitecture = "Titan V",
        workers: int | None = None,
        gram: bool = True,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        framework: SNPComparisonFramework | None = None,
    ) -> None:
        _check_params("LDClumper", window, r2)
        score_arr = np.asarray(scores, dtype=np.float64)
        if score_arr.ndim != 1:
            raise DatasetError(
                f"LDClumper: scores must be a 1-D array, got shape "
                f"{score_arr.shape}"
            )
        if not np.all(np.isfinite(score_arr)):
            raise DatasetError("LDClumper: scores must be finite")
        self.window = window
        self.r2 = r2
        self.scores = score_arr
        self.framework = framework or SNPComparisonFramework(
            device, Algorithm.LD, workers=workers, gram=gram,
            strategy=strategy, backend=backend, executor=executor,
        )
        self._gram = _WindowGram(window, self.framework)
        self._pending: dict[int, _PendingSite] = {}
        #: site -> absorbing index variant (== site for index variants).
        self._assignment: dict[int, int] = {}
        self.pairs_tested = 0
        self.peak_window_sites = 0
        self._finalized = False

    @property
    def sites_seen(self) -> int:
        return self._gram.next_site

    def _rank(self, site: int) -> tuple[float, int]:
        return (-float(self.scores[site]), site)

    def add_chunk(self, chunk: np.ndarray) -> None:
        """Fold one block of site rows into the pending clump state."""
        if self._finalized:
            raise DatasetError("LDClumper: add_chunk after finalize")
        arr = _check_site_chunk("LDClumper.add_chunk", chunk, self._gram.n_obs)
        if arr.shape[0] == 0:
            return
        if arr.shape[1] == 0:
            raise DatasetError(
                "LDClumper.add_chunk: chunk has zero observation columns; "
                "r^2 is undefined on zero observations"
            )
        base = self._gram.next_site
        if base + arr.shape[0] > self.scores.shape[0]:
            raise DatasetError(
                f"LDClumper.add_chunk: streamed sites exceed the "
                f"{self.scores.shape[0]} supplied scores "
                f"(chunk covers sites {base}..{base + arr.shape[0] - 1})"
            )
        if self._gram.n_obs is None:
            self._gram.n_obs = int(arr.shape[1])
        n_obs = self._gram.n_obs
        rect, diag, buf_idx, buf_counts, chunk_counts = self._gram.blocks(arr)
        for local in range(arr.shape[0]):
            g = base + local
            pending = _PendingSite(site=g)
            horizon = g - self.window + 1
            # Earlier neighbors still in the window: buffered rows plus
            # this chunk's own earlier rows (counts from the diagonal
            # self-comparison block).
            for pos, (other_g, other_count) in enumerate(
                zip(buf_idx, buf_counts)
            ):
                if other_g < horizon:
                    continue
                assert rect is not None
                self.pairs_tested += 1
                if r2_exceeds(
                    int(rect[pos, local]), other_count, chunk_counts[local],
                    n_obs, self.r2, strict=False,
                ):
                    pending.edges.append(other_g)
                    other = self._pending.get(other_g)
                    if other is not None:
                        other.edges.append(g)
            for other_local in range(max(0, horizon - base), local):
                other_g = base + other_local
                self.pairs_tested += 1
                if r2_exceeds(
                    int(diag[other_local, local]), chunk_counts[other_local],
                    chunk_counts[local], n_obs, self.r2, strict=False,
                ):
                    pending.edges.append(other_g)
                    other = self._pending.get(other_g)
                    if other is not None:
                        other.edges.append(g)
            self._pending[g] = pending
        self._gram.next_site = base + arr.shape[0]
        window_rows = min(self._gram.next_site, self.window)
        self.peak_window_sites = max(self.peak_window_sites, window_rows)
        self._gram.retain(arr, list(range(arr.shape[0])), base)
        self._resolve(complete_before=self._gram.next_site - self.window + 1)

    def _resolve(self, complete_before: int) -> None:
        """Settle every pending site whose dependencies are settled.

        A site is *complete* once all potential window neighbors have
        arrived (``site + window <= next unseen site``, i.e. its index
        is below ``complete_before``).  A complete site settles when
        every better-ranked above-threshold neighbor is settled: it is
        absorbed by the best-ranked settled *index* neighbor, or
        becomes an index variant itself.
        """
        progressed = True
        while progressed:
            progressed = False
            for g in sorted(self._pending):
                if g >= complete_before:
                    continue
                pending = self._pending[g]
                my_rank = self._rank(g)
                better = [
                    e for e in pending.edges if self._rank(e) < my_rank
                ]
                if any(e not in self._assignment for e in better):
                    continue
                absorbers = [
                    e for e in better if self._assignment[e] == e
                ]
                if absorbers:
                    self._assignment[g] = min(absorbers, key=self._rank)
                else:
                    self._assignment[g] = g
                del self._pending[g]
                progressed = True

    def finalize(self) -> ClumpResult:
        """Close the stream, settle every site, return the result."""
        if not self._finalized:
            self._resolve(complete_before=self._gram.next_site)
            assert not self._pending, "clump resolution did not converge"
            self._finalized = True
            counters = get_tracer().counters
            n = self._gram.next_site
            n_index = sum(1 for s, a in self._assignment.items() if s == a)
            counters.add(LDOPS_SITES_SEEN, n)
            counters.add(LDOPS_CLUMPS_FORMED, n_index)
            counters.add(LDOPS_SITES_ABSORBED, n - n_index)
            counters.add(LDOPS_PAIRS_TESTED, self.pairs_tested)
            counters.add(LDOPS_WINDOW_PEAK_SITES, self.peak_window_sites)
        n = self._gram.next_site
        assignment = np.array(
            [self._assignment[g] for g in range(n)], dtype=np.int64
        )
        members: dict[int, list[int]] = {}
        for g in range(n):
            a = int(assignment[g])
            if a != g:
                members.setdefault(a, []).append(g)
        index_sites = sorted(
            (g for g in range(n) if int(assignment[g]) == g), key=self._rank
        )
        clumps = [
            Clump(index_site=g, members=tuple(members.get(g, [])))
            for g in index_sites
        ]
        return ClumpResult(
            clumps=clumps,
            assignment=assignment,
            n_sites=n,
            window=self.window,
            r2=self.r2,
            pairs_tested=self.pairs_tested,
            peak_window_sites=self.peak_window_sites,
            simulated_seconds=self._gram.simulated_seconds,
        )


def _drive(
    operator: LDPruner | LDClumper,
    source: ChunkSource | np.ndarray | Any,
    chunk_rows: int,
    prefetch: bool,
    workload: str,
) -> StreamStats:
    """Stream a whole source through one operator (with retry + spans)."""
    # Imported here to keep module import light and avoid a cycle at
    # type-check time (streaming imports ld, which shares this package).
    from repro.core.streaming import _run_chunk

    if chunk_rows < 1:
        raise DatasetError(f"ld {workload}: chunk_rows must be >= 1")
    src = as_chunk_source(source)
    obs = get_tracer()
    stream = ChunkStream(src, chunk_rows, prefetch=prefetch)
    for index, chunk in enumerate(stream):
        with obs.span(
            "stream.chunk", workload=workload, index=index,
            rows=int(chunk.shape[0]),
        ):
            _run_chunk(lambda: operator.add_chunk(chunk))
    return stream.stats


def ld_prune(
    source: ChunkSource | np.ndarray | Any,
    window: int,
    r2: float,
    chunk_rows: int = 4096,
    prefetch: bool = True,
    device: str | GPUArchitecture = "Titan V",
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
    framework: SNPComparisonFramework | None = None,
) -> PruneResult:
    """Stream a site-major source through :class:`LDPruner` once.

    ``source`` is anything
    :func:`repro.io_stream.sources.as_chunk_source` accepts; rows are
    the sites scanned in order.  Chunk boundaries never change the
    result (bit-identical kept sets for every ``chunk_rows``).
    """
    pruner = LDPruner(
        window, r2, device=device, workers=workers, gram=gram,
        strategy=strategy, backend=backend, executor=executor,
        framework=framework,
    )
    stats = _drive(pruner, source, chunk_rows, prefetch, "ld-prune")
    result = pruner.finalize()
    result.stream_stats = stats
    return result


def ld_clump(
    source: ChunkSource | np.ndarray | Any,
    scores: np.ndarray,
    window: int,
    r2: float,
    chunk_rows: int = 4096,
    prefetch: bool = True,
    device: str | GPUArchitecture = "Titan V",
    workers: int | None = None,
    gram: bool = True,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
    framework: SNPComparisonFramework | None = None,
) -> ClumpResult:
    """Stream a site-major source through :class:`LDClumper` once.

    ``scores`` must supply one finite score per streamed site; a
    mismatch raises :class:`~repro.errors.DatasetError` (too few scores
    as soon as a chunk overruns them, too many at finalize).
    """
    clumper = LDClumper(
        window, r2, scores, device=device, workers=workers, gram=gram,
        strategy=strategy, backend=backend, executor=executor,
        framework=framework,
    )
    stats = _drive(clumper, source, chunk_rows, prefetch, "clump")
    if clumper.sites_seen != clumper.scores.shape[0]:
        raise DatasetError(
            f"ld_clump: {clumper.scores.shape[0]} scores supplied but the "
            f"source streamed {clumper.sites_seen} sites"
        )
    result = clumper.finalize()
    result.stream_stats = stats
    return result
