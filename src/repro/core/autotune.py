"""Model-driven configuration search: tuning beyond Table II.

The paper fixes one configuration per (device, algorithm).  Because the
cycle model prices *any* configuration, we can close the loop: sweep
the legal configuration space for a concrete problem shape and pick the
modeled optimum.  This answers the practical question Table II leaves
open -- "my problem is not the paper's benchmark shape; what should the
header say?" -- with the same analytical machinery (the paper's
Section V philosophy taken one step further).

Search space:

* ``n_r``: multiples of the Eq. 7 lower bound up to the register cap
  (both from :mod:`repro.core.planner`), kept ``L_fn``-divisible;
* core grids: all factor pairs of usable core counts ``<= N_c``
  (including grids that deliberately idle cores -- occasionally
  optimal for tiny problems where the launch constant dominates);
* ``m_r``, ``m_c``, ``k_c``: held at their analytic values (Eqs. 4-6
  are equalities, not tunables).

The sweep is exhaustive but small (tens to a few hundred candidates)
and each candidate costs one closed-form evaluation.

:func:`host_tune` is the measured counterpart for the *host* engine:
it bridges to :mod:`repro.parallel.tuner`, which benchmarks real
strategy candidates ({gemm, blocked} x {full, triangular}) on this
machine and persists the winner for ``strategy="auto"`` to consult.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm, KernelConfig
from repro.core.planner import (
    ProblemShape,
    derive_config,
    derive_k_c,
    derive_m_c,
    derive_m_r,
    n_r_lower_bound,
    n_r_register_cap,
)
from repro.errors import ConfigurationError
from repro.gpu.arch import GPUArchitecture
from repro.gpu.cycles import kernel_cycles
from repro.gpu.kernel import SnpKernel

__all__ = ["TuneResult", "autotune", "candidate_configs", "host_tune"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning sweep."""

    config: KernelConfig
    modeled_seconds: float
    candidates_evaluated: int
    published_seconds: float | None

    @property
    def gain_over_published(self) -> float | None:
        """Modeled speedup of the tuned config over the published one."""
        if self.published_seconds is None:
            return None
        return self.published_seconds / self.modeled_seconds


def _grids(n_c: int) -> list[tuple[int, int]]:
    grids = set()
    for cores in range(1, n_c + 1):
        for rows in range(1, cores + 1):
            if cores % rows == 0:
                grids.add((rows, cores // rows))
    return sorted(grids)


def candidate_configs(
    arch: GPUArchitecture,
    algorithm: Algorithm,
    op: ComparisonOp,
) -> list[KernelConfig]:
    """Enumerate the legal configuration space for (arch, algorithm)."""
    m_r = derive_m_r(arch)
    m_c = derive_m_c(arch)
    k_c = derive_k_c(arch)
    lower = n_r_lower_bound(arch)
    cap = n_r_register_cap(arch)
    n_r_values = [
        n_r
        for n_r in range(lower, cap + 1, lower)
        if n_r % arch.l_fn == 0
    ]
    if not n_r_values:
        raise ConfigurationError(
            f"candidate_configs: empty n_r corridor on {arch.name}"
        )
    configs = []
    for n_r in n_r_values:
        for rows, cols in _grids(arch.n_c):
            configs.append(
                KernelConfig(
                    device=arch.name,
                    algorithm=algorithm,
                    op=op,
                    m_r=m_r,
                    n_r=n_r,
                    k_c=k_c,
                    m_c=m_c,
                    grid_rows=rows,
                    grid_cols=cols,
                )
            )
    return configs


def autotune(
    arch: GPUArchitecture,
    algorithm: Algorithm | str,
    problem: ProblemShape,
    compare_published: bool = True,
) -> TuneResult:
    """Pick the modeled-fastest configuration for ``problem``.

    Every candidate is validated through the kernel compile checks
    before evaluation, so the winner is guaranteed launchable.
    """
    algorithm = Algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    op = derive_config(arch, algorithm).op
    k_words = -(-problem.k_bits // arch.word_bits)

    best: KernelConfig | None = None
    best_seconds = float("inf")
    evaluated = 0
    for config in candidate_configs(arch, algorithm, op):
        try:
            kernel = SnpKernel.compile(
                arch, config.op,
                m_c=config.m_c, m_r=config.m_r, k_c=config.k_c, n_r=config.n_r,
                grid_rows=config.grid_rows, grid_cols=config.grid_cols,
            )
        except ConfigurationError:
            continue
        plan = kernel.blocking_plan(problem.m, problem.n, k_words)
        seconds = kernel_cycles(arch, plan, config.op).seconds
        evaluated += 1
        if seconds < best_seconds:
            best, best_seconds = config, seconds
    if best is None:
        raise ConfigurationError(
            f"autotune: no launchable configuration on {arch.name}"
        )

    published_seconds = None
    if compare_published:
        published = derive_config(arch, algorithm)
        kernel = SnpKernel.compile(
            arch, published.op,
            m_c=published.m_c, m_r=published.m_r, k_c=published.k_c,
            n_r=published.n_r,
            grid_rows=published.grid_rows, grid_cols=published.grid_cols,
        )
        plan = kernel.blocking_plan(problem.m, problem.n, k_words)
        published_seconds = kernel_cycles(arch, plan, published.op).seconds

    return TuneResult(
        config=best,
        modeled_seconds=best_seconds,
        candidates_evaluated=evaluated,
        published_seconds=published_seconds,
    )


def host_tune(
    problem: ProblemShape,
    op: ComparisonOp | str = ComparisonOp.AND,
    workers: int | None = None,
    word_bits: int = 64,
    repeats: int = 1,
    persist: bool = True,
):
    """Measure-and-persist host strategy tuning for ``problem``.

    Unlike :func:`autotune` (closed-form device model), this actually
    *runs* the candidate strategies on synthetic operands of the
    problem's shape and stores the winner in the persisted host tuning
    cache (see :mod:`repro.parallel.tuner`).  Returns the
    :class:`~repro.parallel.tuner.TuningRecord` recorded.
    """
    from repro.parallel.tuner import tune_problem

    k_words = -(-problem.k_bits // word_bits)
    return tune_problem(
        problem.m,
        problem.n,
        k_words,
        op=op,
        workers=workers,
        repeats=repeats,
        persist=persist,
    )
