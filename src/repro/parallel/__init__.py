"""Host-side parallel execution engine for the functional bit-GEMM.

The BLIS five-loop structure exposes independent ``m_r x n_r`` output
tiles; this package shards them across a host thread pool:

* :mod:`repro.parallel.plan` -- :class:`ShardPlan`, derived from the
  device :class:`~repro.blis.blocking.BlockingPlan` so host sharding
  and device blocking share one partitioning arithmetic;
* :mod:`repro.parallel.cache` -- the byte-budgeted LRU
  :class:`PanelCache` that lets shards sharing a ``k_c`` panel pack it
  once;
* :mod:`repro.parallel.engine` -- :class:`ParallelEngine`,
  :func:`bit_gemm_parallel`, and the process-wide :func:`get_engine`
  pool registry (one pool shared across simulated devices).

Entry points that accept ``workers`` --
:func:`repro.gpu.executor.execute_kernel`, the framework/pipeline, the
multi-GPU executor, and the CLI's ``--workers`` flag -- all route
through this package.  See ``docs/PARALLEL.md``.
"""

from repro.parallel.cache import CacheStats, PanelCache
from repro.parallel.engine import (
    PARALLEL_CROSSOVER_OPS,
    ParallelEngine,
    ParallelReport,
    ShardProfile,
    bit_gemm_parallel,
    get_engine,
    recommended_workers,
)
from repro.parallel.plan import Shard, ShardPlan

__all__ = [
    "CacheStats",
    "PanelCache",
    "PARALLEL_CROSSOVER_OPS",
    "ParallelEngine",
    "ParallelReport",
    "ShardProfile",
    "Shard",
    "ShardPlan",
    "bit_gemm_parallel",
    "get_engine",
    "recommended_workers",
]
