"""Host-side parallel execution engine for the functional bit-GEMM.

The BLIS five-loop structure exposes independent ``m_r x n_r`` output
tiles; this package shards them across a host thread pool:

* :mod:`repro.parallel.plan` -- :class:`ShardPlan`, derived from the
  device :class:`~repro.blis.blocking.BlockingPlan` so host sharding
  and device blocking share one partitioning arithmetic;
* :mod:`repro.parallel.cache` -- the byte-budgeted LRU
  :class:`PanelCache` that lets shards sharing a ``k_c`` panel pack it
  once;
* :mod:`repro.parallel.engine` -- :class:`ParallelEngine`,
  :func:`bit_gemm_parallel`, and the process-wide :func:`get_engine`
  pool registry (one pool shared across simulated devices);
* :mod:`repro.parallel.procpool` -- :class:`ProcessShardExecutor`,
  the ``executor="process"`` tier: worker processes with operands
  published through shared memory / mmap (``docs/DISTRIBUTED.md``);
* :mod:`repro.parallel.tuner` -- the persisted host autotuner that
  ``strategy="auto"`` (and ``executor="auto"``) consults
  (:func:`tune_problem`, :func:`lookup_tuned`).

Self-comparisons with a symmetric op take the Gram path: triangular
shard plans (:meth:`ShardPlan.triangular`) compute only the diagonal
and upper triangle and mirror the rest by transposition, and the
panel cache deduplicates A-side/B-side entries of the same matrix.

Entry points that accept ``workers`` --
:func:`repro.gpu.executor.execute_kernel`, the framework/pipeline, the
multi-GPU executor, and the CLI's ``--workers`` flag -- all route
through this package.  See ``docs/PARALLEL.md`` and ``docs/PERF.md``.
"""

from typing import TYPE_CHECKING, Any

from repro.parallel.cache import CacheStats, PanelCache
from repro.parallel.engine import (
    EXECUTORS,
    PARALLEL_CROSSOVER_OPS,
    REPRO_EXECUTOR_ENV,
    ParallelEngine,
    ParallelReport,
    ShardProfile,
    bit_gemm_parallel,
    get_engine,
    recommended_workers,
)
from repro.parallel.plan import Shard, ShardPlan, TRIANGULAR_MIN_BANDS
from repro.parallel.tuner import (
    TuningCache,
    TuningRecord,
    configure_tuning,
    lookup_tuned,
    tune_problem,
)

__all__ = [
    "CacheStats",
    "EXECUTORS",
    "PanelCache",
    "PARALLEL_CROSSOVER_OPS",
    "ProcessShardExecutor",
    "REPRO_EXECUTOR_ENV",
    "ParallelEngine",
    "ParallelReport",
    "ShardProfile",
    "Shard",
    "ShardPlan",
    "TRIANGULAR_MIN_BANDS",
    "TuningCache",
    "TuningRecord",
    "bit_gemm_parallel",
    "configure_tuning",
    "get_engine",
    "lookup_tuned",
    "recommended_workers",
    "tune_problem",
]


if TYPE_CHECKING:  # the lazy re-export below, visible to type checkers
    from repro.parallel.procpool import (
        ProcessShardExecutor as ProcessShardExecutor,
    )


def __getattr__(name: str) -> Any:
    # ProcessShardExecutor is re-exported lazily: the process tier
    # pulls in multiprocessing machinery (shared_memory, spawn context)
    # most runs never need, and ParallelEngine imports it on first
    # ``executor="process"`` use for the same reason.
    if name == "ProcessShardExecutor":
        from repro.parallel.procpool import ProcessShardExecutor

        return ProcessShardExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
