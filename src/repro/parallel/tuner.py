"""Persisted host autotuner: measured strategy choice for ``"auto"``.

The model-driven sweep in :mod:`repro.core.autotune` prices *device*
configurations analytically.  Host-side strategy choice -- identity
GEMM vs the blocked walk, full vs triangular Gram plans, and where the
serial/parallel crossover sits -- depends on things no closed form
captures (BLAS build, core count, NumPy version), so this module
closes that loop empirically: :func:`tune_problem` benchmarks the
candidate grid ``{gemm, blocked} x {full, triangular}`` -- plus every
available tunable kernel-ABI backend (:mod:`repro.kernels`), raced the
same way -- on synthetic operands of the requested shape, times a
serial baseline for the crossover decision, and persists the winner to
a small JSON cache.  A backend winner is recorded with strategy
``"panel"`` and its backend name, which ``backend="auto"`` then
applies per-machine.

The tuner also races the engine's *executor* axis: on problems large
enough for the process tier to plausibly pay off, the whole candidate
grid is re-timed on the process executor
(:mod:`repro.parallel.procpool`) and the per-executor winners are
stored as separate records, distinguished by an ``|ex<executor>`` key
suffix (thread records keep the legacy unsuffixed key, so records
persisted before the executor axis existed keep matching -- and keep
meaning "thread").  ``executor="auto"`` then compares the two records'
``best_seconds`` per size class.

The cache is keyed by ``(op, shape bucket, workers, word_bits, numpy
version, backend fingerprint)`` -- shapes are bucketed to the next
power of two so one measurement serves its whole size class, the NumPy
version is in the key because the winner may flip across BLAS builds,
and the backend fingerprint (names + versions of the tunable backend
set, :func:`repro.kernels.backend_fingerprint`) is in the key so
installing, removing, or upgrading a backend invalidates records
measured against the old set instead of pinning a stale winner.  The engine's
``strategy="auto"`` consults the cache through :func:`lookup_tuned`
(a lazy singleton + dict lookup, cheap enough for every run); a
missing, corrupt, or foreign-format cache degrades to "no record"
rather than erroring, so a stale file can never break execution.

File format (``repro-host-tuning/1``)::

    {
      "format": "repro-host-tuning/1",
      "records": {
        "<key>": {"strategy": "gemm", "triangular": true,
                   "crossover_ops": null, "best_seconds": 0.012,
                   "candidates": 4, "backend": "numpy"}
      }
    }

The cache path resolves, in order: explicit argument, the
``REPRO_TUNING_CACHE`` environment variable, then
``$XDG_CACHE_HOME/repro/host-tuning.json`` when ``XDG_CACHE_HOME`` is
set, else ``~/.cache/repro/host-tuning.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import ConfigurationError
from repro.kernels import (
    DEFAULT_BACKEND_NAME,
    backend_fingerprint,
    registered_backends,
)
from repro.util.cachedir import repro_cache_dir

__all__ = [
    "TUNING_FORMAT",
    "TUNING_CACHE_ENV",
    "DEFAULT_TUNING_PATH",
    "default_tuning_path",
    "TuningRecord",
    "TuningCache",
    "shape_bucket",
    "tuning_key",
    "configure_tuning",
    "get_tuning_cache",
    "lookup_tuned",
    "tune_problem",
]

#: On-disk format tag; unknown tags are treated as "no cache".
TUNING_FORMAT = "repro-host-tuning/1"

#: Environment variable overriding the cache file location.
TUNING_CACHE_ENV = "REPRO_TUNING_CACHE"

#: Default cache file (per-user, survives repo checkouts); honours
#: ``XDG_CACHE_HOME`` via :func:`repro.util.cachedir.repro_cache_dir`
#: -- kept as a constant name for documentation, resolved per
#: construction in :func:`default_tuning_path`.
DEFAULT_TUNING_PATH = "~/.cache/repro/host-tuning.json"


def default_tuning_path() -> Path:
    """Resolve the cache file: ``REPRO_TUNING_CACHE``, else XDG-aware."""
    override = os.environ.get(TUNING_CACHE_ENV)
    if override:
        return Path(override).expanduser()
    return repro_cache_dir() / "host-tuning.json"

#: Reference-backend strategies tune_problem races against each other.
_STRATEGIES = ("gemm", "blocked")

#: Strategies a persisted record may carry: the reference pair plus
#: ``"panel"``, which marks a non-reference kernel-backend winner.
_RECORD_STRATEGIES = ("gemm", "blocked", "panel")

#: Executors a record (and a tuning key) may name.
_RECORD_EXECUTORS = ("thread", "process")


def shape_bucket(m: int, n: int, k_words: int) -> str:
    """Bucket a problem shape to its next-power-of-two size class."""

    def up(x: int) -> int:
        return 1 if x <= 1 else 1 << (x - 1).bit_length()

    return f"m{up(m)}-n{up(n)}-k{up(k_words)}"


def tuning_key(
    op: ComparisonOp,
    m: int,
    n: int,
    k_words: int,
    word_bits: int,
    workers: int,
    executor: str = "thread",
) -> str:
    """The cache key one measurement is stored (and looked up) under.

    The key ends with the kernel-backend fingerprint (names +
    versions of the tunable backend set): a record measured before
    Numba was installed -- or against a different backend version --
    stops matching instead of silently pinning the old winner.

    Non-thread executors append an ``|ex<executor>`` suffix; thread
    records keep the unsuffixed legacy form so caches written before
    the executor axis existed still resolve -- and resolve as thread
    records, which is what they measured.
    """
    if executor not in _RECORD_EXECUTORS:
        raise ConfigurationError(
            f"tuning_key: unknown executor {executor!r} "
            f"(valid: {', '.join(_RECORD_EXECUTORS)})"
        )
    suffix = "" if executor == "thread" else f"|ex{executor}"
    return (
        f"{op.value}|{shape_bucket(m, n, k_words)}|w{workers}"
        f"|b{word_bits}|np{np.__version__}|be[{backend_fingerprint()}]"
        f"{suffix}"
    )


@dataclass(frozen=True)
class TuningRecord:
    """One persisted tuning decision.

    ``crossover_ops`` overrides the engine's serial/parallel crossover
    for this size class when not ``None`` (recorded when the serial
    baseline beat every parallel candidate).  ``triangular`` is the
    measured preference for Gram plans; the engine only honours it
    when the run is actually a symmetric self-comparison.
    ``executor`` names the shard executor the record was measured on;
    records persisted before the executor axis existed lack the field
    and degrade to ``"thread"`` (which is what they measured).
    """

    strategy: str
    triangular: bool
    crossover_ops: int | None
    best_seconds: float
    candidates: int
    backend: str = DEFAULT_BACKEND_NAME
    executor: str = "thread"

    def to_json(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "triangular": self.triangular,
            "crossover_ops": self.crossover_ops,
            "best_seconds": self.best_seconds,
            "candidates": self.candidates,
            "backend": self.backend,
            "executor": self.executor,
        }

    @classmethod
    def from_json(cls, data: object) -> "TuningRecord":
        """Parse one record; raises ``ValueError`` on any shape problem."""
        if not isinstance(data, Mapping):
            raise ValueError(f"tuning record must be an object, got {type(data)}")
        strategy = data.get("strategy")
        if strategy not in _RECORD_STRATEGIES:
            raise ValueError(f"tuning record has unknown strategy {strategy!r}")
        backend = data.get("backend", DEFAULT_BACKEND_NAME)
        if not isinstance(backend, str) or not backend:
            raise ValueError("tuning record: backend must be a non-empty string")
        triangular = data.get("triangular")
        if not isinstance(triangular, bool):
            raise ValueError("tuning record: triangular must be a bool")
        crossover = data.get("crossover_ops")
        if crossover is not None and not isinstance(crossover, int):
            raise ValueError("tuning record: crossover_ops must be int or null")
        best_seconds = data.get("best_seconds")
        if not isinstance(best_seconds, (int, float)) or isinstance(
            best_seconds, bool
        ):
            raise ValueError("tuning record: best_seconds must be a number")
        candidates = data.get("candidates")
        if not isinstance(candidates, int) or isinstance(candidates, bool):
            raise ValueError("tuning record: candidates must be an int")
        executor = data.get("executor", "thread")
        if executor not in _RECORD_EXECUTORS:
            raise ValueError(
                f"tuning record has unknown executor {executor!r}"
            )
        return cls(
            strategy=strategy,
            triangular=triangular,
            crossover_ops=crossover,
            best_seconds=float(best_seconds),
            candidates=candidates,
            backend=backend,
            executor=executor,
        )


class TuningCache:
    """Thread-safe, lazily loaded JSON store of tuning records.

    Loading is defensive end to end: a missing file, unreadable bytes,
    invalid JSON, a foreign ``format`` tag, or malformed records all
    leave the cache *empty* and record the reason in
    :attr:`load_error` -- callers see "no record for this key", never
    an exception.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            path = default_tuning_path()
        self.path = Path(path).expanduser()
        self.load_error: str | None = None
        self._records: dict[str, TuningRecord] = {}
        self._loaded = False
        self._lock = threading.Lock()

    # -- persistence ---------------------------------------------------------

    def _ensure_loaded(self) -> None:
        with self._lock:
            if self._loaded:
                return
            self._loaded = True
            self._records = {}
            self.load_error = None
            try:
                raw = self.path.read_text()
            except FileNotFoundError:
                return
            except OSError as exc:
                self.load_error = f"unreadable: {exc}"
                return
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                self.load_error = f"corrupt JSON: {exc}"
                return
            if not isinstance(data, dict) or data.get("format") != TUNING_FORMAT:
                self.load_error = (
                    f"unrecognised format "
                    f"{data.get('format') if isinstance(data, dict) else data!r}"
                )
                return
            records = data.get("records")
            if not isinstance(records, dict):
                self.load_error = "missing records object"
                return
            for key, value in records.items():
                try:
                    self._records[str(key)] = TuningRecord.from_json(value)
                except ValueError as exc:
                    # Skip the bad record, keep the good ones.
                    self.load_error = f"skipped record {key!r}: {exc}"

    def lookup(self, key: str) -> TuningRecord | None:
        """The record stored under ``key``, or ``None``."""
        self._ensure_loaded()
        with self._lock:
            return self._records.get(key)

    def store(self, key: str, record: TuningRecord) -> None:
        """Insert/replace ``key`` in memory (call :meth:`save` to persist)."""
        self._ensure_loaded()
        with self._lock:
            self._records[key] = record

    @staticmethod
    def _read_disk_records(path: Path) -> dict[str, TuningRecord]:
        """Best-effort parse of the records currently on disk.

        Shares :meth:`_ensure_loaded`'s tolerance: anything unreadable,
        corrupt, or foreign-format reads as "no records" so a damaged
        file never blocks a save.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(data, dict) or data.get("format") != TUNING_FORMAT:
            return {}
        records = data.get("records")
        if not isinstance(records, dict):
            return {}
        out: dict[str, TuningRecord] = {}
        for key, value in records.items():
            try:
                out[str(key)] = TuningRecord.from_json(value)
            except ValueError:
                continue
        return out

    def save(self) -> None:
        """Persist atomically, merging concurrent writers' records.

        ``os.replace`` makes each write atomic, but two processes that
        loaded the cache, tuned *different* problems and saved would
        otherwise last-writer-win -- the first writer's new record
        silently vanishes.  So the file is re-read under the lock and
        its records merged in before the replace: keys this process
        holds in memory win (a re-measurement intentionally supersedes
        the stored record), keys only on disk are preserved.  The merge
        result also becomes the in-memory state, so a subsequent
        :meth:`lookup` sees everything the file does.
        """
        self._ensure_loaded()
        with self._lock:
            merged = self._read_disk_records(self.path)
            merged.update(self._records)
            self._records = merged
            payload = {
                "format": TUNING_FORMAT,
                "records": {
                    key: record.to_json()
                    for key, record in sorted(merged.items())
                },
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            os.replace(tmp, self.path)

    def __len__(self) -> int:
        self._ensure_loaded()
        with self._lock:
            return len(self._records)


# -- process-wide singleton ------------------------------------------------------

_CACHE: TuningCache | None = None
_CACHE_LOCK = threading.Lock()


def configure_tuning(path: str | Path | None = None) -> TuningCache:
    """(Re)point the process-wide tuning cache, returning it.

    Tests use this to sandbox the cache; passing ``None`` re-resolves
    the environment variable / default path.
    """
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = TuningCache(path)
        return _CACHE


def get_tuning_cache() -> TuningCache:
    """The process-wide tuning cache (created on first use)."""
    global _CACHE
    with _CACHE_LOCK:
        if _CACHE is None:
            _CACHE = TuningCache()
        return _CACHE


def lookup_tuned(
    op: ComparisonOp,
    m: int,
    n: int,
    k_words: int,
    word_bits: int,
    workers: int,
    executor: str = "thread",
) -> TuningRecord | None:
    """Cheap cache consultation used by ``strategy="auto"``.

    Thread lookups hit the legacy unsuffixed key, so records persisted
    before the executor axis existed still apply (as thread records).
    """
    cache = get_tuning_cache()
    return cache.lookup(
        tuning_key(op, m, n, k_words, word_bits, workers, executor=executor)
    )


# -- measurement -----------------------------------------------------------------


def tune_problem(
    m: int,
    n: int,
    k_words: int,
    op: ComparisonOp | str = ComparisonOp.AND,
    workers: int | None = None,
    repeats: int = 1,
    seed: int = 0,
    cache: TuningCache | None = None,
    persist: bool = True,
    executors: tuple[str, ...] | None = None,
) -> TuningRecord:
    """Benchmark the candidate grid for one shape and persist the winner.

    Races ``{gemm, blocked}`` reference strategies and every available
    tunable kernel backend -- each in full-plan form and, when the
    problem is a square self-comparison with a symmetric op, also in
    triangular Gram form -- on synthetic random operands, plus a
    serial baseline.  The fastest parallel candidate becomes the
    record (backend winners carry strategy ``"panel"`` and their
    backend name); if the serial baseline beat it, ``crossover_ops``
    is raised above this size class so ``"auto"`` keeps such problems
    serial.

    ``executors`` selects which shard executors race (default:
    ``("thread",)``, widened to ``("thread", "process")`` when the
    problem is at least the parallel crossover size -- the process
    tier's spawn/shared-memory overheads can't pay off below it).  One
    record per executor is stored under its executor-qualified key;
    the overall fastest is returned, so ``executor="auto"`` can later
    compare records where :func:`lookup_tuned` finds both.
    """
    from repro.parallel.engine import PARALLEL_CROSSOVER_OPS, get_engine

    if m <= 0 or n <= 0 or k_words <= 0:
        raise ConfigurationError(
            f"tune_problem: extents must be positive, got {(m, n, k_words)}"
        )
    if repeats <= 0:
        raise ConfigurationError(
            f"tune_problem: repeats must be positive, got {repeats}"
        )
    op = get_microkernel(op).op
    if workers is None:
        workers = os.cpu_count() or 1
    rng = np.random.default_rng(seed)
    a = rng.integers(0, np.iinfo(np.uint64).max, size=(m, k_words), dtype=np.uint64)
    b = a if m == n else rng.integers(
        0, np.iinfo(np.uint64).max, size=(n, k_words), dtype=np.uint64
    )
    gram_eligible = m == n and op.is_symmetric
    word_bits = 64
    total_ops = m * n * k_words
    if executors is None:
        executors = ("thread",)
        if total_ops >= PARALLEL_CROSSOVER_OPS:
            executors = ("thread", "process")
    for ex in executors:
        if ex not in _RECORD_EXECUTORS:
            raise ConfigurationError(
                f"tune_problem: unknown executor {ex!r} "
                f"(valid: {', '.join(_RECORD_EXECUTORS)})"
            )

    def best_of(
        strategy: str,
        triangular: bool,
        backend: str = DEFAULT_BACKEND_NAME,
        executor: str = "thread",
    ) -> float:
        engine = get_engine(workers, strategy, backend, executor)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.run(a, b, op, force_parallel=True, symmetric=triangular)
            best = min(best, time.perf_counter() - start)
        return best

    def race_executor(executor: str) -> TuningRecord:
        # The candidate grid: reference strategies, then every
        # available tunable kernel backend raced the same way (full
        # and, where eligible, triangular Gram plans).
        candidates: list[tuple[str, str, bool, float]] = []
        for strategy in _STRATEGIES:
            candidates.append(
                (DEFAULT_BACKEND_NAME, strategy, False,
                 best_of(strategy, False, executor=executor))
            )
            if gram_eligible:
                candidates.append(
                    (DEFAULT_BACKEND_NAME, strategy, True,
                     best_of(strategy, True, executor=executor))
                )
        for be in registered_backends():
            info = be.info
            if not info.tunable or not info.available:
                continue
            if info.name == DEFAULT_BACKEND_NAME:
                continue
            candidates.append(
                (info.name, "panel", False,
                 best_of("gemm", False, info.name, executor=executor))
            )
            if gram_eligible:
                candidates.append(
                    (info.name, "panel", True,
                     best_of("gemm", True, info.name, executor=executor))
                )
        backend, strategy, triangular, best_seconds = min(
            candidates, key=lambda c: c[3]
        )
        crossover_ops = 2 * total_ops if serial_best < best_seconds else None
        return TuningRecord(
            strategy=strategy,
            triangular=triangular,
            crossover_ops=crossover_ops,
            best_seconds=best_seconds,
            candidates=len(candidates),
            backend=backend,
            executor=executor,
        )

    serial_engine = get_engine(1, "gemm")
    serial_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        serial_engine.run(a, b, op, force_parallel=False)
        serial_best = min(serial_best, time.perf_counter() - start)

    if cache is None:
        cache = get_tuning_cache()
    best_record: TuningRecord | None = None
    for ex in executors:
        record = race_executor(ex)
        cache.store(
            tuning_key(op, m, n, k_words, word_bits, workers, executor=ex),
            record,
        )
        if best_record is None or record.best_seconds < best_record.best_seconds:
            best_record = record
    if persist:
        cache.save()
    assert best_record is not None
    return best_record
