"""Parallel sharded execution of the functional bit-GEMM.

The host-side counterpart of the paper's core-grid parallelism: the
output C is partitioned into shards (:mod:`repro.parallel.plan`), each
shard runs on a ``concurrent.futures`` thread pool -- the NumPy
bitwise/popcount/GEMM kernels release the GIL, so shards genuinely
overlap on multicore hosts -- and every shard writes its disjoint
block of the shared output array (the partial-``gamma`` reduction is
race-free by construction).

Two shard strategies, both bit-exact with
:func:`repro.blis.gemm.bit_gemm_reference`:

* ``"blocked"`` -- the genuine BLIS walk: per ``k_c`` panel, pack A/B
  micro-panels (through the shared :class:`~repro.parallel.cache.PanelCache`)
  and run the popcount micro-kernel over batched groups of micro-tiles.
* ``"gemm"`` -- the throughput path: per ``k_c`` panel, unpack the
  shard's rows to float32 bit matrices (cached, so shards sharing a
  panel unpack it once) and evaluate the popcount identities
  (``POPC(a & b)`` summed = ``<bits(a), bits(b)>`` etc.) as one BLAS
  GEMM.  Exact: per-panel dot products are bounded by
  ``k_c * word_bits``, far below float32's 2**24 integer limit (panels
  beyond that bound fall back to float64).

``"auto"`` (the default) consults the persisted host tuning cache
(:mod:`repro.parallel.tuner`) for a strategy measured on this host;
absent a record it picks ``"gemm"``.  Problems below the crossover
threshold -- or ``workers=1`` -- take the serial fallback through the
existing :mod:`repro.blis.gemm` drivers, so the engine is safe to
leave enabled everywhere.

**Kernel backends.**  Orthogonally to the shard strategy, the engine
accepts a kernel-ABI backend (:mod:`repro.kernels`).  A non-reference
backend (``"numba"``, ``"cnative"``, ``"sim"``) replaces the shard
compute with the backend's ``bit_gemm_panel`` (reported as strategy
``"panel"``) and the serial fallback with the
:func:`~repro.blis.gemm.bit_gemm_backend` driver; the reference
``"numpy"`` backend keeps the strategies above.  ``backend="auto"``
resolves, in order: the ``REPRO_BACKEND`` environment variable, the
tuning record's measured winner (the tuner races backends exactly as
it races strategies), then the reference backend.  Deterministic
counters are backend-invariant: shard kernels record the same
``GEMM_WORD_OPS``/``SHARDS_EXECUTED`` whichever backend computes the
block, and symmetric *serial* runs always keep the triangular
reference walk so Gram-mode accounting never drifts.

**Gram mode.**  When both operands are the *same* packed matrix
(``same_operand``) and the op is symmetric, the output satisfies
``C == C.T`` and the engine switches to a triangular shard plan
(:meth:`~repro.parallel.plan.ShardPlan.triangular`): only diagonal and
upper-triangular shards are computed; each off-diagonal shard also
reflects its block into the transpose slot (``mirror=True``,
counted by :data:`SHARDS_MIRRORED`).  The :data:`GEMM_WORD_OPS`
counter records only *computed* word-ops, so Gram runs show roughly
``(g + 1) / (2 g)`` of the full-path count.  Self-comparisons also
deduplicate panel cache entries across operand sides: the A-side and
B-side unpacked panels of the same row range share one entry
(:data:`~repro.observability.counters.PANEL_DEDUP_HITS`).

**Executors.**  A third axis, orthogonal to strategy and backend,
selects *where* shards run: ``executor="thread"`` (the default pool
above), ``"process"`` (a :class:`~repro.parallel.procpool.ProcessShardExecutor`
pool of worker processes with operands published through
shared memory / mmap -- see :mod:`repro.parallel.procpool`), or
``"auto"`` which honours the ``REPRO_EXECUTOR`` environment variable,
then the tuning cache's measured winner, then threads.  All three
paths -- serial, threaded, process -- execute shards through the same
:meth:`ParallelEngine._execute_shard` retry/quarantine/verify ladder,
so results are bit-exact across executors and the deterministic
counters match (worker processes ship per-shard counter deltas that
the parent merges).  Worker-process loss generalizes the resilience
ladder's device-loss rung: lost workers' shards re-run on survivors
and the run's :class:`~repro.resilience.report.ResilienceReport`
carries ``workers_lost``.

Per-shard timing and cache accounting surface as
:class:`ShardProfile` records (the host-side analogue of
:class:`repro.gpu.executor.KernelProfile`) inside a
:class:`ParallelReport`.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import (
    bit_gemm_backend,
    bit_gemm_blocked,
    bit_gemm_fast,
    bit_gemm_reference,
    same_operand,
)
from repro.kernels import (
    DEFAULT_BACKEND_NAME,
    KernelBackend,
    backend_available,
    env_backend_name,
    get_backend,
)
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.blis.packing import pack_a_panel, pack_b_panel
from repro.errors import (
    ConfigurationError,
    PackingError,
    ReproError,
    ShardExecutionError,
)
from repro.observability.counters import (
    GEMM_CALLS,
    GEMM_WORD_OPS,
    HOST_ENGINE_SECONDS,
    SHARD_RETRIES,
    SHARDS_EXECUTED,
    SHARDS_MIRRORED,
    SHARDS_QUARANTINED,
    TILES_VERIFIED,
    VERIFY_MISMATCHES,
)
from repro.observability.report import MetricsReport
from repro.observability.tracer import get_tracer
from repro.parallel.cache import DEFAULT_BUDGET_BYTES, CacheStats, PanelCache
from repro.parallel.plan import TRIANGULAR_MIN_BANDS, Shard, ShardPlan
from repro.resilience.faults import FiredFault
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import Disposition, classify
from repro.resilience.runtime import ResilienceContext, get_resilience
from repro.util.bitops import popcount, unpack_bits
from repro.util.validation import check_workers

if TYPE_CHECKING:
    from repro.parallel.procpool import ProcessShardExecutor
    from repro.parallel.tuner import TuningRecord

#: Shard kernel contract: (shard, a, b, op, plan, cache, dedup) ->
#: (output block, cache hits, cache misses).
ShardCompute = Callable[..., "tuple[np.ndarray, int, int]"]

__all__ = [
    "EXECUTORS",
    "PARALLEL_CROSSOVER_OPS",
    "REPRO_EXECUTOR_ENV",
    "ShardProfile",
    "ParallelReport",
    "ParallelEngine",
    "bit_gemm_parallel",
    "get_engine",
]

#: Environment variable selecting the shard executor when an engine is
#: constructed with ``executor="auto"`` (values: ``thread``,
#: ``process``).  CI's process leg sets ``REPRO_EXECUTOR=process`` to
#: run the whole suite through the process pool.
REPRO_EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Valid ``executor=`` arguments.
EXECUTORS = ("auto", "thread", "process")

#: Problems below this many packed-word operations run the serial
#: fallback: pool dispatch and panel-cache bookkeeping cost more than
#: they save on small tables.
PARALLEL_CROSSOVER_OPS = 1 << 21

#: Serial fallback stays on the genuine blocked walk up to this many
#: word-ops (mirrors the GPU executor's functional-path heuristic),
#: then switches to the identity-based fast driver.
SERIAL_BLOCKED_OP_LIMIT = 2_000_000

#: float32 dot products are exact below 2**24; wider k_c panels use
#: float64 for the GEMM strategy.
_FLOAT32_EXACT_BITS = 1 << 24

#: Host-default blocking parameters (also the ``plan=None`` default in
#: :meth:`ParallelEngine.run`): small ``lcm(m_r, n_r)`` so triangular
#: Gram plans can band finely.
_HOST_BLOCKING = {"m_c": 32, "k_c": 256, "m_r": 4, "n_r": 64}


def _gram_blocking(plan: BlockingPlan) -> BlockingPlan:
    """Pick the blocking a symmetric (Gram) run should shard with.

    Device-derived plans favour column-spanning ``n_r`` (one core row
    covers a whole column band), which inflates ``lcm(m_r, n_r)`` to
    the full extent and collapses the triangular decomposition to a
    single full-compute band.  The host walk has no such constraint:
    when the engine's default host blocking bands more finely than the
    given plan, substitute it.  Extents are preserved, the result is
    bit-exact for any valid blocking, and simulated device timing is
    unaffected (it is priced off the kernel's own plan upstream).
    """
    given_unit = math.lcm(plan.m_r, plan.n_r)
    host_unit = math.lcm(_HOST_BLOCKING["m_r"], _HOST_BLOCKING["n_r"])
    if given_unit <= host_unit:
        return plan
    given_bands = max(1, plan.m // given_unit)
    host_bands = max(1, plan.m // host_unit)
    if given_bands >= min(TRIANGULAR_MIN_BANDS, host_bands):
        return plan
    return BlockingPlan(m=plan.m, n=plan.n, k=plan.k, **_HOST_BLOCKING)


#: A micro-panels are batched in groups through the micro-kernel so
#: one NumPy dispatch covers ``group * n_panels`` micro-tiles.
_BLOCKED_GROUP = 4

#: The batched micro-kernel chunks the k dimension to bound the
#: broadcast temporary (words).
_BLOCKED_K_CHUNK = 64


@dataclass(frozen=True)
class ShardProfile:
    """Timing and accounting for one shard (KernelProfile analogue).

    ``mirrored`` marks Gram-mode off-diagonal shards: the block was
    computed once and additionally reflected into its transpose slot
    (the reflected word-ops are *not* in ``word_ops``).

    The resilience fields record the unhappy path: ``retries`` counts
    re-executions after retryable faults, ``quarantined`` marks a shard
    whose budget was exhausted and whose block was recomputed on the
    serial reference path, ``verified`` marks a shard the
    spot-verification guard re-checked, and ``mismatched`` marks a
    verified shard whose block disagreed with the reference (the
    reference block was adopted).
    """

    shard_id: int
    m_range: tuple[int, int]
    n_range: tuple[int, int]
    word_ops: int
    seconds: float
    strategy: str
    cache_hits: int
    cache_misses: int
    mirrored: bool = False
    retries: int = 0
    quarantined: bool = False
    verified: bool = False
    mismatched: bool = False

    @property
    def throughput_word_ops(self) -> float:
        """Word-ops per second of shard wall time."""
        return self.word_ops / self.seconds if self.seconds > 0 else 0.0


@dataclass
class ParallelReport:
    """What one engine run did: plan, per-shard records, cache stats.

    ``metrics`` carries the run-scoped observability delta (counters
    plus span aggregates) when tracing was enabled; ``None`` otherwise.
    ``resilience`` carries the fault-tolerance accounting when a
    resilience context was active during the run; ``None`` otherwise.
    ``executor`` names the resolved shard executor (``"thread"`` or
    ``"process"`` -- serial fallbacks report the executor the run
    *would* have sharded on).  For process runs, ``worker_events``
    carries injector events that fired inside worker processes plus
    the parent-synthesized ``worker-lost`` events, and
    ``workers_lost`` counts worker processes that died mid-run (their
    shards were re-executed on the survivors).
    """

    workers: int
    strategy: str
    used_parallel: bool
    seconds: float
    backend: str = DEFAULT_BACKEND_NAME
    shard_plan: ShardPlan | None = None
    shard_profiles: list[ShardProfile] = field(default_factory=list)
    cache_stats: CacheStats | None = None
    metrics: MetricsReport | None = None
    symmetric: bool = False
    resilience: ResilienceReport | None = None
    executor: str = "thread"
    worker_events: tuple[FiredFault, ...] = ()
    workers_lost: int = 0

    @property
    def n_shards(self) -> int:
        return len(self.shard_profiles)

    @property
    def n_mirrored(self) -> int:
        """Shards whose transpose slot was filled by reflection."""
        return sum(1 for p in self.shard_profiles if p.mirrored)

    @property
    def n_retries(self) -> int:
        """Total shard re-executions after retryable faults."""
        return sum(p.retries for p in self.shard_profiles)

    @property
    def n_quarantined(self) -> int:
        """Shards recomputed on the serial reference path."""
        return sum(1 for p in self.shard_profiles if p.quarantined)

    @property
    def total_word_ops(self) -> int:
        return sum(p.word_ops for p in self.shard_profiles)

    @property
    def shard_seconds(self) -> float:
        """Sum of per-shard wall times (> ``seconds`` when overlapped)."""
        return sum(p.seconds for p in self.shard_profiles)

    @property
    def throughput_word_ops(self) -> float:
        return self.total_word_ops / self.seconds if self.seconds > 0 else 0.0


def _check_operands(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a)
    b = np.asarray(b)
    for name, arr in (("A", a), ("B", b)):
        if arr.ndim != 2:
            raise PackingError(f"bit_gemm_parallel: {name} must be 2-D packed words")
        if arr.dtype not in (np.uint8, np.uint16, np.uint32, np.uint64):
            raise PackingError(
                f"bit_gemm_parallel: {name} has non-word dtype {arr.dtype}"
            )
    if a.dtype != b.dtype:
        raise PackingError(
            f"bit_gemm_parallel: dtype mismatch ({a.dtype} vs {b.dtype})"
        )
    if a.shape[1] != b.shape[1]:
        raise PackingError(
            f"bit_gemm_parallel: k mismatch (A has {a.shape[1]} words, "
            f"B has {b.shape[1]})"
        )
    return a, b


def _check_symmetric_run(a: np.ndarray, b: np.ndarray, op: ComparisonOp) -> None:
    """Validate an explicit ``symmetric=True`` Gram request.

    Equal-content copies are accepted alongside views -- the device
    pipeline stages operands through buffer copies, so a
    self-comparison reaches the engine as two arrays with identical
    words.  The content check is O(m*k), noise next to the GEMM.
    """
    if not op.is_symmetric:
        raise PackingError(
            f"ParallelEngine.run: symmetric=True is invalid for asymmetric "
            f"op {op.value!r}"
        )
    if not same_operand(a, b) and not (
        a.shape == b.shape and bool(np.array_equal(a, b))
    ):
        raise PackingError(
            "ParallelEngine.run: symmetric=True requires a self-comparison "
            "(operands must hold the same packed matrix)"
        )


class ParallelEngine:
    """Shards one bit-GEMM across a host thread pool.

    Parameters
    ----------
    workers:
        Pool threads.  Default: ``os.cpu_count()``.  ``1`` always takes
        the serial fallback.
    cache_bytes:
        Byte budget of the per-run packed-panel cache.
    strategy:
        ``"auto"`` (= ``"gemm"``), ``"gemm"``, or ``"blocked"``.
    oversubscribe:
        Shards per worker the plan aims for (see :class:`ShardPlan`).
    crossover_ops:
        Problems below this many word-ops run serially.
    backend:
        Kernel-ABI backend (:mod:`repro.kernels`).  ``"auto"`` honours
        the ``REPRO_BACKEND`` environment variable, then the persisted
        tuning record for the problem's size class, then the reference
        backend.  A non-reference backend swaps the shard compute for
        its :meth:`~repro.kernels.KernelBackend.bit_gemm_panel`
        (word-op accounting unchanged -- shards record the same counts
        whichever backend computes them).
    executor:
        Where shards run: ``"thread"`` (in-process pool),
        ``"process"`` (worker processes with shared-memory operands,
        :mod:`repro.parallel.procpool`), or ``"auto"`` which resolves,
        in order: the ``REPRO_EXECUTOR`` environment variable, the
        tuning record's measured winner, then ``"thread"``.

    One engine owns one lazily created pool; it is reused across runs
    and across callers -- :func:`get_engine` hands the same engine to
    every simulated device, so a multi-GPU run shares a single pool.
    """

    STRATEGIES = ("auto", "gemm", "blocked")

    def __init__(
        self,
        workers: int | None = None,
        cache_bytes: int = DEFAULT_BUDGET_BYTES,
        strategy: str = "auto",
        oversubscribe: int = 2,
        crossover_ops: int = PARALLEL_CROSSOVER_OPS,
        backend: str = "auto",
        executor: str = "auto",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        try:
            check_workers("ParallelEngine: workers", workers)
        except ValueError as exc:
            # ConfigurationError subclasses ValueError, so callers
            # catching either see the shared validator's message.
            raise ConfigurationError(str(exc)) from None
        if strategy not in self.STRATEGIES:
            raise ConfigurationError(
                f"ParallelEngine: unknown strategy {strategy!r} "
                f"(valid: {', '.join(self.STRATEGIES)})"
            )
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"ParallelEngine: unknown executor {executor!r} "
                f"(valid: {', '.join(EXECUTORS)})"
            )
        if backend != "auto":
            get_backend(backend)  # unknown names fail at construction
        self.workers = workers
        self.cache_bytes = cache_bytes
        self.strategy = strategy
        self.oversubscribe = oversubscribe
        self.crossover_ops = crossover_ops
        self.backend = backend
        self.executor = executor
        self._pool: ThreadPoolExecutor | None = None
        self._procpool: "ProcessShardExecutor | None" = None
        self._pool_lock = threading.Lock()

    # -- pool management -------------------------------------------------------

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def _get_procpool(self) -> "ProcessShardExecutor":
        with self._pool_lock:
            if self._procpool is None:
                # Imported lazily: the process tier pulls in
                # multiprocessing machinery most runs never need.
                from repro.parallel.procpool import ProcessShardExecutor

                self._procpool = ProcessShardExecutor(self.workers)
            return self._procpool

    def shutdown(self) -> None:
        """Release the pools (a later run recreates them)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._procpool is not None:
                self._procpool.shutdown()
                self._procpool = None

    # -- entry point -----------------------------------------------------------

    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp | str = ComparisonOp.AND,
        plan: BlockingPlan | None = None,
        force_parallel: bool | None = None,
        symmetric: bool | None = None,
    ) -> tuple[np.ndarray, ParallelReport]:
        """Compute ``C[i, j] = sum_k POPC(op(A[i,k], B[j,k]))``.

        Returns the int64 table and a :class:`ParallelReport`.
        ``force_parallel`` overrides the crossover heuristic (tests and
        benchmarks use it); ``plan`` pins the blocking the shard plan
        derives from.  ``symmetric`` controls Gram mode: ``None``
        (default) auto-detects (same matrix on both sides + symmetric
        op), ``True`` requires and validates it, ``False`` disables it.
        """
        a, b = _check_operands(a, b)
        op = get_microkernel(op).op
        m, k = a.shape
        n = b.shape[0]
        if symmetric is None:
            symmetric = op.is_symmetric and same_operand(a, b)
        elif symmetric:
            _check_symmetric_run(a, b, op)
        if plan is None:
            plan = BlockingPlan(m=m, n=n, k=k, **_HOST_BLOCKING)
        if (plan.m, plan.n, plan.k) != (m, n, k):
            raise PackingError(
                f"ParallelEngine.run: plan extents {(plan.m, plan.n, plan.k)} "
                f"do not match operands {(m, n, k)}"
            )
        if symmetric:
            plan = _gram_blocking(plan)
        total_ops = plan.total_ops()
        strategy = self.strategy
        crossover = self.crossover_ops
        backend_name = self.backend
        if backend_name == "auto":
            env_name = env_backend_name()
            if env_name is not None:
                backend_name = env_name
        executor = self.executor
        if executor == "auto":
            env_executor = os.environ.get(REPRO_EXECUTOR_ENV, "").strip()
            if env_executor:
                if env_executor not in ("thread", "process"):
                    raise ConfigurationError(
                        f"{REPRO_EXECUTOR_ENV}: unknown executor "
                        f"{env_executor!r} (valid: thread, process)"
                    )
                executor = env_executor
        tuned: TuningRecord | None = None
        if strategy == "auto" or backend_name == "auto" or executor == "auto":
            tuned, executor = self._consult_tuner(
                op, m, n, k, a.dtype.itemsize * 8, executor
            )
        if strategy == "auto":
            if tuned is not None:
                # "panel" records belong to a backend run; the numpy
                # strategies fall back to the default in that case.
                if tuned.strategy in ("gemm", "blocked"):
                    strategy = tuned.strategy
                else:
                    strategy = "gemm"
                if symmetric and not tuned.triangular:
                    symmetric = False
                if tuned.crossover_ops is not None:
                    crossover = tuned.crossover_ops
            else:
                strategy = "gemm"
        if backend_name == "auto":
            # Untuned auto stays on the reference backend; the tuner's
            # measured per-machine winner upgrades it.
            if tuned is not None and backend_available(tuned.backend):
                backend_name = tuned.backend
            else:
                backend_name = DEFAULT_BACKEND_NAME
        use_parallel = (
            self.workers > 1 and total_ops >= crossover
            if force_parallel is None
            else force_parallel and self.workers >= 1
        )
        obs = get_tracer()
        res = get_resilience()
        counters_before = obs.counters.snapshot() if obs.enabled else None
        spans_before = obs.n_spans()
        events_before = res.injector.n_fired()
        with obs.span(
            "parallel.run", m=m, n=n, k=k, workers=self.workers
        ).set(parallel=use_parallel, symmetric=symmetric):
            if not use_parallel:
                c, report = self._run_serial(
                    a, b, op, plan, total_ops, symmetric, backend_name
                )
            else:
                c, report = self._run_sharded(
                    a, b, op, plan, strategy, symmetric, backend_name,
                    executor,
                )
        obs.counters.add(HOST_ENGINE_SECONDS, report.seconds)
        if obs.enabled:
            report.metrics = MetricsReport.from_delta(
                obs, counters_before, spans_before
            )
        if res.active or report.workers_lost:
            # Worker-process events (injector firings shipped from
            # workers plus parent-synthesized worker-lost records) join
            # the parent injector's log, keeping `fired_count` exact
            # across executors; thread/serial runs ship none.  Without
            # an active context the null injector drops absorbed
            # events, so fold them into the report directly instead.
            if res.active and report.worker_events:
                res.injector.absorb(report.worker_events)
                events = tuple(res.injector.fired()[events_before:])
            else:
                events = (
                    tuple(res.injector.fired()[events_before:])
                    + report.worker_events
                )
            report.resilience = ResilienceReport(
                faults_injected=len(events),
                retries=report.n_retries,
                quarantined=report.n_quarantined,
                tiles_verified=sum(
                    1 for p in report.shard_profiles if p.verified
                ),
                verify_mismatches=sum(
                    1 for p in report.shard_profiles if p.mismatched
                ),
                workers_lost=report.workers_lost,
                events=events,
            )
        return c, report

    def _consult_tuner(
        self,
        op: ComparisonOp,
        m: int,
        n: int,
        k: int,
        word_bits: int,
        executor: str,
    ) -> "tuple[TuningRecord | None, str]":
        """Best-effort lookup in the persisted host tuning cache.

        Returns ``(record, executor)``.  With ``executor="auto"`` the
        thread and process records for the size class are compared and
        the measured winner picked (``"thread"`` when neither exists
        -- untuned hosts stay on the in-process pool).  Any failure
        (missing, corrupt, or stale cache; import problems) degrades to
        ``(None, ...)`` -- ``"auto"`` then falls back to its built-in
        default.  Imported lazily to avoid an import cycle (the tuner
        benchmarks through this engine).
        """
        fallback = "thread" if executor == "auto" else executor
        try:
            from repro.parallel.tuner import lookup_tuned

            if executor != "auto":
                record = lookup_tuned(
                    op, m, n, k, word_bits, self.workers, executor=executor
                )
                return record, executor
            thread_record = lookup_tuned(
                op, m, n, k, word_bits, self.workers, executor="thread"
            )
            process_record = lookup_tuned(
                op, m, n, k, word_bits, self.workers, executor="process"
            )
            if process_record is not None and (
                thread_record is None
                or process_record.best_seconds < thread_record.best_seconds
            ):
                return process_record, "process"
            return thread_record, "thread"
        except Exception:  # pragma: no cover - defensive degradation
            return None, fallback

    # -- serial fallback ---------------------------------------------------------

    def _run_serial(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        total_ops: int,
        symmetric: bool = False,
        backend_name: str = DEFAULT_BACKEND_NAME,
    ) -> tuple[np.ndarray, ParallelReport]:
        res = get_resilience()
        if backend_name != DEFAULT_BACKEND_NAME and not symmetric:
            # Non-reference backends compute whole panels; symmetric
            # serial runs stay on the triangular reference walk so
            # Gram-mode word-op accounting is identical across
            # backends (the panel ABI has no triangular form -- the
            # savings live in the shard plan, which serial runs skip).
            strategy = "serial-panel"

            def driver() -> np.ndarray:
                return bit_gemm_backend(a, b, op, backend=backend_name)

        elif total_ops <= SERIAL_BLOCKED_OP_LIMIT:
            backend_name = DEFAULT_BACKEND_NAME
            strategy = "serial-blocked"

            def driver() -> np.ndarray:
                return bit_gemm_blocked(a, b, op, plan, symmetric=symmetric)

        else:
            backend_name = DEFAULT_BACKEND_NAME
            strategy = "serial-fast"

            def driver() -> np.ndarray:
                return bit_gemm_fast(a, b, op, symmetric=symmetric)

        def compute(
            shard: Shard,
            a_: np.ndarray,
            b_: np.ndarray,
            op_: ComparisonOp,
            plan_: BlockingPlan,
            cache_: PanelCache | None,
            dedup_: bool,
        ) -> tuple[np.ndarray, int, int]:
            get_tracer().counters.add(SHARDS_EXECUTED)
            return driver(), 0, 0

        # The serial run goes through the same resilient wrapper as
        # pool shards, addressed as shard 0 -- one fault model whether
        # or not the crossover picked the pool.
        whole = Shard(
            shard_id=0,
            grid_row=0,
            grid_col=0,
            m_range=(0, plan.m),
            n_range=(0, plan.n),
        )
        start = time.perf_counter()
        c = np.zeros((plan.m, plan.n), dtype=np.int64)
        profile = self._execute_shard(
            compute, whole, a, b, op, plan, None, c, False, strategy, res
        )
        elapsed = time.perf_counter() - start
        report = ParallelReport(
            workers=1,
            strategy=strategy,
            used_parallel=False,
            seconds=elapsed,
            backend=backend_name,
            shard_profiles=[profile],
            symmetric=symmetric,
        )
        return c, report

    # -- sharded execution ---------------------------------------------------------

    def _resolve_shard_compute(
        self, strategy: str, backend_name: str
    ) -> tuple[ShardCompute, str]:
        """Pick the shard kernel for a (strategy, backend) pair.

        Shared by the threaded path and by worker processes (each
        worker resolves its *own* backend -- see
        :mod:`repro.parallel.procpool`), so every executor runs the
        identical compute for identical inputs.  Returns the kernel and
        the effective strategy label (non-reference backends report
        ``"panel"``).
        """
        if backend_name != DEFAULT_BACKEND_NAME:
            return _make_backend_compute(get_backend(backend_name)), "panel"
        if strategy == "gemm":
            return self._compute_shard_gemm, strategy
        return self._compute_shard_blocked, strategy

    def _run_sharded(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        strategy: str,
        symmetric: bool = False,
        backend_name: str = DEFAULT_BACKEND_NAME,
        executor: str = "thread",
    ) -> tuple[np.ndarray, ParallelReport]:
        shard_plan = ShardPlan.from_blocking(
            plan, self.workers, oversubscribe=self.oversubscribe,
            symmetric=symmetric,
        )
        # One logical GEMM however many shards execute it; per-shard
        # word-ops sum to plan.total_ops() because shards partition C
        # (Gram plans: to the computed triangle's share of it).
        get_tracer().counters.add(GEMM_CALLS)
        compute, strategy = self._resolve_shard_compute(strategy, backend_name)
        # Cross-side panel dedup is valid whenever both operands hold
        # the same matrix -- even for asymmetric ops (full plans).
        # symmetric=True implies equal content (validated upstream).
        dedup = symmetric or same_operand(a, b)
        res = get_resilience()

        if executor == "process" and shard_plan.n_shards > 1:
            start = time.perf_counter()
            result = self._get_procpool().execute(
                a, b, op, plan, shard_plan, strategy, backend_name, dedup,
                res, self.cache_bytes,
            )
            elapsed = time.perf_counter() - start
            report = ParallelReport(
                workers=self.workers,
                strategy=strategy,
                used_parallel=True,
                seconds=elapsed,
                backend=backend_name,
                shard_plan=shard_plan,
                shard_profiles=result.profiles,
                symmetric=symmetric,
                executor="process",
                worker_events=result.worker_events,
                workers_lost=result.workers_lost,
            )
            return result.c, report

        cache = PanelCache(self.cache_bytes)
        c = np.zeros((plan.m, plan.n), dtype=np.int64)
        start = time.perf_counter()
        if shard_plan.n_shards <= 1:
            profiles = [
                self._execute_shard(
                    compute, shard, a, b, op, plan, cache, c, dedup,
                    strategy, res,
                )
                for shard in shard_plan.shards
            ]
        else:
            pool = self._get_pool()
            futures = [
                pool.submit(
                    self._execute_shard,
                    compute, shard, a, b, op, plan, cache, c, dedup,
                    strategy, res,
                )
                for shard in shard_plan.shards
            ]
            profiles = [f.result() for f in futures]
        elapsed = time.perf_counter() - start

        profiles.sort(key=lambda p: p.shard_id)
        report = ParallelReport(
            workers=self.workers,
            strategy=strategy,
            used_parallel=True,
            seconds=elapsed,
            backend=backend_name,
            shard_plan=shard_plan,
            shard_profiles=profiles,
            cache_stats=cache.stats(),
            symmetric=symmetric,
            # A single-shard "process" request degrades to in-thread
            # execution above; report the tier that actually ran.
            executor="thread" if executor == "process" else executor,
        )
        return c, report

    # -- resilient shard execution -----------------------------------------------

    def _reference_block(
        self, shard: Shard, a: np.ndarray, b: np.ndarray, op: ComparisonOp
    ) -> np.ndarray:
        """Serial popcount oracle for one shard's output block.

        Used for quarantine recompute and spot verification; bit-exact
        with both shard strategies by the engine's correctness
        contract.
        """
        m0, m1 = shard.m_range
        n0, n1 = shard.n_range
        return bit_gemm_reference(a[m0:m1], b[n0:n1], op)

    def _execute_shard(
        self,
        compute: ShardCompute,
        shard: Shard,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        cache: PanelCache | None,
        c: np.ndarray,
        dedup: bool,
        strategy: str,
        res: ResilienceContext,
    ) -> ShardProfile:
        """Run one shard under the active resilience context.

        The degradation ladder (docs/RESILIENCE.md): retryable faults
        are re-attempted under the policy's backoff budget; an
        exhausted budget quarantines the shard onto the serial
        reference recompute (bit-exact) or, with quarantine disabled,
        raises :class:`~repro.errors.ShardExecutionError`.  FATAL and
        DEGRADE errors propagate unchanged.  After a successful
        compute, sampled shards are spot-verified against the
        reference; a mismatch (e.g. an injected bit flip) adopts the
        reference block, so corrupt tiles never reach the caller.
        """
        obs = get_tracer()
        injector = res.injector
        start = time.perf_counter()
        attempt = 0
        retries = 0
        quarantined = False
        while True:
            try:
                injector.check_shard(shard.shard_id, attempt)
                block, hits, misses = compute(
                    shard, a, b, op, plan, cache, dedup
                )
                block = injector.corrupt_block(block, shard.shard_id)
                break
            except ReproError as exc:
                if classify(exc) is not Disposition.RETRY:
                    raise
                if attempt + 1 < res.policy.max_attempts:
                    retries += 1
                    obs.counters.add(SHARD_RETRIES)
                    res.policy.wait(retries - 1)
                    attempt += 1
                    continue
                if res.policy.quarantine:
                    obs.counters.add(SHARDS_QUARANTINED)
                    quarantined = True
                    with obs.span(
                        "resilience.quarantine", shard=shard.shard_id
                    ):
                        block = self._reference_block(shard, a, b, op)
                    hits = misses = 0
                    break
                raise ShardExecutionError(
                    f"shard {shard.shard_id} failed after {attempt + 1} "
                    f"attempt(s): {exc}",
                    shard_id=shard.shard_id,
                ) from exc
        verified = False
        mismatched = False
        if not quarantined and res.should_verify(shard.shard_id):
            verified = True
            obs.counters.add(TILES_VERIFIED)
            with obs.span("resilience.verify", shard=shard.shard_id):
                reference = self._reference_block(shard, a, b, op)
            if not np.array_equal(block, reference):
                mismatched = True
                obs.counters.add(VERIFY_MISMATCHES)
                block = reference
        m0, m1 = shard.m_range
        n0, n1 = shard.n_range
        c[m0:m1, n0:n1] = block
        if shard.mirror:
            # Transpose slot is strictly below the computed band grid:
            # disjoint from every computed slot, race-free.
            mm0, mm1 = shard.mirror_m_range
            mn0, mn1 = shard.mirror_n_range
            c[mm0:mm1, mn0:mn1] = block.T
            obs.counters.add(SHARDS_MIRRORED)
        return ShardProfile(
            shard_id=shard.shard_id,
            m_range=shard.m_range,
            n_range=shard.n_range,
            word_ops=shard.word_ops(plan.k),
            seconds=time.perf_counter() - start,
            strategy=strategy,
            cache_hits=hits,
            cache_misses=misses,
            mirrored=shard.mirror,
            retries=retries,
            quarantined=quarantined,
            verified=verified,
            mismatched=mismatched,
        )

    # -- shard kernels ---------------------------------------------------------

    def _compute_shard_gemm(
        self,
        shard: Shard,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        cache: PanelCache,
        dedup: bool = False,
    ) -> tuple[np.ndarray, int, int]:
        """Identity-based shard kernel: one BLAS GEMM per k_c panel.

        With ``dedup=True`` (self-comparison) the A-side and B-side
        panels of the same row range share one cache key, so whichever
        side unpacks a range first serves the other side's requests.
        Returns ``(block, cache_hits, cache_misses)``; the resilient
        wrapper owns the C write and the profile.
        """
        obs = get_tracer()
        obs.counters.add(SHARDS_EXECUTED)
        obs.counters.add(GEMM_WORD_OPS, shard.word_ops(plan.k))
        with obs.span("parallel.shard", shard=shard.shard_id, strategy="gemm"):
            hits = misses = 0
            m0, m1 = shard.m_range
            n0, n1 = shard.n_range
            word_bits = a.dtype.itemsize * 8
            dots = np.zeros((shard.m_size, shard.n_size), dtype=np.int64)
            for k0, k1 in plan.k_panels():
                dtype = (
                    np.float32
                    if (k1 - k0) * word_bits < _FLOAT32_EXACT_BITS
                    else np.float64
                )

                def build_a(k0=k0, k1=k1, dtype=dtype):
                    return unpack_bits(a[m0:m1, k0:k1]).astype(dtype)

                def build_b(k0=k0, k1=k1, dtype=dtype):
                    return unpack_bits(b[n0:n1, k0:k1]).astype(dtype)

                key_a = (
                    ("bits", m0, m1, k0, k1, dtype)
                    if dedup
                    else ("Abits", m0, m1, k0, k1, dtype)
                )
                key_b = (
                    ("bits", n0, n1, k0, k1, dtype)
                    if dedup
                    else ("Bbits", n0, n1, k0, k1, dtype)
                )
                bits_a, hit_a = cache.get_or_build_flag(key_a, build_a, side="A")
                bits_b, hit_b = cache.get_or_build_flag(key_b, build_b, side="B")
                hits += hit_a + hit_b
                misses += (not hit_a) + (not hit_b)
                dots += np.rint(bits_a @ bits_b.T).astype(np.int64)

            if op in (ComparisonOp.AND, ComparisonOp.AND_PRENEGATED):
                block = dots
            else:
                pop_a, hit = cache.get_or_build_flag(
                    ("pop", m0, m1) if dedup else ("Apop", m0, m1),
                    lambda: popcount(a[m0:m1]).sum(axis=1),
                    side="A",
                )
                hits += hit
                misses += not hit
                if op is ComparisonOp.XOR:
                    pop_b, hit = cache.get_or_build_flag(
                        ("pop", n0, n1) if dedup else ("Bpop", n0, n1),
                        lambda: popcount(b[n0:n1]).sum(axis=1),
                        side="B",
                    )
                    hits += hit
                    misses += not hit
                    block = pop_a[:, None] + pop_b[None, :] - 2 * dots
                elif op is ComparisonOp.ANDNOT:
                    block = pop_a[:, None] - dots
                else:  # pragma: no cover - ops are exhaustive above
                    raise PackingError(
                        f"_compute_shard_gemm: unhandled op {op!r}"
                    )

            return block, hits, misses

    def _compute_shard_blocked(
        self,
        shard: Shard,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        cache: PanelCache,
        dedup: bool = False,
    ) -> tuple[np.ndarray, int, int]:
        """BLIS-structured shard kernel: packed panels, batched tiles.

        ``dedup`` is accepted for signature uniformity with
        :meth:`_compute_shard_gemm`; the blocked strategy's A and B
        pack layouts differ (``m_r`` row panels vs ``n_r`` column
        panels), so its cache keys stay side-specific.  Returns
        ``(block, cache_hits, cache_misses)``.
        """
        obs = get_tracer()
        obs.counters.add(SHARDS_EXECUTED)
        obs.counters.add(GEMM_WORD_OPS, shard.word_ops(plan.k))
        with obs.span("parallel.shard", shard=shard.shard_id, strategy="blocked"):
            hits = misses = 0
            kernel = get_microkernel(op)
            m0, m1 = shard.m_range
            n0, n1 = shard.n_range
            m_r, n_r, m_c = plan.m_r, plan.n_r, plan.m_c
            block = np.zeros((shard.m_size, shard.n_size), dtype=np.int64)
            for k0, k1 in plan.k_panels():

                def build_b(k0=k0, k1=k1):
                    return pack_b_panel(b[n0:n1, k0:k1].T, n_r)

                b_packed, hit = cache.get_or_build_flag(
                    ("B", n_r, n0, n1, k0, k1), build_b
                )
                hits += hit
                misses += not hit
                # Loop 3: m_c panels of A inside this shard's M range.
                for pm0 in range(m0, m1, m_c):
                    pm1 = min(pm0 + m_c, m1)

                    def build_a(pm0=pm0, pm1=pm1, k0=k0, k1=k1):
                        return pack_a_panel(a[pm0:pm1, k0:k1], m_r)

                    a_packed, hit = cache.get_or_build_flag(
                        ("A", m_r, pm0, pm1, k0, k1), build_a
                    )
                    hits += hit
                    misses += not hit
                    _batched_micro_update(
                        block, a_packed, b_packed, kernel.combine,
                        pm0 - m0, shard.m_size, shard.n_size, m_r, n_r,
                    )
            return block, hits, misses


def _batched_micro_update(
    block: np.ndarray,
    a_packed: np.ndarray,
    b_packed: np.ndarray,
    combine,
    row_offset: int,
    m_size: int,
    n_size: int,
    m_r: int,
    n_r: int,
) -> None:
    """Rank-k_c update of ``block`` from packed panels, micro-tiles batched.

    Identical arithmetic to :func:`repro.blis.gemm._micro_update`, but
    each NumPy dispatch covers a *group* of A micro-panels against all
    B micro-panels of the shard, with the k dimension chunked to bound
    the broadcast temporary.
    """
    n_a_panels, k_len, _ = a_packed.shape
    n_b_panels = b_packed.shape[0]
    padded_cols = n_b_panels * n_r
    for g0 in range(0, n_a_panels, _BLOCKED_GROUP):
        g1 = min(g0 + _BLOCKED_GROUP, n_a_panels)
        group = a_packed[g0:g1]  # (g, k, m_r)
        acc = None
        for kc0 in range(0, k_len, _BLOCKED_K_CHUNK):
            kc1 = min(kc0 + _BLOCKED_K_CHUNK, k_len)
            # (g, pb, k_chunk, m_r, n_r) broadcast micro-kernel batch.
            combined = combine(
                group[:, None, kc0:kc1, :, None],
                b_packed[None, :, kc0:kc1, None, :],
            )
            partial = popcount(combined).sum(axis=2)
            acc = partial if acc is None else acc + partial
        # (g, pb, m_r, n_r) -> (g * m_r, pb * n_r), crop padding.
        tiles = acc.transpose(0, 2, 1, 3).reshape((g1 - g0) * m_r, padded_cols)
        r0 = row_offset + g0 * m_r
        r1 = min(row_offset + g1 * m_r, m_size)
        block[r0:r1, :n_size] += tiles[: r1 - r0, :n_size]


def _make_backend_compute(backend: KernelBackend) -> ShardCompute:
    """Shard kernel delegating to a kernel-ABI backend panel.

    Counter accounting is identical to the built-in shard kernels
    (``SHARDS_EXECUTED`` + the shard's word-ops), so the deterministic
    counters the regression gate compares are backend-invariant.  The
    panel cache is unused: backends consume packed words directly.
    """
    name = backend.info.name

    def compute(
        shard: Shard,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        cache: PanelCache | None,
        dedup: bool,
    ) -> tuple[np.ndarray, int, int]:
        obs = get_tracer()
        obs.counters.add(SHARDS_EXECUTED)
        obs.counters.add(GEMM_WORD_OPS, shard.word_ops(plan.k))
        with obs.span(
            "parallel.shard", shard=shard.shard_id, strategy=f"panel:{name}"
        ):
            m0, m1 = shard.m_range
            n0, n1 = shard.n_range
            block = backend.bit_gemm_panel(a[m0:m1], b[n0:n1], op)
        return block, 0, 0

    return compute


# -- module-level conveniences ---------------------------------------------------

_ENGINES: dict[tuple[int, str, str, str], ParallelEngine] = {}
_ENGINES_LOCK = threading.Lock()


def get_engine(
    workers: int | None = None,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> ParallelEngine:
    """Process-wide engine per (workers, strategy, backend, executor).

    Every caller asking for the same worker count shares one pool --
    this is how the multi-GPU executor runs all simulated devices on a
    single pool instead of one per device, and how repeated process
    runs reuse one set of spawned workers.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    key = (workers, strategy, backend, executor)
    with _ENGINES_LOCK:
        engine = _ENGINES.get(key)
        if engine is None:
            engine = ParallelEngine(
                workers=workers, strategy=strategy, backend=backend,
                executor=executor,
            )
            _ENGINES[key] = engine
        return engine


def bit_gemm_parallel(
    a: np.ndarray,
    b: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.AND,
    workers: int | None = None,
    plan: BlockingPlan | None = None,
    force_parallel: bool | None = None,
    symmetric: bool | None = None,
    strategy: str = "auto",
    backend: str = "auto",
    executor: str = "auto",
) -> np.ndarray:
    """One-shot parallel bit-GEMM (drop-in for the serial drivers)."""
    c, _ = get_engine(workers, strategy, backend, executor).run(
        a, b, op, plan=plan, force_parallel=force_parallel, symmetric=symmetric
    )
    return c


def recommended_workers() -> int:
    """Worker count the CLI default uses: all cores, capped sanely."""
    return max(1, min(16, os.cpu_count() or 1))
