"""Memoizing packed-panel cache shared by shards of one parallel run.

The serial blocked driver re-packs every ``n_r`` B micro-panel once
per ``m_c`` A panel (the classic BLIS trade-off: pack buffers live in
fast memory, so they are rebuilt rather than kept).  On the host the
constraint inverts -- memory is plentiful, packing is pure Python/NumPy
overhead -- so the parallel engine memoizes pack products: shards that
share a ``k_c`` panel (same grid row for A panels, same grid column
for B panels) pack it once and reuse the buffer.

:class:`PanelCache` is a thread-safe byte-budgeted LRU.  Values are
NumPy arrays; the budget counts ``nbytes``.  Builds run *outside* the
lock so a slow pack does not serialize the pool; if two shards race to
build the same panel, both build and the second insert wins -- wasted
work but identical bytes, so correctness is unaffected (both count as
misses in the stats).

Hits, misses, evictions and build bytes are mirrored to the process
observability counters (:mod:`repro.observability.counters`) as they
happen; with tracing disabled those calls hit the no-op registry.

**Operand deduplication.**  Keys are chosen by the engine so that the
A-side and B-side panels of the *same* matrix share one entry (Gram
mode: both operands are the same array, so the unpacked bit panel of
rows ``[r0:r1)`` is identical whichever side asks for it).  The cache
itself stays side-agnostic, but callers may tag each request with the
requesting ``side``; a hit served to a different side than the one
that built the entry is counted as a *dedup hit* -- pack work and
cache footprint that a side-keyed cache would have duplicated.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.errors import ConfigurationError
from repro.observability.counters import (
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    PANEL_BUILDS,
    PANEL_BYTES,
    PANEL_DEDUP_HITS,
)
from repro.observability.tracer import get_tracer

__all__ = ["CacheStats", "PanelCache"]

#: Default byte budget: plenty for every test/bench problem while
#: bounding worst-case growth on huge operands.
DEFAULT_BUDGET_BYTES = 256 << 20


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one cache's accounting."""

    hits: int
    misses: int
    evictions: int
    oversize: int
    current_bytes: int
    peak_bytes: int
    budget_bytes: int
    dedup_hits: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class PanelCache:
    """Thread-safe LRU keyed by hashable panel descriptors.

    Parameters
    ----------
    budget_bytes:
        Total ``nbytes`` the cache may retain.  Least-recently-used
        entries are evicted to stay within budget.  A single panel
        larger than the whole budget is returned uncached (counted in
        ``stats().oversize``).
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        if budget_bytes <= 0:
            raise ConfigurationError(
                f"PanelCache: budget_bytes must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        # The registry active at construction; caches are per-run, so
        # a run started under an enabled tracer reports to it even if
        # tracing is toggled mid-run.
        self._counters = get_tracer().counters
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[np.ndarray, str | None]] = (
            OrderedDict()
        )
        self._current_bytes = 0
        self._peak_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversize = 0
        self._dedup_hits = 0

    def get_or_build(
        self,
        key: Hashable,
        build: Callable[[], np.ndarray],
        side: str | None = None,
    ) -> np.ndarray:
        """Return the cached panel for ``key``, building it on miss."""
        panel, _ = self.get_or_build_flag(key, build, side=side)
        return panel

    def get_or_build_flag(
        self,
        key: Hashable,
        build: Callable[[], np.ndarray],
        side: str | None = None,
    ) -> tuple[np.ndarray, bool]:
        """Like :meth:`get_or_build`, also reporting whether it hit.

        The flag lets callers keep per-shard hit/miss tallies without
        racing on the global counters.  ``side`` optionally tags the
        requesting operand side (``"A"``/``"B"``); a hit served to a
        side other than the builder's counts as a dedup hit.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                cached, built_by = entry
                self._entries.move_to_end(key)
                self._hits += 1
                self._counters.add(CACHE_HITS)
                if side is not None and built_by is not None and side != built_by:
                    self._dedup_hits += 1
                    self._counters.add(PANEL_DEDUP_HITS)
                return cached, True
            self._misses += 1
        self._counters.add(CACHE_MISSES)
        panel = build()
        self._counters.add(PANEL_BUILDS)
        self._counters.add(PANEL_BYTES, int(panel.nbytes))
        self._insert(key, panel, side)
        return panel, False

    def _insert(
        self, key: Hashable, panel: np.ndarray, side: str | None = None
    ) -> None:
        nbytes = int(panel.nbytes)
        with self._lock:
            if nbytes > self.budget_bytes:
                self._oversize += 1
                return
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._current_bytes -= int(previous[0].nbytes)
            self._entries[key] = (panel, side)
            self._current_bytes += nbytes
            while self._current_bytes > self.budget_bytes:
                _, (evicted, _) = self._entries.popitem(last=False)
                self._current_bytes -= int(evicted.nbytes)
                self._evictions += 1
                self._counters.add(CACHE_EVICTIONS)
            self._peak_bytes = max(self._peak_bytes, self._current_bytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (accounting is preserved)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def stats(self) -> CacheStats:
        """Snapshot of hit/miss/eviction accounting."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                oversize=self._oversize,
                current_bytes=self._current_bytes,
                peak_bytes=self._peak_bytes,
                budget_bytes=self.budget_bytes,
                dedup_hits=self._dedup_hits,
            )
