"""Shard planning: partitioning one bit-GEMM across host workers.

The BLIS five-loop structure exposes independent work: every
``m_r x n_r`` micro-tile of C inside a ``k_c`` panel can be computed
without synchronization, because each output tile is owned by exactly
one producer (Section IV-C of the paper parallelizes loops 1 and 2
across device cores for the same reason).  :class:`ShardPlan` applies
the identical decomposition one level up, on the host: the ``j_c``
(N) and ``i_c`` (M) loops are split into contiguous *shards*, each a
rectangular block of C that one worker thread computes end to end.

The plan is **derived from** a :class:`~repro.blis.blocking.BlockingPlan`
-- shard boundaries are aligned to the plan's ``m_r``/``n_r``
micro-tile units via the same :func:`~repro.blis.blocking.split_in_units`
arithmetic the device core grid uses -- so host sharding and device
blocking cannot drift apart: a shard always covers whole micro-tiles,
and every packed panel a shard needs is a sub-panel the serial blocked
driver would also have produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.blis.blocking import BlockingPlan, split_in_units
from repro.errors import ConfigurationError

__all__ = ["Shard", "ShardPlan"]

#: How many shards to aim for per worker.  Oversubscription keeps the
#: pool busy when shards finish unevenly (edge shards are smaller).
DEFAULT_OVERSUBSCRIBE = 2


@dataclass(frozen=True)
class Shard:
    """One worker's share of the output: a rectangular block of C."""

    shard_id: int
    grid_row: int
    grid_col: int
    m_range: tuple[int, int]
    n_range: tuple[int, int]

    @property
    def m_size(self) -> int:
        return self.m_range[1] - self.m_range[0]

    @property
    def n_size(self) -> int:
        return self.n_range[1] - self.n_range[0]

    @property
    def is_empty(self) -> bool:
        return self.m_size == 0 or self.n_size == 0

    def word_ops(self, k: int) -> int:
        """Packed-word comparison operations this shard performs."""
        return self.m_size * self.n_size * k


@dataclass(frozen=True)
class ShardPlan:
    """A host-level partition of one blocked bit-GEMM.

    Attributes
    ----------
    blocking:
        The :class:`BlockingPlan` this shard plan was derived from.
        Shard boundaries are aligned to its ``m_r``/``n_r`` units and
        shards iterate its ``k_c`` panels.
    grid_rows, grid_cols:
        The shard grid: M is split into ``grid_rows`` bands, N into
        ``grid_cols`` bands.
    shards:
        All non-empty shards, row-major over the grid, with
        contiguous ``shard_id`` starting at 0.
    """

    blocking: BlockingPlan
    grid_rows: int
    grid_cols: int
    shards: tuple[Shard, ...]

    @classmethod
    def from_blocking(
        cls,
        blocking: BlockingPlan,
        workers: int,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
    ) -> "ShardPlan":
        """Derive a shard plan targeting ``workers`` pool threads.

        Aims for ``workers * oversubscribe`` shards, splitting the N
        dimension first (database rows -- the dimension with unbounded
        growth in both SNP applications, and the one the multi-GPU
        column partition already splits), then M once N runs out of
        ``n_r`` units.  Degenerates to a single shard for problems too
        small to split.
        """
        if workers <= 0:
            raise ConfigurationError(
                f"ShardPlan: workers must be positive, got {workers}"
            )
        if oversubscribe <= 0:
            raise ConfigurationError(
                f"ShardPlan: oversubscribe must be positive, got {oversubscribe}"
            )
        target = max(1, workers * oversubscribe)
        m_units = max(1, math.ceil(blocking.m / blocking.m_r))
        n_units = max(1, math.ceil(blocking.n / blocking.n_r))
        grid_cols = min(target, n_units)
        grid_rows = min(max(1, math.ceil(target / grid_cols)), m_units)
        return cls.from_grid(blocking, grid_rows, grid_cols)

    @classmethod
    def from_grid(
        cls, blocking: BlockingPlan, grid_rows: int, grid_cols: int
    ) -> "ShardPlan":
        """Build the shard plan for an explicit shard grid."""
        if grid_rows <= 0 or grid_cols <= 0:
            raise ConfigurationError(
                f"ShardPlan: grid must be positive, got "
                f"{grid_rows}x{grid_cols}"
            )
        m_splits = split_in_units(blocking.m, grid_rows, blocking.m_r)
        n_splits = split_in_units(blocking.n, grid_cols, blocking.n_r)
        shards = []
        for r, m_range in enumerate(m_splits):
            for c, n_range in enumerate(n_splits):
                shard = Shard(
                    shard_id=len(shards),
                    grid_row=r,
                    grid_col=c,
                    m_range=m_range,
                    n_range=n_range,
                )
                if not shard.is_empty:
                    shards.append(shard)
        return cls(
            blocking=blocking,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
            shards=tuple(shards),
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def k_panels(self) -> list[tuple[int, int]]:
        """The loop-4 ``k_c`` panels every shard iterates (shared)."""
        return self.blocking.k_panels()

    def total_word_ops(self) -> int:
        return sum(s.word_ops(self.blocking.k) for s in self.shards)
