"""Shard planning: partitioning one bit-GEMM across host workers.

The BLIS five-loop structure exposes independent work: every
``m_r x n_r`` micro-tile of C inside a ``k_c`` panel can be computed
without synchronization, because each output tile is owned by exactly
one producer (Section IV-C of the paper parallelizes loops 1 and 2
across device cores for the same reason).  :class:`ShardPlan` applies
the identical decomposition one level up, on the host: the ``j_c``
(N) and ``i_c`` (M) loops are split into contiguous *shards*, each a
rectangular block of C that one worker thread computes end to end.

The plan is **derived from** a :class:`~repro.blis.blocking.BlockingPlan`
-- shard boundaries are aligned to the plan's ``m_r``/``n_r``
micro-tile units via the same :func:`~repro.blis.blocking.split_in_units`
arithmetic the device core grid uses -- so host sharding and device
blocking cannot drift apart: a shard always covers whole micro-tiles,
and every packed panel a shard needs is a sub-panel the serial blocked
driver would also have produced.

**Gram (symmetric) plans.**  All three paper workloads are Gram
products -- LD compares a table against itself (Eq. 1), and the
identity/mixture self-scans do the same -- so the output satisfies
``C == C.T`` whenever the comparison op is symmetric.
:meth:`ShardPlan.triangular` exploits that structure one level above
the micro-kernel: only diagonal and upper-triangular shards are
emitted (``mirror=False``/``True`` respectively), and the executor
reflects each off-diagonal shard's block into its transpose slot.
Mirrored slots are strictly below the diagonal band grid while
computed slots are on or above it, so mirror writes never race with
computed writes.  Shard boundaries are aligned to
``lcm(m_r, n_r)`` so the same band split serves both the M and the N
dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.blis.blocking import BlockingPlan, split_in_units
from repro.errors import ConfigurationError

__all__ = ["Shard", "ShardPlan", "TRIANGULAR_MIN_BANDS"]

#: How many shards to aim for per worker.  Oversubscription keeps the
#: pool busy when shards finish unevenly (edge shards are smaller).
DEFAULT_OVERSUBSCRIBE = 2

#: Minimum diagonal bands a triangular plan aims for (problem size
#: permitting).  Diagonal shards are computed in full, so the word-op
#: ratio of a g-band triangular plan is ~``(g + 1) / (2 g)``; 12 bands
#: put it at ~0.54x of the full-output path.
TRIANGULAR_MIN_BANDS = 12


@dataclass(frozen=True)
class Shard:
    """One worker's share of the output: a rectangular block of C.

    ``mirror=True`` marks an off-diagonal shard of a symmetric (Gram)
    plan: after computing its block the executor must also write the
    transposed block into the mirror slot
    (``C[n_range, m_range] = block.T``).
    """

    shard_id: int
    grid_row: int
    grid_col: int
    m_range: tuple[int, int]
    n_range: tuple[int, int]
    mirror: bool = False

    @property
    def m_size(self) -> int:
        return self.m_range[1] - self.m_range[0]

    @property
    def n_size(self) -> int:
        return self.n_range[1] - self.n_range[0]

    @property
    def is_empty(self) -> bool:
        return self.m_size == 0 or self.n_size == 0

    @property
    def mirror_m_range(self) -> tuple[int, int]:
        """Row range of the transpose slot a mirror shard also fills."""
        return self.n_range

    @property
    def mirror_n_range(self) -> tuple[int, int]:
        """Column range of the transpose slot a mirror shard also fills."""
        return self.m_range

    def word_ops(self, k: int) -> int:
        """Packed-word comparison operations this shard performs."""
        return self.m_size * self.n_size * k


@dataclass(frozen=True)
class ShardPlan:
    """A host-level partition of one blocked bit-GEMM.

    Attributes
    ----------
    blocking:
        The :class:`BlockingPlan` this shard plan was derived from.
        Shard boundaries are aligned to its ``m_r``/``n_r`` units and
        shards iterate its ``k_c`` panels.
    grid_rows, grid_cols:
        The shard grid: M is split into ``grid_rows`` bands, N into
        ``grid_cols`` bands.
    shards:
        All non-empty shards, row-major over the grid, with
        contiguous ``shard_id`` starting at 0.
    symmetric:
        ``True`` for triangular (Gram) plans: the shard set covers
        only the diagonal + upper triangle, and mirror shards carry
        ``mirror=True``.
    """

    blocking: BlockingPlan
    grid_rows: int
    grid_cols: int
    shards: tuple[Shard, ...]
    symmetric: bool = False

    @classmethod
    def from_blocking(
        cls,
        blocking: BlockingPlan,
        workers: int,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
        symmetric: bool = False,
    ) -> "ShardPlan":
        """Derive a shard plan targeting ``workers`` pool threads.

        Aims for ``workers * oversubscribe`` shards, splitting the N
        dimension first (database rows -- the dimension with unbounded
        growth in both SNP applications, and the one the multi-GPU
        column partition already splits), then M once N runs out of
        ``n_r`` units.  Degenerates to a single shard for problems too
        small to split.  ``symmetric=True`` builds a triangular Gram
        plan instead (see :meth:`triangular`).
        """
        if workers <= 0:
            raise ConfigurationError(
                f"ShardPlan: workers must be positive, got {workers}"
            )
        if oversubscribe <= 0:
            raise ConfigurationError(
                f"ShardPlan: oversubscribe must be positive, got {oversubscribe}"
            )
        if symmetric:
            return cls.triangular(blocking, workers, oversubscribe=oversubscribe)
        target = max(1, workers * oversubscribe)
        m_units = max(1, math.ceil(blocking.m / blocking.m_r))
        n_units = max(1, math.ceil(blocking.n / blocking.n_r))
        grid_cols = min(target, n_units)
        grid_rows = min(max(1, math.ceil(target / grid_cols)), m_units)
        return cls.from_grid(blocking, grid_rows, grid_cols)

    @classmethod
    def from_grid(
        cls, blocking: BlockingPlan, grid_rows: int, grid_cols: int
    ) -> "ShardPlan":
        """Build the shard plan for an explicit shard grid."""
        if grid_rows <= 0 or grid_cols <= 0:
            raise ConfigurationError(
                f"ShardPlan: grid must be positive, got "
                f"{grid_rows}x{grid_cols}"
            )
        m_splits = split_in_units(blocking.m, grid_rows, blocking.m_r)
        n_splits = split_in_units(blocking.n, grid_cols, blocking.n_r)
        shards = []
        for r, m_range in enumerate(m_splits):
            for c, n_range in enumerate(n_splits):
                shard = Shard(
                    shard_id=len(shards),
                    grid_row=r,
                    grid_col=c,
                    m_range=m_range,
                    n_range=n_range,
                )
                if not shard.is_empty:
                    shards.append(shard)
        return cls(
            blocking=blocking,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
            shards=tuple(shards),
        )

    @classmethod
    def triangular(
        cls,
        blocking: BlockingPlan,
        workers: int,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
    ) -> "ShardPlan":
        """Build a symmetric (Gram) plan: diagonal + upper triangle only.

        The shared extent (``m == n`` is required) is split into ``g``
        diagonal bands aligned to ``lcm(m_r, n_r)``, so every band
        range is a legal M split *and* a legal N split.  Shards are
        emitted for band pairs ``(r, c)`` with ``r <= c``; off-diagonal
        shards carry ``mirror=True`` and the executor reflects their
        block into the (strictly lower-triangular, hence disjoint)
        transpose slot.  ``g`` targets at least
        :data:`TRIANGULAR_MIN_BANDS` bands -- diagonal shards are
        computed in full, so coarse grids waste the symmetry -- and at
        least enough shards to feed ``workers * oversubscribe`` tasks.
        """
        if workers <= 0:
            raise ConfigurationError(
                f"ShardPlan: workers must be positive, got {workers}"
            )
        if oversubscribe <= 0:
            raise ConfigurationError(
                f"ShardPlan: oversubscribe must be positive, got {oversubscribe}"
            )
        if blocking.m != blocking.n:
            raise ConfigurationError(
                f"ShardPlan.triangular: Gram plans need a square output, "
                f"got {blocking.m}x{blocking.n}"
            )
        unit = math.lcm(blocking.m_r, blocking.n_r)
        n_units = max(1, math.ceil(blocking.m / unit))
        # Smallest g with g(g+1)/2 >= workers * oversubscribe, then
        # raised to the efficiency floor and capped by available units.
        target = max(1, workers * oversubscribe)
        g_workers = math.ceil((math.isqrt(8 * target + 1) - 1) / 2)
        while g_workers * (g_workers + 1) // 2 < target:
            g_workers += 1
        bands = min(max(g_workers, TRIANGULAR_MIN_BANDS), n_units)
        splits = split_in_units(blocking.m, bands, unit)
        shards = []
        for r, m_range in enumerate(splits):
            for c in range(r, len(splits)):
                shard = Shard(
                    shard_id=len(shards),
                    grid_row=r,
                    grid_col=c,
                    m_range=m_range,
                    n_range=splits[c],
                    mirror=c > r,
                )
                if not shard.is_empty:
                    shards.append(shard)
        return cls(
            blocking=blocking,
            grid_rows=bands,
            grid_cols=bands,
            shards=tuple(shards),
            symmetric=True,
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_mirrored(self) -> int:
        """Off-diagonal shards whose transpose slot is filled by reflection."""
        return sum(1 for s in self.shards if s.mirror)

    def k_panels(self) -> list[tuple[int, int]]:
        """The loop-4 ``k_c`` panels every shard iterates (shared)."""
        return self.blocking.k_panels()

    def total_word_ops(self) -> int:
        """Word-ops actually *computed* (excludes mirrored slots)."""
        return sum(s.word_ops(self.blocking.k) for s in self.shards)

    def mirrored_word_ops(self) -> int:
        """Word-ops saved by reflection: the mirror slots' op count."""
        return sum(
            s.word_ops(self.blocking.k) for s in self.shards if s.mirror
        )
