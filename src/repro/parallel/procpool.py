"""Process-level shard execution with shared-memory packed panels.

The thread pool in :mod:`repro.parallel.engine` scales until the
Python-side orchestration (shard dispatch, cache bookkeeping, NumPy
dispatch overhead) serializes on the GIL -- with the compiled
``cnative``/``numba`` backends the kernels themselves are fast enough
that this ceiling arrives at a handful of cores.
:class:`ProcessShardExecutor` is the next tier: the same
:class:`~repro.parallel.plan.ShardPlan` shards, executed by a pool of
worker *processes*, each running the identical
:meth:`~repro.parallel.engine.ParallelEngine._execute_shard`
retry/quarantine/verify ladder the threaded and serial paths use.

**Operand transport is zero-copy where it can be.**  Packed operands
are published once per run:

* file-backed operands (``.snpbin`` memmaps from
  :class:`~repro.io_stream.format.PackedDatasetReader`, including
  contiguous row slices) are described by ``(path, offset, shape,
  dtype)`` and re-mapped read-only in each worker via
  :func:`~repro.io_stream.format.map_packed_words` -- no bytes cross
  the pipe;
* in-memory operands are copied once into
  :mod:`multiprocessing.shared_memory` segments that every worker
  attaches; self-comparisons publish a single segment for both sides.

The int64 output C lives in one preallocated shared segment; every
shard writes its disjoint block (and, in Gram mode, its transpose
mirror slot) directly, so results need no per-shard pickling either.

**Scheduling and worker loss.**  Shards go through one shared task
queue (dynamic load balancing, like the thread pool).  A worker sends
a durable ``claim`` message before computing a shard and a ``done``
message -- carrying the :class:`~repro.parallel.engine.ShardProfile`,
the shard's observability-counter delta, and any injector events --
after.  The parent merges counter deltas into its own tracer, so the
deterministic counters the regression gate compares are identical to a
threaded run's.  When a worker process dies, the parent re-enqueues
its claimed-but-unfinished shards onto the survivors (block writes are
idempotent: a re-executed shard overwrites the same disjoint slots),
counts :data:`~repro.observability.counters.WORKERS_LOST` (plus
:data:`~repro.observability.counters.FAULTS_INJECTED` only when the
death was scheduled by the fault plan), and surfaces a ``worker-lost``
event in the run's
:class:`~repro.resilience.report.ResilienceReport`.  A genuine crash
can additionally swallow a task the worker dequeued before its claim
reached the parent; after a death, a stall of the result queue
triggers a redispatch of every shard neither finished nor claimed by a
live worker, so the run recovers instead of hanging.  Only a completed
``done`` message merges counters -- and only the first per shard -- so
re-execution and redispatch never double-count.  Runs on one executor
are serialized behind a run lock: the pool's single result queue
admits one consumer at a time, and concurrent ``engine.run`` calls on
a shared engine queue up rather than stealing each other's messages.

**Start method.**  Workers use the ``spawn`` start method by default
(portable to macOS/Windows semantics, safe with compiled backends and
the parent's threads); ``REPRO_MP_START`` selects ``fork``/
``forkserver`` where supported.  Shared-memory segments are unlinked
by the parent at the end of every run and workers attach without
resource-tracker registration (``track=False`` on Python 3.13+, an
explicit unregister before that), so no segment outlives its run --
the worker-loss chaos test asserts exactly that.

See ``docs/DISTRIBUTED.md`` for the executor-tier overview.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import same_operand
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import ConfigurationError, ShardExecutionError
from repro.io_stream.format import map_packed_words, packed_words_ref
from repro.kernels import (
    DEFAULT_BACKEND_NAME,
    backend_available,
    backend_fingerprint,
)
from repro.observability.counters import (
    FAULTS_INJECTED,
    WORKERS_LOST,
    CounterRegistry,
)
from repro.observability.tracer import get_tracer
from repro.parallel.cache import PanelCache
from repro.parallel.plan import Shard, ShardPlan
from repro.resilience.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FiredFault,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import ResilienceContext
from repro.util.validation import check_workers

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from repro.parallel.engine import ShardProfile

__all__ = [
    "REPRO_MP_START_ENV",
    "OperandRef",
    "ProcessRunResult",
    "ProcessShardExecutor",
]

#: Environment variable selecting the multiprocessing start method for
#: worker processes (``spawn`` -- the portable default -- ``fork`` or
#: ``forkserver``).  CI pins ``spawn`` explicitly so the macOS/Windows
#: semantics are what every leg exercises.
REPRO_MP_START_ENV = "REPRO_MP_START"

_DEFAULT_START_METHOD = "spawn"

#: Seconds the parent waits on the result queue before checking worker
#: liveness (worker-loss detection latency is bounded by this).
_POLL_SECONDS = 0.05

#: Exit code a worker uses when an injected ``worker-lost`` fault kills
#: it (the parent and tests distinguish the injected death -- which
#: flushes its claim before exiting -- from a genuine crash).
_KILLED_EXIT_CODE = 86

#: Seconds of result-queue silence after a worker death before the
#: parent re-enqueues every shard that is neither completed nor claimed
#: by a live worker.  A genuine crash between ``task_q.get()`` and the
#: claim reaching the parent swallows a shard without a trace; once the
#: survivors drain the queue and go quiet, this redispatch recovers it
#: (duplicate executions are safe: block writes are idempotent and only
#: the first ``done`` per shard merges counters).
_STALL_TIMEOUT = 1.0

#: Run states one worker keeps attached at a time.  Each state holds
#: shared-memory attachments, so the cache is small; an evicted state
#: is rebuilt from the next task's embedded run spec if needed.
_WORKER_STATE_CACHE = 4


def _resolve_start_method() -> str:
    """The start method worker processes launch under."""
    name = os.environ.get(REPRO_MP_START_ENV, "").strip() or _DEFAULT_START_METHOD
    if name not in ("spawn", "fork", "forkserver"):
        raise ConfigurationError(
            f"{REPRO_MP_START_ENV}: unknown start method {name!r} "
            f"(valid: spawn, fork, forkserver)"
        )
    return name


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker registration.

    Before Python 3.13 a child that merely *attaches* a segment
    registers it with the resource tracker -- and spawned workers share
    the *parent's* tracker process, so the duplicate registration (and
    any attempt to unregister it afterwards) corrupts the tracker's
    book-keeping for a segment the parent still owns.  ``track=False``
    (3.13+) or suppressing registration around the attach keeps
    ownership where it belongs: the parent creates, the parent unlinks.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass(frozen=True)
class OperandRef:
    """How one packed operand reaches the workers.

    ``kind="mmap"``: ``name`` is a file path; workers map ``shape``
    words of ``dtype`` read-only at byte ``offset`` (zero-copy, no
    operand bytes ever cross the task pipe).  ``kind="shm"``: ``name``
    is a :mod:`multiprocessing.shared_memory` segment the parent
    filled once; workers attach and wrap it.
    """

    kind: str  # "mmap" | "shm"
    name: str
    shape: tuple[int, int]
    dtype: str
    offset: int = 0


@dataclass
class ProcessRunResult:
    """What one process-pool dispatch produced (parent side)."""

    c: np.ndarray
    profiles: list["ShardProfile"]
    worker_events: tuple[FiredFault, ...]
    workers_lost: int


# -- worker side -----------------------------------------------------------------


class _RunState:
    """One run's attachments and execution context inside a worker."""

    def __init__(self, spec: dict[str, Any]) -> None:
        from repro.observability.tracer import Tracer, set_tracer
        from repro.parallel.engine import ParallelEngine

        # A fresh per-run tracer, installed before anything that
        # captures the active counter registry (the PanelCache binds it
        # at construction): counters feed the per-shard deltas shipped
        # back to the parent, and re-installing per run bounds span
        # accumulation over a long-lived pool.
        self.tracer = Tracer()
        set_tracer(self.tracer)
        self._shm: list[shared_memory.SharedMemory] = []
        self.a = self._attach_operand(spec["a"])
        b_ref = spec["b"]
        self.b = self.a if b_ref is None else self._attach_operand(b_ref)
        c_shm = _attach_shm(spec["c_name"])
        self._shm.append(c_shm)
        self.c: np.ndarray | None = np.ndarray(
            tuple(spec["c_shape"]), dtype=np.int64, buffer=c_shm.buf
        )
        self.op: ComparisonOp = get_microkernel(spec["op"]).op
        self.plan: BlockingPlan = spec["plan"]
        self.dedup: bool = spec["dedup"]
        backend: str = spec["backend"]
        strategy: str = spec["strategy"]
        if backend != DEFAULT_BACKEND_NAME and (
            spec["fingerprint"] != backend_fingerprint()
            or not backend_available(backend)
        ):
            # Per-process backend resolution: this worker's view of the
            # tunable backend set differs from the parent's (partial
            # install, version skew).  Degrade to the reference backend
            # -- bit-exact by the ABI contract, and the word-op
            # counters are backend-invariant so accounting holds.
            backend, strategy = DEFAULT_BACKEND_NAME, "gemm"
        self.engine = ParallelEngine(
            workers=1, cache_bytes=spec["cache_bytes"], executor="thread"
        )
        self.compute, self.strategy = self.engine._resolve_shard_compute(
            strategy, backend
        )
        self.cache = PanelCache(spec["cache_bytes"])
        fault_spec = spec["fault_spec"]
        injector: FaultInjector | Any = NULL_INJECTOR
        if fault_spec:
            injector = FaultInjector(
                FaultPlan.from_spec(fault_spec, slow_delay_s=spec["slow_delay_s"])
            )
        self.injector = injector
        policy_fields: dict[str, Any] = spec["policy"]
        self.res = ResilienceContext(
            injector=injector,
            policy=RetryPolicy(**policy_fields),
            verify_sample=spec["verify_sample"],
            verify_seed=spec["verify_seed"],
        )
    def _attach_operand(self, ref: OperandRef) -> np.ndarray:
        if ref.kind == "mmap":
            return map_packed_words(ref.name, ref.offset, ref.shape, ref.dtype)
        shm = _attach_shm(ref.name)
        self._shm.append(shm)
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)

    def execute(self, shard: Shard) -> "ShardProfile":
        assert self.c is not None
        return self.engine._execute_shard(
            self.compute, shard, self.a, self.b, self.op, self.plan,
            self.cache, self.c, self.dedup, self.strategy, self.res,
        )

    def close(self) -> None:
        # Views must drop before the buffers close.
        self.a = self.b = np.zeros((0, 0), dtype=np.uint64)
        self.c = None
        for shm in self._shm:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
        self._shm = []


def _worker_main(worker_id: int, task_q: Any, result_q: Any) -> None:
    """Worker process loop: claim, execute, report; die on command."""
    states: dict[int, _RunState] = {}
    order: list[int] = []
    while True:
        msg = task_q.get()
        if msg[0] == "stop":
            break
        _, run_id, shard, spec = msg
        # The claim must be durable before any work (or injected
        # death): the parent re-enqueues claimed-but-unfinished shards
        # of a dead worker, so an unflushed claim would strand a shard.
        result_q.put(("claim", worker_id, run_id, shard.shard_id))
        try:
            state = states.get(run_id)
            if state is None:
                state = _RunState(spec)
                states[run_id] = state
                order.append(run_id)
                while len(order) > _WORKER_STATE_CACHE:
                    states.pop(order.pop(0)).close()
            if state.injector.check_worker(worker_id):
                # Injected worker loss: flush the queue feeder so the
                # claim reaches the parent, then die like a crash.
                result_q.close()
                result_q.join_thread()
                os._exit(_KILLED_EXIT_CODE)
            before = state.tracer.counters.snapshot()
            events_before = state.injector.n_fired()
            profile = state.execute(shard)
            delta = CounterRegistry.diff(
                before, state.tracer.counters.snapshot()
            )
            events = tuple(state.injector.fired()[events_before:])
            result_q.put(
                ("done", worker_id, run_id, shard.shard_id, profile, delta,
                 events)
            )
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            payload: bytes | None
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = None
            result_q.put(
                ("error", worker_id, run_id, shard.shard_id, payload,
                 f"{type(exc).__name__}: {exc}")
            )
    for state in states.values():
        state.close()


# -- parent side -----------------------------------------------------------------


class ProcessShardExecutor:
    """A persistent pool of shard-worker processes.

    One executor is owned by one :class:`~repro.parallel.engine.ParallelEngine`
    and reused across runs, so the (spawn-method) process startup cost
    is paid once, not per GEMM.  ``execute`` publishes the operands,
    dispatches every shard of a :class:`~repro.parallel.plan.ShardPlan`,
    merges worker counter deltas into the parent tracer, and returns
    the filled output with per-shard profiles.  Dead workers are
    respawned at the start of the *next* run; within a run their shards
    fail over to the survivors.
    """

    def __init__(self, workers: int) -> None:
        try:
            check_workers("ProcessShardExecutor: workers", workers)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        self.workers = workers
        self._ctx: "BaseContext | None" = None
        self._procs: dict[int, "BaseProcess"] = {}
        self._task_q: Any = None
        self._result_q: Any = None
        self._run_counter = 0
        self._lock = threading.Lock()

    # -- pool lifecycle --------------------------------------------------------

    def _context(self) -> "BaseContext":
        if self._ctx is None:
            self._ctx = get_context(_resolve_start_method())
        return self._ctx

    def _ensure_workers(self) -> None:
        ctx = self._context()
        if self._task_q is None:
            self._task_q = ctx.Queue()
            self._result_q = ctx.Queue()
        for worker_id in range(self.workers):
            proc = self._procs.get(worker_id)
            if proc is not None and proc.is_alive():
                continue
            if proc is not None:
                proc.join(timeout=1.0)
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_id, self._task_q, self._result_q),
                name=f"repro-shard-proc-{worker_id}",
                daemon=True,
            )
            proc.start()
            self._procs[worker_id] = proc

    def shutdown(self) -> None:
        """Stop every worker and release the queues."""
        with self._lock:
            if not self._procs:
                return
            for _ in self._procs:
                try:
                    self._task_q.put(("stop",))
                except Exception:  # pragma: no cover - queue already dead
                    break
            for proc in self._procs.values():
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._procs = {}
            for q in (self._task_q, self._result_q):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
            self._task_q = self._result_q = None

    @property
    def alive_workers(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    # -- operand publication ---------------------------------------------------

    def _publish_operand(
        self, arr: np.ndarray, handles: list[shared_memory.SharedMemory]
    ) -> OperandRef:
        ref = packed_words_ref(arr)
        if ref is not None:
            path, offset, shape, dtype = ref
            return OperandRef(
                kind="mmap", name=path, shape=shape, dtype=dtype, offset=offset
            )
        contiguous = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, contiguous.nbytes)
        )
        handles.append(shm)
        view: np.ndarray = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf
        )
        view[:] = contiguous
        del view
        return OperandRef(
            kind="shm",
            name=shm.name,
            shape=(int(arr.shape[0]), int(arr.shape[1])),
            dtype=contiguous.dtype.str,
        )

    # -- dispatch --------------------------------------------------------------

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        shard_plan: ShardPlan,
        strategy: str,
        backend_name: str,
        dedup: bool,
        res: ResilienceContext,
        cache_bytes: int,
    ) -> ProcessRunResult:
        """Run every shard of ``shard_plan`` across the worker pool.

        Runs are serialized: the pool has one shared result queue, and
        a second concurrent consumer would steal (and discard as stale)
        the first run's claim/done messages, hanging both.  Concurrent
        callers -- :func:`~repro.parallel.engine.get_engine` shares
        engines process-wide, and pipelined serving dispatches batches
        concurrently -- queue up on the run lock instead.
        """
        with self._lock:
            self._ensure_workers()
            self._run_counter += 1
            run_id = self._run_counter
            handles: list[shared_memory.SharedMemory] = []
            try:
                return self._execute_locked(
                    run_id, handles, a, b, op, plan, shard_plan, strategy,
                    backend_name, dedup, res, cache_bytes,
                )
            finally:
                for shm in handles:
                    try:
                        shm.close()
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass

    def _build_spec(
        self,
        run_id: int,
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        strategy: str,
        backend_name: str,
        dedup: bool,
        res: ResilienceContext,
        cache_bytes: int,
        handles: list[shared_memory.SharedMemory],
    ) -> tuple[dict[str, Any], np.ndarray]:
        ref_a = self._publish_operand(a, handles)
        ref_b = None if same_operand(a, b) else self._publish_operand(b, handles)
        c_shm = shared_memory.SharedMemory(
            create=True, size=max(1, plan.m * plan.n * 8)
        )
        handles.append(c_shm)
        c_view: np.ndarray = np.ndarray(
            (plan.m, plan.n), dtype=np.int64, buffer=c_shm.buf
        )
        c_view[:] = 0
        injector = res.injector
        fault_spec = (
            injector.plan.to_spec()
            if isinstance(injector, FaultInjector) and injector.plan.specs
            else None
        )
        slow_delay_s = (
            injector.plan.slow_delay_s
            if isinstance(injector, FaultInjector)
            else 0.0
        )
        policy = res.policy
        spec: dict[str, Any] = {
            "run_id": run_id,
            "a": ref_a,
            "b": ref_b,
            "c_name": c_shm.name,
            "c_shape": (plan.m, plan.n),
            "op": op.value,
            "plan": plan,
            "strategy": strategy,
            "backend": backend_name,
            "fingerprint": backend_fingerprint(),
            "cache_bytes": cache_bytes,
            "dedup": dedup,
            "fault_spec": fault_spec,
            "slow_delay_s": slow_delay_s,
            "policy": {
                "max_attempts": policy.max_attempts,
                "base_delay_s": policy.base_delay_s,
                "multiplier": policy.multiplier,
                "max_delay_s": policy.max_delay_s,
                "jitter": policy.jitter,
                "seed": policy.seed,
                "quarantine": policy.quarantine,
            },
            "verify_sample": res.verify_sample,
            "verify_seed": res.verify_seed,
        }
        return spec, c_view

    def _execute_locked(
        self,
        run_id: int,
        handles: list[shared_memory.SharedMemory],
        a: np.ndarray,
        b: np.ndarray,
        op: ComparisonOp,
        plan: BlockingPlan,
        shard_plan: ShardPlan,
        strategy: str,
        backend_name: str,
        dedup: bool,
        res: ResilienceContext,
        cache_bytes: int,
    ) -> ProcessRunResult:
        spec, c_view = self._build_spec(
            run_id, a, b, op, plan, strategy, backend_name, dedup, res,
            cache_bytes, handles,
        )
        shards = {shard.shard_id: shard for shard in shard_plan.shards}
        for shard in shard_plan.shards:
            self._task_q.put(("shard", run_id, shard, spec))

        obs = get_tracer()
        profiles: dict[int, "ShardProfile"] = {}
        claims: dict[int, int] = {}
        dead: set[int] = set()
        events: list[FiredFault] = []
        workers_lost = 0
        # Armed by reap() on each death: if the result queue then stays
        # silent past the deadline, shards a dying worker swallowed
        # before its claim reached the parent are redispatched.
        stall_deadline: float | None = None

        def reap() -> int:
            """Detect dead workers; fail their claimed shards over."""
            nonlocal stall_deadline
            lost = 0
            for worker_id, proc in self._procs.items():
                if worker_id in dead or proc.is_alive():
                    continue
                dead.add(worker_id)
                lost += 1
                events.append(
                    FiredFault(
                        kind="worker-lost", target=worker_id, attempt=0,
                        site="procpool",
                    )
                )
                obs.counters.add(WORKERS_LOST)
                if proc.exitcode == _KILLED_EXIT_CODE:
                    # Only a scheduled (injected) death counts as an
                    # injected fault; a genuine crash is a loss, not an
                    # injection, and must not skew the deterministic
                    # fired/injected accounting CI compares.
                    obs.counters.add(FAULTS_INJECTED)
            for shard_id, worker_id in list(claims.items()):
                if shard_id in profiles or worker_id not in dead:
                    continue
                del claims[shard_id]
                self._task_q.put(("shard", run_id, shards[shard_id], spec))
            if len(dead) >= len(self._procs):
                raise ShardExecutionError(
                    f"process executor: all {len(self._procs)} worker "
                    f"processes were lost",
                    shard_id=-1,
                )
            if lost:
                stall_deadline = time.monotonic() + _STALL_TIMEOUT
            return lost

        while len(profiles) < len(shards):
            try:
                msg = self._result_q.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                workers_lost += reap()
                if (
                    stall_deadline is not None
                    and time.monotonic() >= stall_deadline
                ):
                    # A worker died and the queue has gone quiet, yet
                    # shards are still outstanding: any shard neither
                    # finished nor claimed by a live worker may have
                    # been swallowed by the dying worker before its
                    # claim got out.  Redispatch them all -- a shard
                    # that was merely still queued runs twice, which is
                    # harmless (idempotent writes, first ``done`` wins).
                    stall_deadline = None
                    for shard_id, shard in shards.items():
                        if shard_id in profiles or shard_id in claims:
                            continue
                        self._task_q.put(("shard", run_id, shard, spec))
                continue
            kind = msg[0]
            if msg[2] != run_id:
                continue  # stale message from an aborted earlier run
            if kind == "claim":
                _, worker_id, _, shard_id = msg
                if shard_id in profiles:
                    continue
                claims[shard_id] = worker_id
                if worker_id in dead:
                    # The claim outlived its worker; fail over now.
                    del claims[shard_id]
                    self._task_q.put(("shard", run_id, shards[shard_id], spec))
            elif kind == "done":
                _, worker_id, _, shard_id, profile, delta, shard_events = msg
                if shard_id in profiles:
                    continue  # re-executed shard already reported
                profiles[shard_id] = profile
                claims.pop(shard_id, None)
                for name, value in delta.items():
                    obs.counters.add(name, value)
                events.extend(shard_events)
            elif kind == "error":
                _, worker_id, _, shard_id, payload, message = msg
                if payload is not None:
                    try:
                        raise pickle.loads(payload)
                    except ShardExecutionError:
                        raise
                    except Exception as exc:
                        if isinstance(exc, (pickle.UnpicklingError, EOFError)):
                            pass  # fall through to the generic raise
                        else:
                            raise
                raise ShardExecutionError(
                    f"shard {shard_id} failed in worker process "
                    f"{worker_id}: {message}",
                    shard_id=shard_id,
                )

        c = np.array(c_view, copy=True)
        del c_view
        ordered = [profiles[shard_id] for shard_id in sorted(profiles)]
        return ProcessRunResult(
            c=c,
            profiles=ordered,
            worker_events=tuple(events),
            workers_lost=workers_lost,
        )
