"""Chunk sources: one abstraction over "where binary rows come from".

A :class:`ChunkSource` hands out a binary ``(rows, n_sites)`` matrix a
chunk of rows at a time.  Four adapters cover the places SNP data
lives:

* :class:`ArraySource` -- an in-memory matrix (the degenerate case;
  lets every streaming workload accept plain arrays);
* :class:`SnpbinSource` -- a memory-mapped ``.snpbin`` file
  (:mod:`repro.io_stream.format`), the out-of-core fast path;
* :class:`NpzSource` -- a dataset/database NPZ (:mod:`repro.snp.io`),
  decompressed lazily on first access;
* :class:`IteratorSource` -- any iterable of row batches (a socket
  feed, a generator), re-sliced to the requested chunk size.

``seekable`` sources additionally support random access
(:meth:`ChunkSource.read`), which the block-row Gram accumulation of
:class:`~repro.core.streaming.StreamingLD` needs; one-shot iterator
feeds can be spooled to a temporary ``.snpbin`` with
:func:`materialize_source` when random access is required.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import DatasetError
from repro.io_stream.format import PackedDatasetReader, PackedDatasetWriter

__all__ = [
    "ChunkSource",
    "ArraySource",
    "SnpbinSource",
    "NpzSource",
    "IteratorSource",
    "as_chunk_source",
    "materialize_source",
    "open_source",
]


def _check_chunk_rows(chunk_rows: int) -> int:
    if chunk_rows <= 0:
        raise DatasetError(f"chunk_rows must be positive, got {chunk_rows}")
    return chunk_rows


class ChunkSource(abc.ABC):
    """Rows of one binary matrix, delivered a chunk at a time.

    Attributes
    ----------
    seekable:
        Whether :meth:`read` (random access by row range) is supported.
        Seekable sources may be iterated any number of times.
    """

    seekable: bool = True

    @property
    @abc.abstractmethod
    def n_rows(self) -> int | None:
        """Total row count; ``None`` when unknown (one-shot feeds)."""

    @property
    @abc.abstractmethod
    def n_sites(self) -> int:
        """Sites per row (fixed for the life of the source)."""

    def read(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` as a binary matrix (seekable only)."""
        raise DatasetError(
            f"{type(self).__name__} is not seekable; spool it with "
            f"materialize_source() for random access"
        )

    def chunks(self, chunk_rows: int) -> Iterator[np.ndarray]:
        """Yield consecutive chunks of up to ``chunk_rows`` rows."""
        _check_chunk_rows(chunk_rows)
        total = self.n_rows
        assert total is not None  # seekable sources know their size
        for start in range(0, total, chunk_rows):
            yield self.read(start, min(start + chunk_rows, total))

    def chunk_nbytes(self, chunk: np.ndarray) -> int:
        """Bytes pulled from the backing store to produce ``chunk``."""
        return int(chunk.nbytes)

    def close(self) -> None:
        """Release backing resources (default: nothing to release)."""

    def __enter__(self) -> "ChunkSource":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ArraySource(ChunkSource):
    """An in-memory binary matrix as a (trivially seekable) source."""

    def __init__(self, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise DatasetError(
                f"ArraySource: expected a 2-D binary matrix, got ndim={arr.ndim}"
            )
        self._matrix = arr

    @property
    def n_rows(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def n_sites(self) -> int:
        return int(self._matrix.shape[1])

    def read(self, start: int, stop: int) -> np.ndarray:
        return self._matrix[start:stop]


class SnpbinSource(ChunkSource):
    """A memory-mapped ``.snpbin`` file (the out-of-core fast path).

    ``chunk_nbytes`` reports *packed on-disk* bytes, so the
    ``stream.bytes_read`` counter reflects real I/O volume, not the 8x
    larger unpacked working set.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._reader = PackedDatasetReader(path)
        self.path = self._reader.path

    @property
    def n_rows(self) -> int:
        return self._reader.n_rows

    @property
    def n_sites(self) -> int:
        return self._reader.n_bits

    @property
    def reader(self) -> PackedDatasetReader:
        return self._reader

    def read(self, start: int, stop: int) -> np.ndarray:
        return self._reader.read_bits(start, stop)

    def chunk_nbytes(self, chunk: np.ndarray) -> int:
        return self._reader.bytes_for_rows(int(chunk.shape[0]))

    def close(self) -> None:
        self._reader.close()


class NpzSource(ChunkSource):
    """A dataset/database NPZ, decompressed lazily on first access.

    NPZ is a compressed container, so this source cannot avoid
    materializing the matrix -- it adapts the *format*, not the memory
    profile.  Use ``.snpbin`` for matrices that do not fit in RAM.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._matrix: np.ndarray | None = None

    def _load(self) -> np.ndarray:
        if self._matrix is None:
            from repro.snp.io import load_database_npz, load_dataset_npz

            try:
                self._matrix = load_dataset_npz(self.path).matrix
            except DatasetError:
                self._matrix = load_database_npz(self.path).profiles
        return self._matrix

    @property
    def n_rows(self) -> int:
        return int(self._load().shape[0])

    @property
    def n_sites(self) -> int:
        return int(self._load().shape[1])

    def read(self, start: int, stop: int) -> np.ndarray:
        return self._load()[start:stop]

    def close(self) -> None:
        self._matrix = None


class IteratorSource(ChunkSource):
    """Adapter for any iterable of binary row batches (one-shot).

    Incoming batches are re-sliced to the requested chunk size, so the
    feed's own batching does not leak into chunk boundaries.  The
    source is not seekable and may be iterated once; spool it with
    :func:`materialize_source` when random access is needed.
    """

    seekable = False

    def __init__(
        self, batches: Iterable[np.ndarray], n_sites: int | None = None
    ) -> None:
        self._batches = iter(batches)
        self._n_sites = n_sites
        self._rows_seen = 0
        self._exhausted = False
        self._consumed = False

    @property
    def n_rows(self) -> int | None:
        return self._rows_seen if self._exhausted else None

    @property
    def n_sites(self) -> int:
        if self._n_sites is None:
            raise DatasetError(
                "IteratorSource: n_sites unknown until the first batch "
                "is read (pass n_sites= to the constructor)"
            )
        return self._n_sites

    def _coerce(self, batch: np.ndarray) -> np.ndarray:
        arr = np.asarray(batch)
        if arr.ndim != 2:
            raise DatasetError(
                f"IteratorSource: batches must be 2-D, got ndim={arr.ndim}"
            )
        if self._n_sites is None:
            self._n_sites = int(arr.shape[1])
        elif arr.shape[1] != self._n_sites:
            raise DatasetError(
                f"IteratorSource: batch has {arr.shape[1]} sites, "
                f"feed is {self._n_sites} sites wide"
            )
        return arr

    def chunks(self, chunk_rows: int) -> Iterator[np.ndarray]:
        _check_chunk_rows(chunk_rows)
        if self._consumed:
            raise DatasetError(
                "IteratorSource: already consumed (one-shot feed); "
                "spool it with materialize_source() to re-read"
            )
        self._consumed = True
        pending: list[np.ndarray] = []
        pending_rows = 0
        for batch in self._batches:
            arr = self._coerce(batch)
            self._rows_seen += int(arr.shape[0])
            pending.append(arr)
            pending_rows += int(arr.shape[0])
            while pending_rows >= chunk_rows:
                merged = pending[0] if len(pending) == 1 else np.vstack(pending)
                yield merged[:chunk_rows]
                remainder = merged[chunk_rows:]
                pending = [remainder] if remainder.shape[0] else []
                pending_rows = int(remainder.shape[0])
        self._exhausted = True
        if pending_rows:
            yield pending[0] if len(pending) == 1 else np.vstack(pending)


def as_chunk_source(data: Any) -> ChunkSource:
    """Coerce arrays / paths / iterables to a :class:`ChunkSource`."""
    if isinstance(data, ChunkSource):
        return data
    if isinstance(data, np.ndarray):
        return ArraySource(data)
    if isinstance(data, (str, os.PathLike)):
        return open_source(data)
    if hasattr(data, "__iter__"):
        return IteratorSource(data)
    raise DatasetError(
        f"as_chunk_source: cannot adapt {type(data).__name__} "
        f"(expected ChunkSource, ndarray, path or iterable of batches)"
    )


def open_source(path: str | os.PathLike[str]) -> ChunkSource:
    """Open a file as a chunk source, dispatching on its suffix."""
    p = Path(path)
    if p.suffix == ".snpbin":
        return SnpbinSource(p)
    if p.suffix == ".npz":
        return NpzSource(p)
    if p.suffix == ".snptxt":
        from repro.snp.io import read_snptxt

        return ArraySource(read_snptxt(p).matrix)
    raise DatasetError(
        f"open_source: unsupported input format: {p} "
        f"(use .snpbin, .npz or .snptxt)"
    )


def materialize_source(
    source: ChunkSource,
    path: str | os.PathLike[str],
    chunk_rows: int = 8192,
    word_bits: int = 64,
) -> SnpbinSource:
    """Spool a (possibly one-shot) source into a ``.snpbin`` file.

    Gives random access over feeds that do not support it, in bounded
    memory; the returned :class:`SnpbinSource` maps the spooled file.
    """
    with PackedDatasetWriter(path, word_bits=word_bits) as writer:
        for chunk in source.chunks(chunk_rows):
            writer.append(chunk)
    return SnpbinSource(path)
