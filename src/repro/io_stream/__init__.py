"""Out-of-core streaming ingestion: packed datasets, chunk sources, prefetch.

The paper's FastID workload targets ~20M-profile databases that do not
fit in host memory.  This package is the host-side I/O layer that makes
unbounded inputs a first-class path through the pipeline, following the
pattern of Beyer & Bientinesi ("Streaming Data from HDD to GPUs for
Sustained Peak Performance"): overlap disk reads with compute so the
engine never waits on the disk, and keep data packed on disk (the
enabler second-generation PLINK demonstrated with its ``.bed`` format).

Three layers, bottom up:

* :mod:`repro.io_stream.format` -- the ``.snpbin`` on-disk format: a
  fixed validated header plus row-major packed words, written in
  bounded memory by :class:`PackedDatasetWriter` and memory-mapped by
  :class:`PackedDatasetReader`.
* :mod:`repro.io_stream.sources` -- :class:`ChunkSource`, one
  abstraction over "where binary rows come from": in-memory arrays,
  ``.snpbin`` maps, NPZ files, plain iterators.
* :mod:`repro.io_stream.prefetch` -- :class:`ChunkStream`, the
  double-buffered prefetch executor: a background thread reads (and
  optionally packs) chunk *i+1* while chunk *i* runs through the
  engine, mirroring at the host layer the simulated device's
  double-buffered transfer/compute overlap.

The streaming workloads that consume these live in
:mod:`repro.core.streaming`; see ``docs/STREAMING.md`` for the format
specification and guidance on chunk sizing.
"""

from repro.io_stream.format import (
    DEFAULT_CRC_CHUNK_ROWS,
    SNPBIN2_MAGIC,
    SNPBIN_MAGIC,
    SnpbinHeader,
    PackedDatasetReader,
    PackedDatasetWriter,
    map_packed_words,
    packed_words_ref,
    write_snpbin,
)
from repro.io_stream.fsck import (
    FsckFileReport,
    FsckReport,
    fsck_directory,
    fsck_file,
)
from repro.io_stream.prefetch import ChunkStream, StreamStats
from repro.io_stream.sources import (
    ArraySource,
    ChunkSource,
    IteratorSource,
    NpzSource,
    SnpbinSource,
    as_chunk_source,
    materialize_source,
    open_source,
)

__all__ = [
    "SNPBIN_MAGIC",
    "SNPBIN2_MAGIC",
    "DEFAULT_CRC_CHUNK_ROWS",
    "SnpbinHeader",
    "FsckFileReport",
    "FsckReport",
    "fsck_file",
    "fsck_directory",
    "PackedDatasetReader",
    "PackedDatasetWriter",
    "map_packed_words",
    "packed_words_ref",
    "write_snpbin",
    "ChunkStream",
    "StreamStats",
    "ChunkSource",
    "ArraySource",
    "SnpbinSource",
    "NpzSource",
    "IteratorSource",
    "as_chunk_source",
    "materialize_source",
    "open_source",
]
