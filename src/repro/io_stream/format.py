"""The ``.snpbin`` on-disk format: packed binary SNP matrices.

Two format revisions share one layout skeleton (all integers
little-endian).  Version 1 (``SNPBIN01``, still readable)::

    offset  size  field
    0       8     magic  b"SNPBIN01"
    8       4     word_bits   (8, 16, 32 or 64)
    12      4     reserved    (must be 0)
    16      8     n_rows      (row count, uint64)
    24      8     n_bits      (valid sites per row, uint64)
    32      ...   data: n_rows x ceil(n_bits / word_bits) words,
                  row-major, little-endian unsigned integers

Version 2 (``SNPBIN02``, the writer default) adds integrity checks
while keeping the data region *contiguous*, so the zero-repack
residency path (mapping the region directly as a device operand, see
:func:`packed_words_ref`) is unchanged::

    offset  size  field
    0       8     magic  b"SNPBIN02"
    8       4     word_bits
    12      4     crc_chunk_rows   (rows per CRC chunk, > 0)
    16      8     n_rows
    24      8     n_bits
    32      4     header_crc   (CRC32 of bytes [0, 32))
    36      ...   data (identical layout to v1)
    ...     4*c   chunk CRC table: CRC32 of each run of
                  crc_chunk_rows rows (c = ceil(n_rows /
                  crc_chunk_rows); the last chunk may be short)

The reader verifies the header CRC and the exact file size on open
(catching torn writes and truncation), then verifies each data chunk's
CRC32 *lazily on first read* -- a query that touches rows
``[a, b)`` checks only the covering chunks, once, so mmap residency and
the pages-touched profile of a scan are preserved.  A mismatch raises
:class:`~repro.errors.IntegrityError` (never a silently wrong answer)
and counts ``io.crc_failures``; each verified chunk counts
``io.chunks_verified``.

Bit order within a word matches :func:`repro.util.bitops.pack_bits`
(big-endian within the word: site ``j`` lands at bit position
``word_bits - 1 - (j % word_bits)`` of word ``j // word_bits``), so a
``.snpbin`` row round-trips exactly through
:func:`~repro.util.bitops.unpack_bits`.

The format stores *packed* words -- a 1M x 100k-site matrix is ~12.5 GB
on disk instead of 100 GB unpacked -- and the reader memory-maps the
data region, so reading a chunk of rows touches only those rows' pages.
The trailing words of each row are zero-padded; the reader validates
the header, the word width and the exact file size before mapping.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from types import TracebackType
from typing import Iterator

import numpy as np

from repro.errors import DatasetError, IntegrityError
from repro.observability.counters import IO_CHUNKS_VERIFIED, IO_CRC_FAILURES
from repro.observability.tracer import get_tracer
from repro.util.bitops import pack_bits, unpack_bits, words_needed

__all__ = [
    "SNPBIN_MAGIC",
    "SNPBIN2_MAGIC",
    "SNPBIN_HEADER_BYTES",
    "SNPBIN2_HEADER_BYTES",
    "DEFAULT_CRC_CHUNK_ROWS",
    "SnpbinHeader",
    "PackedDatasetWriter",
    "PackedDatasetReader",
    "write_snpbin",
    "packed_words_ref",
    "map_packed_words",
]

SNPBIN_MAGIC = b"SNPBIN01"
SNPBIN2_MAGIC = b"SNPBIN02"
_HEADER = struct.Struct("<8sIIQQ")
_HEADER_CRC = struct.Struct("<I")
SNPBIN_HEADER_BYTES = _HEADER.size  # 32
SNPBIN2_HEADER_BYTES = _HEADER.size + _HEADER_CRC.size  # 36

#: Default rows per CRC chunk: 4096 rows x 1568 bytes/row (100k sites
#: packed) is ~6 MB of data guarded by each 4-byte checksum.
DEFAULT_CRC_CHUNK_ROWS = 4096

_VALID_WORD_BITS = (8, 16, 32, 64)
_CRC_BYTES = 4


class SnpbinHeader:
    """Parsed-and-validated ``.snpbin`` header (either revision)."""

    __slots__ = ("word_bits", "n_rows", "n_bits", "version", "crc_chunk_rows")

    def __init__(
        self,
        word_bits: int,
        n_rows: int,
        n_bits: int,
        version: int = 1,
        crc_chunk_rows: int = 0,
    ) -> None:
        if word_bits not in _VALID_WORD_BITS:
            raise DatasetError(
                f"snpbin: word_bits must be one of {_VALID_WORD_BITS}, "
                f"got {word_bits}"
            )
        if n_rows < 0 or n_bits < 0:
            raise DatasetError(
                f"snpbin: negative shape (n_rows={n_rows}, n_bits={n_bits})"
            )
        if version not in (1, 2):
            raise DatasetError(f"snpbin: unsupported version {version}")
        if version == 2 and crc_chunk_rows <= 0:
            raise DatasetError(
                f"snpbin: v2 crc_chunk_rows must be positive, "
                f"got {crc_chunk_rows}"
            )
        if version == 1 and crc_chunk_rows != 0:
            raise DatasetError("snpbin: v1 files have no CRC chunks")
        self.word_bits = word_bits
        self.n_rows = n_rows
        self.n_bits = n_bits
        self.version = version
        self.crc_chunk_rows = crc_chunk_rows

    @property
    def k_words(self) -> int:
        """Packed words per row."""
        return words_needed(self.n_bits, self.word_bits)

    @property
    def row_bytes(self) -> int:
        """Bytes per packed row."""
        return self.k_words * (self.word_bits // 8)

    @property
    def data_bytes(self) -> int:
        """Exact size of the data region."""
        return self.n_rows * self.row_bytes

    @property
    def header_bytes(self) -> int:
        """Header size of this revision (32 for v1, 36 for v2)."""
        return SNPBIN_HEADER_BYTES if self.version == 1 else SNPBIN2_HEADER_BYTES

    @property
    def n_chunks(self) -> int:
        """CRC chunks covering the data region (0 for v1)."""
        if self.version == 1 or self.n_rows == 0:
            return 0
        return -(-self.n_rows // self.crc_chunk_rows)

    @property
    def crc_table_bytes(self) -> int:
        """Size of the trailing per-chunk CRC table (0 for v1)."""
        return self.n_chunks * _CRC_BYTES

    @property
    def file_bytes(self) -> int:
        """Exact size of a well-formed file with this header."""
        return self.header_bytes + self.data_bytes + self.crc_table_bytes

    @property
    def dtype(self) -> np.dtype:
        """On-disk word dtype (explicitly little-endian)."""
        return np.dtype(f"<u{self.word_bits // 8}")

    def pack(self, torn_guard: bool = False) -> bytes:
        """Serialized header bytes.

        ``torn_guard=True`` (v2 only) deliberately inverts the header
        CRC -- the writer's *placeholder* header, so a crash before
        :meth:`PackedDatasetWriter.close` finalizes the file is
        detected as a torn write on open rather than read as empty.
        """
        if self.version == 1:
            return _HEADER.pack(
                SNPBIN_MAGIC, self.word_bits, 0, self.n_rows, self.n_bits
            )
        base = _HEADER.pack(
            SNPBIN2_MAGIC,
            self.word_bits,
            self.crc_chunk_rows,
            self.n_rows,
            self.n_bits,
        )
        crc = zlib.crc32(base)
        if torn_guard:
            crc ^= 0xFFFFFFFF
        return base + _HEADER_CRC.pack(crc)

    @classmethod
    def unpack(cls, raw: bytes, path: str | os.PathLike[str]) -> "SnpbinHeader":
        if len(raw) < SNPBIN_HEADER_BYTES:
            raise DatasetError(
                f"snpbin: {path} too short for a header "
                f"({len(raw)} < {SNPBIN_HEADER_BYTES} bytes)"
            )
        magic, word_bits, aux, n_rows, n_bits = _HEADER.unpack(
            raw[:SNPBIN_HEADER_BYTES]
        )
        if magic == SNPBIN_MAGIC:
            if aux != 0:
                raise DatasetError(
                    f"snpbin: {path} has unsupported flags {aux:#x} "
                    f"(written by a newer version?)"
                )
            version, crc_chunk_rows = 1, 0
        elif magic == SNPBIN2_MAGIC:
            if len(raw) < SNPBIN2_HEADER_BYTES:
                raise DatasetError(
                    f"snpbin: {path} too short for a v2 header "
                    f"({len(raw)} < {SNPBIN2_HEADER_BYTES} bytes) -- "
                    f"truncated or corrupt"
                )
            (stored_crc,) = _HEADER_CRC.unpack(
                raw[SNPBIN_HEADER_BYTES:SNPBIN2_HEADER_BYTES]
            )
            actual_crc = zlib.crc32(raw[:SNPBIN_HEADER_BYTES])
            if stored_crc != actual_crc:
                get_tracer().counters.add(IO_CRC_FAILURES)
                raise IntegrityError(
                    f"snpbin: {path} header CRC mismatch "
                    f"(stored {stored_crc:#010x}, computed "
                    f"{actual_crc:#010x}) -- torn write or corrupt header",
                    path=str(path),
                )
            version, crc_chunk_rows = 2, aux
        else:
            raise DatasetError(f"snpbin: {path} is not a snpbin file (bad magic)")
        try:
            return cls(
                word_bits=word_bits,
                n_rows=n_rows,
                n_bits=n_bits,
                version=version,
                crc_chunk_rows=crc_chunk_rows,
            )
        except DatasetError as exc:
            raise DatasetError(f"snpbin: {path}: {exc}") from exc


class PackedDatasetWriter:
    """Chunked ``.snpbin`` writer: append binary rows in bounded memory.

    The site count is fixed by the first appended chunk (or the
    ``n_bits`` argument); every later chunk must match.  The header is
    finalized on :meth:`close`; until then the file carries a
    placeholder header (v1: ``n_rows == 0``, rejected against the
    actual size; v2: a deliberately invalid header CRC), so a crash
    mid-write is detected on open rather than returning partial data.

    Version 2 (the default) accumulates a CRC32 per run of
    ``crc_chunk_rows`` rows as data streams through -- chunk boundaries
    are fixed by the row count, *not* by append granularity, so the
    same matrix written whole or in arbitrary batches produces
    byte-identical files.

    Use as a context manager::

        with PackedDatasetWriter(path, word_bits=64) as writer:
            for batch in batches:
                writer.append(batch)
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        word_bits: int = 64,
        n_bits: int | None = None,
        version: int = 2,
        crc_chunk_rows: int = DEFAULT_CRC_CHUNK_ROWS,
    ) -> None:
        if word_bits not in _VALID_WORD_BITS:
            raise DatasetError(
                f"PackedDatasetWriter: word_bits must be one of "
                f"{_VALID_WORD_BITS}, got {word_bits}"
            )
        if version not in (1, 2):
            raise DatasetError(
                f"PackedDatasetWriter: unsupported version {version}"
            )
        if version == 2 and crc_chunk_rows <= 0:
            raise DatasetError(
                f"PackedDatasetWriter: crc_chunk_rows must be positive, "
                f"got {crc_chunk_rows}"
            )
        self.path = Path(path)
        self.word_bits = word_bits
        self.n_bits = n_bits
        self.n_rows = 0
        self.version = version
        self.crc_chunk_rows = crc_chunk_rows if version == 2 else 0
        self._chunk_crcs: list[int] = []
        self._partial_crc = 0
        self._partial_rows = 0
        self._fh = open(self.path, "wb")
        self._closed = False
        # Placeholder header; rewritten with the real counts on close.
        self._fh.write(self._header(n_rows=0).pack(torn_guard=version == 2))

    def _header(self, n_rows: int) -> SnpbinHeader:
        return SnpbinHeader(
            self.word_bits,
            n_rows,
            self.n_bits or 0,
            version=self.version,
            crc_chunk_rows=self.crc_chunk_rows,
        )

    def _accumulate_crcs(self, data: bytes, n_new_rows: int) -> None:
        """Fold ``data`` (``n_new_rows`` whole rows) into the chunk CRCs."""
        row_bytes = len(data) // n_new_rows
        offset = 0
        remaining = n_new_rows
        while remaining:
            take = min(self.crc_chunk_rows - self._partial_rows, remaining)
            nbytes = take * row_bytes
            self._partial_crc = zlib.crc32(
                data[offset : offset + nbytes], self._partial_crc
            )
            self._partial_rows += take
            offset += nbytes
            remaining -= take
            if self._partial_rows == self.crc_chunk_rows:
                self._chunk_crcs.append(self._partial_crc)
                self._partial_crc = 0
                self._partial_rows = 0

    def append(self, bits: np.ndarray) -> None:
        """Pack and append one chunk of binary rows."""
        if self._closed:
            raise DatasetError("PackedDatasetWriter: writer is closed")
        arr = np.asarray(bits)
        if arr.ndim != 2:
            raise DatasetError(
                f"PackedDatasetWriter.append: expected 2-D binary rows, "
                f"got ndim={arr.ndim}"
            )
        if self.n_bits is None:
            self.n_bits = int(arr.shape[1])
        elif arr.shape[1] != self.n_bits:
            raise DatasetError(
                f"PackedDatasetWriter.append: chunk has {arr.shape[1]} "
                f"sites, file is {self.n_bits} sites wide"
            )
        if arr.shape[0] == 0:
            return
        words = pack_bits(arr, word_bits=self.word_bits)
        data = np.ascontiguousarray(
            words, dtype=f"<u{self.word_bits // 8}"
        ).tobytes()
        self._fh.write(data)
        if self.version == 2:
            self._accumulate_crcs(data, int(arr.shape[0]))
        self.n_rows += int(arr.shape[0])

    def close(self) -> None:
        """Flush the CRC table, finalize the header and close the file."""
        if self._closed:
            return
        self._closed = True
        try:
            if self.version == 2:
                if self._partial_rows:
                    self._chunk_crcs.append(self._partial_crc)
                    self._partial_crc = 0
                    self._partial_rows = 0
                if self._chunk_crcs:
                    self._fh.write(
                        struct.pack(
                            f"<{len(self._chunk_crcs)}I", *self._chunk_crcs
                        )
                    )
            self._fh.seek(0)
            self._fh.write(self._header(self.n_rows).pack())
        finally:
            self._fh.close()

    def __enter__(self) -> "PackedDatasetWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class PackedDatasetReader:
    """Memory-mapped ``.snpbin`` reader with full header/size validation.

    The data region is mapped read-only, so :meth:`read_words` touches
    only the pages of the requested rows -- the access pattern an
    out-of-core chunk source needs.  :meth:`read_bits` additionally
    unpacks to a ``uint8`` 0/1 matrix (the layout every in-memory API
    of this library consumes).

    For v2 files each CRC chunk is verified lazily, the first time a
    read touches its rows (``verify=False`` opts out); a mismatch
    raises :class:`~repro.errors.IntegrityError`.  V1 files have no
    checksums and always report :attr:`verified` ``False``.
    """

    def __init__(
        self, path: str | os.PathLike[str], verify: bool = True
    ) -> None:
        self.path = Path(path)
        try:
            raw = self.path.open("rb").read(SNPBIN2_HEADER_BYTES)
        except FileNotFoundError as exc:
            raise DatasetError(f"snpbin: no such file: {self.path}") from exc
        header = SnpbinHeader.unpack(raw, self.path)
        actual = self.path.stat().st_size
        expected = header.file_bytes
        if actual != expected:
            raise DatasetError(
                f"snpbin: {self.path} is {actual} bytes, header implies "
                f"{expected} ({header.n_rows} rows x {header.row_bytes} "
                f"bytes + {header.header_bytes}-byte header + "
                f"{header.crc_table_bytes}-byte CRC table) -- truncated "
                f"or corrupt"
            )
        self.header = header
        self._verify = verify and header.version == 2
        self._verify_lock = threading.Lock()
        if header.n_chunks:
            with self.path.open("rb") as fh:
                fh.seek(header.header_bytes + header.data_bytes)
                table = fh.read(header.crc_table_bytes)
            self._chunk_crcs = np.frombuffer(table, dtype="<u4")
            self._chunk_ok = np.zeros(header.n_chunks, dtype=bool)
        else:
            self._chunk_crcs = np.zeros(0, dtype="<u4")
            self._chunk_ok = np.zeros(0, dtype=bool)
        if header.n_rows and header.k_words:
            self._words: np.ndarray = np.memmap(
                self.path,
                dtype=header.dtype,
                mode="r",
                offset=header.header_bytes,
                shape=(header.n_rows, header.k_words),
            )
        else:
            self._words = np.zeros((header.n_rows, header.k_words), dtype=header.dtype)

    @property
    def n_rows(self) -> int:
        return self.header.n_rows

    @property
    def n_bits(self) -> int:
        return self.header.n_bits

    @property
    def word_bits(self) -> int:
        return self.header.word_bits

    @property
    def version(self) -> int:
        return self.header.version

    @property
    def verified(self) -> bool:
        """Whether reads of this file are checksum-verified.

        ``True`` only for v2 files opened with ``verify=True``; legacy
        SNPBIN01 files load fine but carry no checksums, so they report
        ``False``.
        """
        return self._verify

    @property
    def chunks_verified(self) -> int:
        """CRC chunks verified so far by this reader."""
        return int(self._chunk_ok.sum())

    def _check_range(self, start: int, stop: int) -> tuple[int, int]:
        if start < 0 or stop < start:
            raise DatasetError(
                f"snpbin: invalid row range [{start}, {stop})"
            )
        return start, min(stop, self.n_rows)

    def _verify_chunks(self, start: int, stop: int) -> None:
        """Verify the CRC chunks covering rows ``[start, stop)`` once."""
        if stop <= start:
            return
        ccr = self.header.crc_chunk_rows
        first = start // ccr
        last = (stop - 1) // ccr
        for chunk in range(first, last + 1):
            with self._verify_lock:
                if self._chunk_ok[chunk]:
                    continue
                lo = chunk * ccr
                hi = min(lo + ccr, self.n_rows)
                actual = zlib.crc32(
                    np.ascontiguousarray(self._words[lo:hi]).data
                )
                stored = int(self._chunk_crcs[chunk])
                if actual != stored:
                    get_tracer().counters.add(IO_CRC_FAILURES)
                    raise IntegrityError(
                        f"snpbin: {self.path} CRC mismatch in chunk {chunk} "
                        f"(rows [{lo}, {hi}); stored {stored:#010x}, "
                        f"computed {actual:#010x}) -- on-disk corruption",
                        path=str(self.path),
                        chunk=chunk,
                    )
                self._chunk_ok[chunk] = True
            get_tracer().counters.add(IO_CHUNKS_VERIFIED)

    def verify_all(self) -> int:
        """Verify every CRC chunk now; returns the chunk count checked.

        Raises :class:`~repro.errors.IntegrityError` on the first
        mismatch.  V1 files have no checksums: returns 0.
        """
        if self.header.n_chunks == 0:
            return 0
        self._verify_chunks(0, self.n_rows)
        return self.header.n_chunks

    def read_words(self, start: int, stop: int) -> np.ndarray:
        """Packed words of rows ``[start, stop)`` (native-endian copy)."""
        start, stop = self._check_range(start, stop)
        if self._verify:
            self._verify_chunks(start, stop)
        native = np.dtype(f"u{self.word_bits // 8}")
        return np.ascontiguousarray(self._words[start:stop]).astype(native, copy=False)

    def read_bits(self, start: int, stop: int) -> np.ndarray:
        """Unpacked 0/1 ``uint8`` matrix of rows ``[start, stop)``."""
        return unpack_bits(self.read_words(start, stop), n_bits=self.n_bits)

    def bytes_for_rows(self, n: int) -> int:
        """On-disk bytes occupied by ``n`` rows (counter accounting)."""
        return n * self.header.row_bytes

    def iter_chunks(self, chunk_rows: int) -> Iterator[np.ndarray]:
        """Yield unpacked chunks of up to ``chunk_rows`` rows."""
        if chunk_rows <= 0:
            raise DatasetError(
                f"snpbin: chunk_rows must be positive, got {chunk_rows}"
            )
        for start in range(0, self.n_rows, chunk_rows):
            yield self.read_bits(start, start + chunk_rows)

    def close(self) -> None:
        """Release the mapping (further reads are undefined)."""
        self._words = np.zeros((0, self.header.k_words), dtype=self.header.dtype)

    def __enter__(self) -> "PackedDatasetReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"PackedDatasetReader({str(self.path)!r}, n_rows={self.n_rows}, "
            f"n_bits={self.n_bits}, word_bits={self.word_bits}, "
            f"version={self.version})"
        )


def packed_words_ref(
    words: np.ndarray,
) -> tuple[str, int, tuple[int, int], str] | None:
    """Describe a file-backed packed-word matrix for zero-copy re-attach.

    When ``words`` is a C-contiguous 2-D view of a read-only
    :class:`numpy.memmap` (the reader's ``.snpbin`` mapping, or any
    contiguous row slice of it), returns ``(path, byte_offset, shape,
    dtype_str)`` -- everything another *process* needs to map the same
    file region itself via :func:`map_packed_words` instead of
    receiving the bytes over a pipe.  Returns ``None`` for anything
    that is not file-backed (in-memory operands go through shared
    memory instead).

    The byte offset is computed from pointer arithmetic against the
    root memmap, so sliced views resolve to their true position in the
    file (``np.memmap.offset`` on a slice still reports the root's
    creation offset).
    """
    if not isinstance(words, np.ndarray):
        return None
    if words.ndim != 2 or not words.flags["C_CONTIGUOUS"]:
        return None
    # Walk the view chain to the root memmap: the reader's read_words
    # hands out plain-ndarray views of its mapping (ascontiguousarray
    # strips the subclass), and a copy anywhere breaks the chain with
    # base=None, falling back to the shared-memory publish path.
    root: np.ndarray | None = words
    while root is not None and not isinstance(root, np.memmap):
        root = getattr(root, "base", None)
    if not isinstance(root, np.memmap):
        return None
    while isinstance(root.base, np.memmap):
        root = root.base
    filename = getattr(root, "filename", None)
    # Only true read-only mappings are file-backed from every process's
    # point of view.  A copy-on-write mapping (mode="c") can hold parent
    # modifications that never reach the file, so a worker re-mapping
    # the file would silently compute against different data; writable
    # modes can race the re-map.  All of those fall back to the
    # shared-memory copy path, which publishes the bytes as seen.
    if filename is None or getattr(root, "mode", None) != "r":
        return None
    try:
        delta = words.ctypes.data - root.ctypes.data
        if delta + words.nbytes > root.nbytes:
            return None  # pragma: no cover - view outruns its base
        offset = int(root.offset) + int(delta)
    except Exception:  # pragma: no cover - defensive: exotic views
        return None
    if delta < 0:
        return None  # pragma: no cover - views precede their base
    return (
        str(filename),
        offset,
        (int(words.shape[0]), int(words.shape[1])),
        words.dtype.str,
    )


def map_packed_words(
    path: str | os.PathLike[str],
    offset: int,
    shape: tuple[int, int],
    dtype: str | np.dtype,
) -> np.ndarray:
    """Re-attach a packed-word file region described by :func:`packed_words_ref`.

    The worker-side half of the zero-copy ``.snpbin`` hand-off: maps
    rows ``shape[0] x shape[1]`` of packed words read-only at
    ``offset`` bytes into ``path``.  Raises
    :class:`~repro.errors.DatasetError` when the file cannot be mapped
    (vanished or truncated since the parent described it).
    """
    try:
        return np.memmap(
            path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=shape
        )
    except (OSError, ValueError) as exc:
        raise DatasetError(
            f"map_packed_words: cannot map {shape} words at offset {offset} "
            f"of {path}: {exc}"
        ) from exc


def write_snpbin(
    path: str | os.PathLike[str],
    bits: np.ndarray,
    word_bits: int = 64,
    chunk_rows: int = 8192,
    version: int = 2,
    crc_chunk_rows: int = DEFAULT_CRC_CHUNK_ROWS,
) -> int:
    """Write a binary matrix to ``path`` in bounded memory; returns rows."""
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise DatasetError(
            f"write_snpbin: expected a 2-D binary matrix, got ndim={arr.ndim}"
        )
    with PackedDatasetWriter(
        path,
        word_bits=word_bits,
        n_bits=int(arr.shape[1]),
        version=version,
        crc_chunk_rows=crc_chunk_rows,
    ) as w:
        for start in range(0, arr.shape[0], max(1, chunk_rows)):
            w.append(arr[start : start + chunk_rows])
        return w.n_rows
