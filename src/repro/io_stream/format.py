"""The ``.snpbin`` on-disk format: packed binary SNP matrices.

Layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"SNPBIN01"
    8       4     word_bits   (8, 16, 32 or 64)
    12      4     reserved    (must be 0)
    16      8     n_rows      (row count, uint64)
    24      8     n_bits      (valid sites per row, uint64)
    32      ...   data: n_rows x ceil(n_bits / word_bits) words,
                  row-major, little-endian unsigned integers

Bit order within a word matches :func:`repro.util.bitops.pack_bits`
(big-endian within the word: site ``j`` lands at bit position
``word_bits - 1 - (j % word_bits)`` of word ``j // word_bits``), so a
``.snpbin`` row round-trips exactly through
:func:`~repro.util.bitops.unpack_bits`.

The format stores *packed* words -- a 1M x 100k-site matrix is ~12.5 GB
on disk instead of 100 GB unpacked -- and the reader memory-maps the
data region, so reading a chunk of rows touches only those rows' pages.
The trailing words of each row are zero-padded; the reader validates
the header, the word width and the exact file size before mapping.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from types import TracebackType
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.util.bitops import pack_bits, unpack_bits, words_needed

__all__ = [
    "SNPBIN_MAGIC",
    "SNPBIN_HEADER_BYTES",
    "SnpbinHeader",
    "PackedDatasetWriter",
    "PackedDatasetReader",
    "write_snpbin",
    "packed_words_ref",
    "map_packed_words",
]

SNPBIN_MAGIC = b"SNPBIN01"
_HEADER = struct.Struct("<8sIIQQ")
SNPBIN_HEADER_BYTES = _HEADER.size  # 32

_VALID_WORD_BITS = (8, 16, 32, 64)


class SnpbinHeader:
    """Parsed-and-validated ``.snpbin`` header."""

    __slots__ = ("word_bits", "n_rows", "n_bits")

    def __init__(self, word_bits: int, n_rows: int, n_bits: int) -> None:
        if word_bits not in _VALID_WORD_BITS:
            raise DatasetError(
                f"snpbin: word_bits must be one of {_VALID_WORD_BITS}, "
                f"got {word_bits}"
            )
        if n_rows < 0 or n_bits < 0:
            raise DatasetError(
                f"snpbin: negative shape (n_rows={n_rows}, n_bits={n_bits})"
            )
        self.word_bits = word_bits
        self.n_rows = n_rows
        self.n_bits = n_bits

    @property
    def k_words(self) -> int:
        """Packed words per row."""
        return words_needed(self.n_bits, self.word_bits)

    @property
    def row_bytes(self) -> int:
        """Bytes per packed row."""
        return self.k_words * (self.word_bits // 8)

    @property
    def data_bytes(self) -> int:
        """Exact size of the data region."""
        return self.n_rows * self.row_bytes

    @property
    def dtype(self) -> np.dtype:
        """On-disk word dtype (explicitly little-endian)."""
        return np.dtype(f"<u{self.word_bits // 8}")

    def pack(self) -> bytes:
        return _HEADER.pack(SNPBIN_MAGIC, self.word_bits, 0, self.n_rows, self.n_bits)

    @classmethod
    def unpack(cls, raw: bytes, path: str | os.PathLike[str]) -> "SnpbinHeader":
        if len(raw) < SNPBIN_HEADER_BYTES:
            raise DatasetError(
                f"snpbin: {path} too short for a header "
                f"({len(raw)} < {SNPBIN_HEADER_BYTES} bytes)"
            )
        magic, word_bits, reserved, n_rows, n_bits = _HEADER.unpack(
            raw[:SNPBIN_HEADER_BYTES]
        )
        if magic != SNPBIN_MAGIC:
            raise DatasetError(f"snpbin: {path} is not a snpbin file (bad magic)")
        if reserved != 0:
            raise DatasetError(
                f"snpbin: {path} has unsupported flags {reserved:#x} "
                f"(written by a newer version?)"
            )
        try:
            return cls(word_bits=word_bits, n_rows=n_rows, n_bits=n_bits)
        except DatasetError as exc:
            raise DatasetError(f"snpbin: {path}: {exc}") from exc


class PackedDatasetWriter:
    """Chunked ``.snpbin`` writer: append binary rows in bounded memory.

    The site count is fixed by the first appended chunk (or the
    ``n_bits`` argument); every later chunk must match.  The header is
    finalized on :meth:`close`, so a crash mid-write leaves a file with
    ``n_rows == 0`` that the reader rejects against the actual file
    size rather than returning partial data.

    Use as a context manager::

        with PackedDatasetWriter(path, word_bits=64) as writer:
            for batch in batches:
                writer.append(batch)
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        word_bits: int = 64,
        n_bits: int | None = None,
    ) -> None:
        if word_bits not in _VALID_WORD_BITS:
            raise DatasetError(
                f"PackedDatasetWriter: word_bits must be one of "
                f"{_VALID_WORD_BITS}, got {word_bits}"
            )
        self.path = Path(path)
        self.word_bits = word_bits
        self.n_bits = n_bits
        self.n_rows = 0
        self._fh = open(self.path, "wb")
        self._closed = False
        # Placeholder header; rewritten with the real counts on close.
        self._fh.write(SnpbinHeader(word_bits, 0, n_bits or 0).pack())

    def append(self, bits: np.ndarray) -> None:
        """Pack and append one chunk of binary rows."""
        if self._closed:
            raise DatasetError("PackedDatasetWriter: writer is closed")
        arr = np.asarray(bits)
        if arr.ndim != 2:
            raise DatasetError(
                f"PackedDatasetWriter.append: expected 2-D binary rows, "
                f"got ndim={arr.ndim}"
            )
        if self.n_bits is None:
            self.n_bits = int(arr.shape[1])
        elif arr.shape[1] != self.n_bits:
            raise DatasetError(
                f"PackedDatasetWriter.append: chunk has {arr.shape[1]} "
                f"sites, file is {self.n_bits} sites wide"
            )
        if arr.shape[0] == 0:
            return
        words = pack_bits(arr, word_bits=self.word_bits)
        self._fh.write(np.ascontiguousarray(words, dtype=f"<u{self.word_bits // 8}").tobytes())
        self.n_rows += int(arr.shape[0])

    def close(self) -> None:
        """Finalize the header and close the file."""
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.seek(0)
            self._fh.write(
                SnpbinHeader(self.word_bits, self.n_rows, self.n_bits or 0).pack()
            )
        finally:
            self._fh.close()

    def __enter__(self) -> "PackedDatasetWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class PackedDatasetReader:
    """Memory-mapped ``.snpbin`` reader with full header/size validation.

    The data region is mapped read-only, so :meth:`read_words` touches
    only the pages of the requested rows -- the access pattern an
    out-of-core chunk source needs.  :meth:`read_bits` additionally
    unpacks to a ``uint8`` 0/1 matrix (the layout every in-memory API
    of this library consumes).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        try:
            raw = self.path.open("rb").read(SNPBIN_HEADER_BYTES)
        except FileNotFoundError as exc:
            raise DatasetError(f"snpbin: no such file: {self.path}") from exc
        header = SnpbinHeader.unpack(raw, self.path)
        actual = self.path.stat().st_size
        expected = SNPBIN_HEADER_BYTES + header.data_bytes
        if actual != expected:
            raise DatasetError(
                f"snpbin: {self.path} is {actual} bytes, header implies "
                f"{expected} ({header.n_rows} rows x {header.row_bytes} "
                f"bytes + {SNPBIN_HEADER_BYTES}-byte header) -- truncated "
                f"or corrupt"
            )
        self.header = header
        if header.n_rows and header.k_words:
            self._words: np.ndarray = np.memmap(
                self.path,
                dtype=header.dtype,
                mode="r",
                offset=SNPBIN_HEADER_BYTES,
                shape=(header.n_rows, header.k_words),
            )
        else:
            self._words = np.zeros((header.n_rows, header.k_words), dtype=header.dtype)

    @property
    def n_rows(self) -> int:
        return self.header.n_rows

    @property
    def n_bits(self) -> int:
        return self.header.n_bits

    @property
    def word_bits(self) -> int:
        return self.header.word_bits

    def _check_range(self, start: int, stop: int) -> tuple[int, int]:
        if start < 0 or stop < start:
            raise DatasetError(
                f"snpbin: invalid row range [{start}, {stop})"
            )
        return start, min(stop, self.n_rows)

    def read_words(self, start: int, stop: int) -> np.ndarray:
        """Packed words of rows ``[start, stop)`` (native-endian copy)."""
        start, stop = self._check_range(start, stop)
        native = np.dtype(f"u{self.word_bits // 8}")
        return np.ascontiguousarray(self._words[start:stop]).astype(native, copy=False)

    def read_bits(self, start: int, stop: int) -> np.ndarray:
        """Unpacked 0/1 ``uint8`` matrix of rows ``[start, stop)``."""
        return unpack_bits(self.read_words(start, stop), n_bits=self.n_bits)

    def bytes_for_rows(self, n: int) -> int:
        """On-disk bytes occupied by ``n`` rows (counter accounting)."""
        return n * self.header.row_bytes

    def iter_chunks(self, chunk_rows: int) -> Iterator[np.ndarray]:
        """Yield unpacked chunks of up to ``chunk_rows`` rows."""
        if chunk_rows <= 0:
            raise DatasetError(
                f"snpbin: chunk_rows must be positive, got {chunk_rows}"
            )
        for start in range(0, self.n_rows, chunk_rows):
            yield self.read_bits(start, start + chunk_rows)

    def close(self) -> None:
        """Release the mapping (further reads are undefined)."""
        self._words = np.zeros((0, self.header.k_words), dtype=self.header.dtype)

    def __enter__(self) -> "PackedDatasetReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"PackedDatasetReader({str(self.path)!r}, n_rows={self.n_rows}, "
            f"n_bits={self.n_bits}, word_bits={self.word_bits})"
        )


def packed_words_ref(
    words: np.ndarray,
) -> tuple[str, int, tuple[int, int], str] | None:
    """Describe a file-backed packed-word matrix for zero-copy re-attach.

    When ``words`` is a C-contiguous 2-D view of a read-only
    :class:`numpy.memmap` (the reader's ``.snpbin`` mapping, or any
    contiguous row slice of it), returns ``(path, byte_offset, shape,
    dtype_str)`` -- everything another *process* needs to map the same
    file region itself via :func:`map_packed_words` instead of
    receiving the bytes over a pipe.  Returns ``None`` for anything
    that is not file-backed (in-memory operands go through shared
    memory instead).

    The byte offset is computed from pointer arithmetic against the
    root memmap, so sliced views resolve to their true position in the
    file (``np.memmap.offset`` on a slice still reports the root's
    creation offset).
    """
    if not isinstance(words, np.ndarray):
        return None
    if words.ndim != 2 or not words.flags["C_CONTIGUOUS"]:
        return None
    # Walk the view chain to the root memmap: the reader's read_words
    # hands out plain-ndarray views of its mapping (ascontiguousarray
    # strips the subclass), and a copy anywhere breaks the chain with
    # base=None, falling back to the shared-memory publish path.
    root: np.ndarray | None = words
    while root is not None and not isinstance(root, np.memmap):
        root = getattr(root, "base", None)
    if not isinstance(root, np.memmap):
        return None
    while isinstance(root.base, np.memmap):
        root = root.base
    filename = getattr(root, "filename", None)
    # Only true read-only mappings are file-backed from every process's
    # point of view.  A copy-on-write mapping (mode="c") can hold parent
    # modifications that never reach the file, so a worker re-mapping
    # the file would silently compute against different data; writable
    # modes can race the re-map.  All of those fall back to the
    # shared-memory copy path, which publishes the bytes as seen.
    if filename is None or getattr(root, "mode", None) != "r":
        return None
    try:
        delta = words.ctypes.data - root.ctypes.data
        if delta + words.nbytes > root.nbytes:
            return None  # pragma: no cover - view outruns its base
        offset = int(root.offset) + int(delta)
    except Exception:  # pragma: no cover - defensive: exotic views
        return None
    if delta < 0:
        return None  # pragma: no cover - views precede their base
    return (
        str(filename),
        offset,
        (int(words.shape[0]), int(words.shape[1])),
        words.dtype.str,
    )


def map_packed_words(
    path: str | os.PathLike[str],
    offset: int,
    shape: tuple[int, int],
    dtype: str | np.dtype,
) -> np.ndarray:
    """Re-attach a packed-word file region described by :func:`packed_words_ref`.

    The worker-side half of the zero-copy ``.snpbin`` hand-off: maps
    rows ``shape[0] x shape[1]`` of packed words read-only at
    ``offset`` bytes into ``path``.  Raises
    :class:`~repro.errors.DatasetError` when the file cannot be mapped
    (vanished or truncated since the parent described it).
    """
    try:
        return np.memmap(
            path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=shape
        )
    except (OSError, ValueError) as exc:
        raise DatasetError(
            f"map_packed_words: cannot map {shape} words at offset {offset} "
            f"of {path}: {exc}"
        ) from exc


def write_snpbin(
    path: str | os.PathLike[str],
    bits: np.ndarray,
    word_bits: int = 64,
    chunk_rows: int = 8192,
) -> int:
    """Write a binary matrix to ``path`` in bounded memory; returns rows."""
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise DatasetError(
            f"write_snpbin: expected a 2-D binary matrix, got ndim={arr.ndim}"
        )
    with PackedDatasetWriter(path, word_bits=word_bits, n_bits=int(arr.shape[1])) as w:
        for start in range(0, arr.shape[0], max(1, chunk_rows)):
            w.append(arr[start : start + chunk_rows])
        return w.n_rows
