"""Double-buffered chunk prefetch: overlap ingest with compute.

:class:`ChunkStream` iterates a :class:`~repro.io_stream.sources.ChunkSource`
with a background producer thread: while the consumer runs chunk *i*
through the engine, the producer reads (and optionally *prepares* --
e.g. packs) chunk *i+1*.  This is the host-layer mirror of the
pipeline's simulated device double buffering, and the access pattern
Beyer & Bientinesi show sustains peak throughput when streaming from
disk: with compute per chunk >= read time per chunk, the consumer
never stalls after the first chunk.

Accounting is split across the two sides and lands in the
observability counters:

* ``stream.read_s`` -- producer wall seconds reading + preparing;
* ``stream.prefetch_stall_s`` -- consumer wall seconds blocked waiting
  for a chunk (the overlap *failure* time; the benchmark gate keeps
  this well under the read time);
* ``stream.chunks`` / ``stream.bytes_read`` -- volume, deterministic
  for a given source and chunk size.

With ``prefetch=False`` the same interface runs synchronously (every
read stalls the consumer by definition), which is the comparison
baseline ``benchmarks/bench_streaming_io.py`` demonstrates against.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import DatasetError
from repro.io_stream.sources import ChunkSource
from repro.observability.counters import (
    STREAM_BYTES_READ,
    STREAM_CHUNKS,
    STREAM_PREFETCH_STALL_SECONDS,
    STREAM_PRODUCER_LEAKED,
    STREAM_READ_SECONDS,
)
from repro.observability.tracer import get_tracer

__all__ = ["StreamStats", "ChunkStream"]

#: Producer->consumer queue entries: ("chunk", payload) | ("error", exc)
#: | ("done", None).
_Item = tuple[str, Any]


@dataclass
class StreamStats:
    """Aggregate accounting for one streamed pass."""

    chunks: int = 0
    bytes_read: int = 0
    read_s: float = 0.0
    stall_s: float = 0.0

    @property
    def stall_fraction(self) -> float:
        """Stall time as a fraction of read time (0 = perfect overlap)."""
        return self.stall_s / self.read_s if self.read_s > 0 else 0.0


class ChunkStream:
    """Iterate a chunk source with (optional) background prefetch.

    Parameters
    ----------
    source:
        Where the rows come from.
    chunk_rows:
        Rows per chunk.
    prepare:
        Optional callable applied to each chunk *on the producer
        thread* (e.g. ``framework.pack``) so preparation overlaps
        compute too.  The iterator yields ``prepare(chunk)`` results.
    prefetch:
        ``True`` (default) runs the producer on a background thread
        with a one-chunk hand-off queue (double buffering);
        ``False`` reads synchronously -- same semantics, no overlap.

    Iterate at most once; ``stats`` is valid during and after the pass.
    """

    def __init__(
        self,
        source: ChunkSource,
        chunk_rows: int,
        prepare: Callable[[Any], Any] | None = None,
        prefetch: bool = True,
    ) -> None:
        if chunk_rows <= 0:
            raise DatasetError(
                f"ChunkStream: chunk_rows must be positive, got {chunk_rows}"
            )
        self.source = source
        self.chunk_rows = chunk_rows
        self.prepare = prepare
        self.prefetch = prefetch
        self.stats = StreamStats()
        self._started = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._queue: "queue.Queue[_Item]" | None = None

    # -- producer side ---------------------------------------------------------

    def _produce_one(self, chunk_iter: Iterator[Any]) -> _Item | None:
        """Read + prepare the next chunk, accounting the producer time."""
        obs = get_tracer()
        start = time.perf_counter()
        try:
            chunk = next(chunk_iter)
        except StopIteration:
            return None
        raw_bytes = self.source.chunk_nbytes(chunk)
        payload = self.prepare(chunk) if self.prepare is not None else chunk
        elapsed = time.perf_counter() - start
        self.stats.read_s += elapsed
        self.stats.bytes_read += raw_bytes
        obs.counters.add(STREAM_READ_SECONDS, elapsed)
        obs.counters.add(STREAM_BYTES_READ, raw_bytes)
        return ("chunk", payload)

    def _put(self, out: "queue.Queue[_Item]", item: _Item) -> bool:
        """Hand an item to the consumer, yielding to the stop flag.

        A plain blocking ``put`` deadlocks if the consumer abandons the
        iterator without draining (the hand-off queue stays full
        forever); polling with a short timeout keeps the producer
        responsive to :meth:`close`.  Returns ``False`` when stopped.
        """
        while not self._stop.is_set():
            try:
                out.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _producer(self, out: "queue.Queue[_Item]") -> None:
        chunk_iter = iter(self.source.chunks(self.chunk_rows))
        try:
            while not self._stop.is_set():
                item = self._produce_one(chunk_iter)
                if item is None:
                    break
                if not self._put(out, item):
                    return
            self._put(out, ("done", None))
        except BaseException as exc:  # propagate to the consumer
            self._put(out, ("error", exc))

    # -- consumer side ---------------------------------------------------------

    def _iter_prefetched(self) -> Iterator[Any]:
        obs = get_tracer()
        out: "queue.Queue[_Item]" = queue.Queue(maxsize=1)
        self._queue = out
        self._thread = threading.Thread(
            target=self._producer, args=(out,), name="snp-chunk-prefetch", daemon=True
        )
        self._thread.start()
        try:
            while True:
                start = time.perf_counter()
                kind, payload = out.get()
                stall = time.perf_counter() - start
                self.stats.stall_s += stall
                obs.counters.add(STREAM_PREFETCH_STALL_SECONDS, stall)
                if kind == "done":
                    return
                if kind == "error":
                    raise payload
                self.stats.chunks += 1
                obs.counters.add(STREAM_CHUNKS)
                yield payload
        finally:
            self.close()

    def _iter_sync(self) -> Iterator[Any]:
        """Synchronous baseline: every read stalls the consumer."""
        obs = get_tracer()
        chunk_iter = iter(self.source.chunks(self.chunk_rows))
        while True:
            item = self._produce_one(chunk_iter)
            if item is None:
                return
            kind, payload = item
            # The consumer waited for the whole read: stall == read.
            stall = self.stats.read_s - self.stats.stall_s
            self.stats.stall_s = self.stats.read_s
            obs.counters.add(STREAM_PREFETCH_STALL_SECONDS, stall)
            self.stats.chunks += 1
            obs.counters.add(STREAM_CHUNKS)
            yield payload

    def __iter__(self) -> Iterator[Any]:
        if self._started:
            raise DatasetError("ChunkStream: already consumed (one-shot)")
        self._started = True
        return self._iter_prefetched() if self.prefetch else self._iter_sync()

    def close(self, timeout: float = 5.0) -> None:
        """Stop the producer thread, deterministically (idempotent).

        Sets the stop flag, drains the hand-off queue (unblocking a
        producer stuck on a full queue) and joins with a *bounded*
        wait.  A producer that outlives the bound -- wedged inside a
        source read it cannot abandon -- is counted under
        ``stream.producer_leaked`` and raised, instead of the old
        unbounded spin that could hang teardown forever.
        """
        self._stop.set()
        thread = self._thread
        out = self._queue
        self._thread = None
        self._queue = None
        if thread is None:
            return
        deadline = time.perf_counter() + max(timeout, 0.0)
        while thread.is_alive() and time.perf_counter() < deadline:
            if out is not None:
                try:
                    out.get_nowait()
                except queue.Empty:
                    pass
            thread.join(timeout=0.05)
        if thread.is_alive():
            get_tracer().counters.add(STREAM_PRODUCER_LEAKED)
            raise RuntimeError(
                f"ChunkStream.close: producer thread failed to join within "
                f"{timeout}s -- thread leaked"
            )
