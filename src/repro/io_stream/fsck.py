"""Offline integrity check for ``.snpbin`` shards: scan and quarantine.

``repro.cli fsck`` drives this module: it walks a shard file or a
directory of shards, forces full CRC verification on every SNPBIN02
file (:meth:`PackedDatasetReader.verify_all`), and reports per file.
SNPBIN01 files carry no checksums -- they are reported ``ok`` with
``verified=False`` so operators can see which shards predate the
checksummed format.

With ``quarantine=True`` a corrupt shard is renamed to
``<name>.snpbin.quarantined``, which removes it from the ``*.snpbin``
glob that :class:`repro.serve.index.ProfileIndex` scans on open: the
service comes back up serving every healthy shard instead of refusing
to start (or worse, serving flipped bits).  The bytes are preserved for
forensics; nothing is deleted.

Detection here is *exact*, not statistical: every chunk's CRC32 is
checked, so any truncation, torn write, or bit flip in header, data,
or CRC table surfaces as a :class:`~repro.errors.IntegrityError` and a
non-ok report line (see ``tests/test_integrity.py`` for the property
tests flipping arbitrary bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DatasetError
from repro.io_stream.format import PackedDatasetReader

__all__ = ["FsckFileReport", "FsckReport", "fsck_file", "fsck_directory"]

#: Suffix appended to corrupt shards when quarantining.
QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class FsckFileReport:
    """Outcome of checking one ``.snpbin`` file."""

    path: str
    ok: bool
    version: int = 0
    verified: bool = False
    n_rows: int = 0
    chunks_verified: int = 0
    error: str | None = None
    quarantined_to: str | None = None

    def describe(self) -> str:
        if not self.ok:
            tail = f" -> quarantined as {self.quarantined_to}" if (
                self.quarantined_to
            ) else ""
            return f"CORRUPT  {self.path}: {self.error}{tail}"
        if not self.verified:
            return (
                f"ok       {self.path}: SNPBIN01, {self.n_rows} rows "
                f"(no checksums -- rewrite to verify)"
            )
        return (
            f"ok       {self.path}: SNPBIN0{self.version}, "
            f"{self.n_rows} rows, {self.chunks_verified} chunks verified"
        )


@dataclass
class FsckReport:
    """Aggregate outcome of an fsck pass."""

    files: list[FsckFileReport] = field(default_factory=list)

    @property
    def n_ok(self) -> int:
        return sum(1 for f in self.files if f.ok)

    @property
    def n_corrupt(self) -> int:
        return sum(1 for f in self.files if not f.ok)

    @property
    def clean(self) -> bool:
        return self.n_corrupt == 0


def fsck_file(path: "str | Path") -> FsckFileReport:
    """Fully verify one shard file; never raises on corruption."""
    path = Path(path)
    try:
        with PackedDatasetReader(path) as reader:
            chunks = reader.verify_all()
            return FsckFileReport(
                path=str(path),
                ok=True,
                version=reader.version,
                verified=reader.verified,
                n_rows=reader.n_rows,
                chunks_verified=chunks,
            )
    except DatasetError as exc:  # IntegrityError is a DatasetError
        return FsckFileReport(path=str(path), ok=False, error=str(exc))
    except OSError as exc:
        return FsckFileReport(path=str(path), ok=False, error=str(exc))


def fsck_directory(
    directory: "str | Path", quarantine: bool = False
) -> FsckReport:
    """Check every ``*.snpbin`` under ``directory`` (sorted, like the index).

    ``quarantine=True`` renames corrupt shards out of the index's glob;
    the report records the destination path per quarantined file.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(
            f"fsck: {directory} is not a directory "
            f"(pass a shard file to fsck_file instead)"
        )
    report = FsckReport()
    for path in sorted(directory.glob("*.snpbin")):
        file_report = fsck_file(path)
        if not file_report.ok and quarantine:
            target = path.with_name(path.name + QUARANTINE_SUFFIX)
            path.rename(target)
            file_report.quarantined_to = str(target)
        report.files.append(file_report)
    return report
