"""CSR-style sparse storage of SNP matrices.

A binary SNP matrix with mostly-zero entries (mostly major alleles) is
stored as the sorted positions of its 1s per row:

* ``indices`` -- concatenated, per-row-sorted site indices of minor
  alleles (``int32``),
* ``indptr`` -- row boundaries into ``indices`` (``int64``,
  length ``n_rows + 1``),
* ``n_sites`` -- the logical row width.

This is the classic CSR pattern restricted to binary values (no
``data`` array -- presence is the value), which is exactly what the
sparse comparison kernels need: popcounts of AND/XOR/AND-NOT become
sorted-set intersection/symmetric-difference/difference sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["SparseSNPMatrix"]


@dataclass
class SparseSNPMatrix:
    """Binary sparse matrix in index-list (CSR) form."""

    indices: np.ndarray
    indptr: np.ndarray
    n_sites: int

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int32)
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise DatasetError("SparseSNPMatrix: indptr must be 1-D, non-empty")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise DatasetError(
                "SparseSNPMatrix: indptr must start at 0 and end at nnz"
            )
        if (np.diff(self.indptr) < 0).any():
            raise DatasetError("SparseSNPMatrix: indptr must be non-decreasing")
        if self.n_sites < 0:
            raise DatasetError("SparseSNPMatrix: n_sites must be >= 0")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_sites:
                raise DatasetError(
                    "SparseSNPMatrix: site indices out of [0, n_sites)"
                )
            for r in range(self.n_rows):
                row = self.row(r)
                if (np.diff(row) <= 0).any():
                    raise DatasetError(
                        f"SparseSNPMatrix: row {r} not strictly sorted"
                    )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(cls, bits: np.ndarray) -> "SparseSNPMatrix":
        """Build from a dense binary (rows, sites) matrix."""
        arr = np.asarray(bits)
        if arr.ndim != 2:
            raise DatasetError("from_dense: expected a 2-D binary matrix")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise DatasetError("from_dense: matrix must be binary")
        rows, cols = np.nonzero(arr)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indices=cols.astype(np.int32), indptr=indptr, n_sites=arr.shape[1])

    def to_dense(self) -> np.ndarray:
        """Materialize the dense binary matrix."""
        out = np.zeros((self.n_rows, self.n_sites), dtype=np.uint8)
        for r in range(self.n_rows):
            out[r, self.row(r)] = 1
        return out

    # -- properties -----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def nnz(self) -> int:
        """Total minor-allele count."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Fraction of entries set (mean minor-allele frequency)."""
        total = self.n_rows * self.n_sites
        return self.nnz / total if total else 0.0

    def row(self, r: int) -> np.ndarray:
        """Sorted minor-allele site indices of row ``r`` (a view)."""
        if not (0 <= r < self.n_rows):
            raise DatasetError(f"row: index {r} out of range [0, {self.n_rows})")
        return self.indices[self.indptr[r] : self.indptr[r + 1]]

    def row_counts(self) -> np.ndarray:
        """Per-row minor-allele counts (|r| in the kernel identities)."""
        return np.diff(self.indptr)

    def subset_rows(self, rows: list[int] | np.ndarray) -> "SparseSNPMatrix":
        """New sparse matrix containing the given rows, in order."""
        rows = np.asarray(rows, dtype=np.int64)
        pieces = [self.row(int(r)) for r in rows]
        indices = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int32)
        lengths = np.array([p.size for p in pieces], dtype=np.int64)
        indptr = np.concatenate([[0], np.cumsum(lengths)])
        return SparseSNPMatrix(indices=indices, indptr=indptr, n_sites=self.n_sites)

    def __repr__(self) -> str:
        return (
            f"SparseSNPMatrix({self.n_rows}x{self.n_sites}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )
