"""Device-level sparse kernel pricing: the §VII extension on GPU pipes.

:mod:`repro.sparse.cost` models host-relative costs with opaque
constants.  This module grounds the same question in the model GPU
architecture: what would a *device* sparse-intersection kernel cost,
priced on the same pipes as the dense kernel?

Per expected index match, a merge-style sparse kernel executes integer
compares, selects and pointer updates -- all ALU-pipe operations (there
is no POPC in sparse kernels at all), with poor SIMD utilization
because thread groups diverge on irregular list lengths:

    alu_ops_per_match   ~ ops_per_match / simd_efficiency
    sparse_rate         = N_cl * alu_units / alu_ops_per_match
    dense_rate          = words_per_cycle_per_core (per word-op)

Equating expected work gives the *device* density crossover

    d*^2 * k_bits * (cost per match)  =  k_bits/32 * (cost per word)

which lands in the same few-percent-MAF band as the host model
(6-9 % across the three devices with the default constants): the
GPU's dense popcount path is extraordinarily cheap, but its wide ALU
pipes also chew through index matches quickly.  Devices with wider
ALU pipes relative to their dense rate (Maxwell's 32 lanes) tolerate
sparsity better than ALU-lean ones (Vega's 16, already saturated by
the dense kernel).  Either way the win is confined to rare-variant
panels -- quantifying why the paper's authors could defer sparse
support without losing much on their evaluation workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.arch import GPUArchitecture
from repro.blis.microkernel import ComparisonOp
from repro.gpu.cycles import words_per_cycle_per_core

__all__ = ["DeviceSparseModel", "device_density_crossover"]


@dataclass(frozen=True)
class DeviceSparseModel:
    """Cost of a merge-intersection kernel on one model GPU.

    Parameters
    ----------
    ops_per_match:
        ALU operations per expected index match at full SIMD
        efficiency (compare + select + two pointer updates ~ 4).
    simd_efficiency:
        Fraction of lanes doing useful work under divergence
        (irregular per-row list lengths); 0.25 is a typical figure for
        unsorted merge loops on 32-wide groups.
    """

    arch: GPUArchitecture
    ops_per_match: float = 4.0
    simd_efficiency: float = 0.25

    def __post_init__(self) -> None:
        if self.ops_per_match <= 0 or not (0 < self.simd_efficiency <= 1):
            raise ModelError("DeviceSparseModel: invalid cost parameters")

    def sparse_matches_per_cycle_per_core(self) -> float:
        """Index matches one core retires per cycle."""
        effective_ops = self.ops_per_match / self.simd_efficiency
        return self.arch.n_cl * self.arch.alu_units / effective_ops

    def sparse_seconds(self, m: int, n: int, k_bits: int, density: float) -> float:
        """Expected device time of the sparse kernel (full device)."""
        if min(m, n, k_bits) <= 0:
            raise ModelError("sparse_seconds: extents must be positive")
        if not (0 <= density <= 1):
            raise ModelError("sparse_seconds: density outside [0, 1]")
        expected_matches = m * n * k_bits * density * density
        rate = self.sparse_matches_per_cycle_per_core() * self.arch.n_c
        return expected_matches / (rate * self.arch.frequency_hz)

    def dense_seconds(self, m: int, n: int, k_bits: int) -> float:
        """Dense popcount-kernel time at pipe peak (full device)."""
        if min(m, n, k_bits) <= 0:
            raise ModelError("dense_seconds: extents must be positive")
        k_words = -(-k_bits // self.arch.word_bits)
        rate = words_per_cycle_per_core(self.arch, ComparisonOp.AND) * self.arch.n_c
        return m * n * k_words / (rate * self.arch.frequency_hz)


def device_density_crossover(
    arch: GPUArchitecture,
    model: DeviceSparseModel | None = None,
    k_bits: int = 10_000,
) -> float:
    """Density below which the device sparse kernel wins.

    Closed form: equate expected sparse matches x cost with dense
    word count x cost; ``d* = sqrt(dense_rate_ratio / (word_bits))``
    -- evaluated numerically through the model for robustness.
    """
    model = model or DeviceSparseModel(arch=arch)
    if model.arch is not arch:
        raise ModelError("device_density_crossover: model/arch mismatch")
    lo, hi = 0.0, 1.0
    dense = model.dense_seconds(64, 64, k_bits)
    if model.sparse_seconds(64, 64, k_bits, lo) >= dense:
        return 0.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if model.sparse_seconds(64, 64, k_bits, mid) < dense:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
