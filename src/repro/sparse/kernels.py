"""Sparse comparison kernels: set arithmetic instead of popcounts.

For rows stored as sorted index sets ``A`` and ``B`` over the same
sites, the dense micro-kernel semantics translate to:

========  ======================================  =====================
Kernel    Dense form                              Sparse form
========  ======================================  =====================
AND       sum_k POPC(a_k & b_k)                   ``|A ∩ B|``
XOR       sum_k POPC(a_k ^ b_k)                   ``|A| + |B| - 2|A ∩ B|``
AND-NOT   sum_k POPC(a_k & ~b_k)                  ``|A| - |A ∩ B|``
========  ======================================  =====================

so every kernel reduces to intersection sizes.  Intersections are
computed two ways:

* **all-pairs sparse-sparse** -- one vectorized pass: a scatter of B's
  rows into a site->rows table, then for each A row a gather/bincount
  (complexity ~ sum over sites of nnz_A(site) * nnz_B(site), the
  classic sparse-GEMM bound);
* **sparse x dense** -- for strongly asymmetric problems (sparse query
  set against a dense-packed database): each query's set bits select
  database columns, ``counts = sum over selected columns`` done as one
  dense gather-sum.  This mirrors how the paper's framework would stage
  a dense database on-device while queries arrive sparse.
"""

from __future__ import annotations

import numpy as np

from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import DatasetError
from repro.sparse.matrix import SparseSNPMatrix

__all__ = ["intersection_counts", "sparse_comparison", "sparse_dense_comparison"]


def intersection_counts(
    a: SparseSNPMatrix, b: SparseSNPMatrix
) -> np.ndarray:
    """All-pairs intersection sizes ``|A_i ∩ B_j]`` as an int64 matrix."""
    if a.n_sites != b.n_sites:
        raise DatasetError(
            f"intersection_counts: site counts differ ({a.n_sites} vs {b.n_sites})"
        )
    out = np.zeros((a.n_rows, b.n_rows), dtype=np.int64)
    if a.nnz == 0 or b.nnz == 0:
        return out
    # Invert B: for each site, which B rows carry it.
    order = np.argsort(b.indices, kind="stable")
    sites_sorted = b.indices[order]
    b_rows = np.repeat(np.arange(b.n_rows, dtype=np.int64), b.row_counts())[order]
    # site -> slice into b_rows.
    site_starts = np.searchsorted(sites_sorted, np.arange(b.n_sites + 1))
    for i in range(a.n_rows):
        row_sites = a.row(i)
        if row_sites.size == 0:
            continue
        # Gather all B rows that share any site with A_i and histogram.
        pieces = [
            b_rows[site_starts[s] : site_starts[s + 1]] for s in row_sites
        ]
        hits = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
        if hits.size:
            out[i] += np.bincount(hits, minlength=b.n_rows)
    return out


def _apply_identity(
    op: ComparisonOp,
    inter: np.ndarray,
    a_counts: np.ndarray,
    b_counts: np.ndarray,
) -> np.ndarray:
    if op in (ComparisonOp.AND, ComparisonOp.AND_PRENEGATED):
        return inter
    if op is ComparisonOp.XOR:
        return a_counts[:, None] + b_counts[None, :] - 2 * inter
    if op is ComparisonOp.ANDNOT:
        return a_counts[:, None] - inter
    raise DatasetError(f"sparse kernels: unhandled op {op!r}")


def sparse_comparison(
    a: SparseSNPMatrix,
    b: SparseSNPMatrix | None = None,
    op: ComparisonOp | str = ComparisonOp.AND,
) -> np.ndarray:
    """All-pairs sparse-sparse comparison table (bit-exact with dense).

    ``AND_PRENEGATED`` is interpreted at the *logical* level here: the
    sparse store always holds the positive (non-negated) sets, so it
    behaves as plain AND -- pre-negation is a dense-format packing
    trick with no sparse analogue (the complement of a sparse set is
    dense).
    """
    op = get_microkernel(op).op
    b_mat = a if b is None else b
    inter = intersection_counts(a, b_mat)
    return _apply_identity(op, inter, a.row_counts(), b_mat.row_counts())


def sparse_dense_comparison(
    queries: SparseSNPMatrix,
    database_bits: np.ndarray,
    op: ComparisonOp | str = ComparisonOp.XOR,
) -> np.ndarray:
    """Sparse queries against a dense binary database.

    The asymmetric FastID geometry: a handful of (sparse) queries vs a
    large dense (rows, sites) 0/1 matrix.  Per query, the intersection
    with every database row is the sum of the database columns the
    query's set bits select -- one dense gather-sum per query.
    """
    db = np.asarray(database_bits)
    if db.ndim != 2:
        raise DatasetError("sparse_dense_comparison: database must be 2-D")
    if db.shape[1] != queries.n_sites:
        raise DatasetError(
            f"sparse_dense_comparison: site counts differ "
            f"({queries.n_sites} vs {db.shape[1]})"
        )
    op = get_microkernel(op).op
    inter = np.zeros((queries.n_rows, db.shape[0]), dtype=np.int64)
    for i in range(queries.n_rows):
        sites = queries.row(i)
        if sites.size:
            inter[i] = db[:, sites].sum(axis=1, dtype=np.int64)
    db_counts = db.sum(axis=1, dtype=np.int64)
    return _apply_identity(op, inter, queries.row_counts(), db_counts)
