"""Sparse SNP representation (the paper's Section VII future work).

"This approach represents SNP strings as dense bitvectors, but a
typical DNA sample is expected to contain mostly major alleles.  This
suggests that sparse representations of the SNP strings may be
beneficial.  Extending the framework to sparse matrix-matrix
multiplication operations is a goal for future work."

This package implements that extension:

* :mod:`repro.sparse.matrix` -- :class:`SparseSNPMatrix`, a CSR-style
  store of minor-allele *positions* per row.
* :mod:`repro.sparse.kernels` -- sparse comparison kernels: the three
  micro-kernel semantics (AND / XOR / AND-NOT popcount accumulation)
  via sorted-set intersection arithmetic, plus a sparse-times-dense
  path for asymmetric density (sparse queries vs a dense database).
* :mod:`repro.sparse.cost` -- an operation-count cost model and the
  density crossover analysis: below which minor-allele frequency the
  sparse representation wins over the dense popcount kernel.
* :mod:`repro.sparse.auto` -- automatic format selection for the
  framework, driven by the cost model.

All sparse kernels are bit-exact with the dense drivers (asserted by
tests and property-based checks).
"""

from repro.sparse.matrix import SparseSNPMatrix
from repro.sparse.kernels import (
    sparse_comparison,
    sparse_dense_comparison,
)
from repro.sparse.cost import (
    SparseCostModel,
    density_crossover,
)
from repro.sparse.auto import choose_representation, RepresentationChoice

__all__ = [
    "SparseSNPMatrix",
    "sparse_comparison",
    "sparse_dense_comparison",
    "SparseCostModel",
    "density_crossover",
    "choose_representation",
    "RepresentationChoice",
]
