"""Cost model and density crossover for sparse vs dense comparison.

The dense kernel's work is density-independent: every packed word costs
one (op, POPC, ADD) regardless of content --

    dense_ops(m, n, k_bits) = m * n * ceil(k_bits / word_bits)

The sparse-sparse kernel's expected work under i.i.d. density ``d`` is
the expected intersection workload --

    sparse_ops(m, n, k_bits, d) ~ m * n * k_bits * d^2 * C_sparse
    (each of the k_bits sites contributes a_row-hit * b_row-hit work)

plus a per-pair fixed overhead.  Equating the two gives the density
crossover the paper's future-work remark anticipates: sparse wins when
the minor-allele frequency is below roughly
``sqrt(1 / (word_bits * C_sparse))`` -- a few percent for realistic
constants, which is precisely the regime of rare-variant panels.

``C_sparse`` (cost of one index-match relative to one dense word-op)
and the per-pair overhead are parameters: index arithmetic lacks the
dense kernel's regularity (no vector POPC, scattered access), so a
single sparse "op" is substantially more expensive than a dense one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["SparseCostModel", "density_crossover"]


@dataclass(frozen=True)
class SparseCostModel:
    """Relative-cost model for format selection.

    Parameters
    ----------
    word_bits:
        Dense packing width (32 on the modeled GPUs).
    sparse_op_cost:
        Cost of one sparse index match, in units of one dense word-op.
        Default 8: scattered integer compares vs pipelined POPC.
    pair_overhead:
        Fixed per-(row pair) cost of the sparse kernel (loop setup,
        pointer chasing), in dense-word-op units.
    """

    word_bits: int = 32
    sparse_op_cost: float = 8.0
    pair_overhead: float = 4.0

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.sparse_op_cost <= 0 or self.pair_overhead < 0:
            raise ModelError("SparseCostModel: parameters must be positive")

    def dense_ops(self, m: int, n: int, k_bits: int) -> float:
        """Dense kernel work in dense-word-op units."""
        self._check(m, n, k_bits)
        return m * n * (-(-k_bits // self.word_bits))

    def sparse_ops(self, m: int, n: int, k_bits: int, density: float) -> float:
        """Expected sparse-sparse work in dense-word-op units."""
        self._check(m, n, k_bits)
        if not (0.0 <= density <= 1.0):
            raise ModelError(f"sparse_ops: density must be in [0, 1], got {density}")
        expected_matches = m * n * k_bits * density * density
        return expected_matches * self.sparse_op_cost + m * n * self.pair_overhead

    def sparse_wins(self, m: int, n: int, k_bits: int, density: float) -> bool:
        """Whether the sparse representation is cheaper for this problem."""
        return self.sparse_ops(m, n, k_bits, density) < self.dense_ops(m, n, k_bits)

    @staticmethod
    def _check(m: int, n: int, k_bits: int) -> None:
        if min(m, n, k_bits) <= 0:
            raise ModelError("cost model: extents must be positive")


def density_crossover(
    model: SparseCostModel | None = None,
    k_bits: int = 10_000,
    tolerance: float = 1e-6,
) -> float:
    """Density below which sparse beats dense (bisection on the model).

    Analytically ``d* ~ sqrt((1/word_bits - pair_overhead/k_bits) /
    sparse_op_cost)``; the bisection keeps the function authoritative
    if the model grows terms.
    """
    model = model or SparseCostModel()
    lo, hi = 0.0, 1.0
    if not model.sparse_wins(1, 1, k_bits, lo):
        return 0.0  # overhead alone exceeds dense cost: sparse never wins
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if model.sparse_wins(1, 1, k_bits, mid):
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
