"""Automatic representation selection: dense bitvectors or sparse sets.

The user-facing entry of the sparse extension: given the operands of a
comparison, choose the representation the cost model prefers and run
the matching kernel.  The choice is returned alongside the results so
callers can audit it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blis.gemm import bit_gemm_fast
from repro.blis.microkernel import ComparisonOp, get_microkernel
from repro.errors import DatasetError
from repro.sparse.cost import SparseCostModel
from repro.sparse.kernels import sparse_comparison
from repro.sparse.matrix import SparseSNPMatrix
from repro.util.bitops import pack_bits

__all__ = ["RepresentationChoice", "choose_representation", "auto_comparison"]


@dataclass(frozen=True)
class RepresentationChoice:
    """The selector's decision and its inputs."""

    representation: str          # "sparse" or "dense"
    density: float
    dense_ops: float
    sparse_ops: float

    @property
    def predicted_speedup(self) -> float:
        """Model-predicted win of the chosen format over the other."""
        if self.representation == "sparse":
            return self.dense_ops / self.sparse_ops
        return self.sparse_ops / self.dense_ops


def choose_representation(
    a_bits: np.ndarray,
    b_bits: np.ndarray | None = None,
    model: SparseCostModel | None = None,
) -> RepresentationChoice:
    """Pick the cheaper representation for comparing ``a`` against ``b``."""
    a = np.asarray(a_bits)
    b = a if b_bits is None else np.asarray(b_bits)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise DatasetError("choose_representation: incompatible operand shapes")
    model = model or SparseCostModel()
    m, k_bits = a.shape
    n = b.shape[0]
    total = a.size + b.size
    density = float((a.sum() + b.sum()) / total) if total else 0.0
    dense = model.dense_ops(m, n, k_bits)
    sparse = model.sparse_ops(m, n, k_bits, density)
    return RepresentationChoice(
        representation="sparse" if sparse < dense else "dense",
        density=density,
        dense_ops=dense,
        sparse_ops=sparse,
    )


def auto_comparison(
    a_bits: np.ndarray,
    b_bits: np.ndarray | None = None,
    op: ComparisonOp | str = ComparisonOp.AND,
    model: SparseCostModel | None = None,
) -> tuple[np.ndarray, RepresentationChoice]:
    """Run the comparison in whichever representation the model picks.

    Both paths are bit-exact, so the choice affects cost only.
    """
    op = get_microkernel(op).op
    choice = choose_representation(a_bits, b_bits, model)
    a = np.asarray(a_bits)
    b = a if b_bits is None else np.asarray(b_bits)
    if choice.representation == "sparse":
        sa = SparseSNPMatrix.from_dense(a)
        sb = sa if b_bits is None else SparseSNPMatrix.from_dense(b)
        table = sparse_comparison(sa, sb, op)
    else:
        pa = pack_bits(a, 32)
        pb = pa if b_bits is None else pack_bits(b, 32)
        table = bit_gemm_fast(pa, pb, op)
    return table, choice
