"""Per-tenant serving accounts: latency percentiles, QPS, failures.

Counters (:mod:`repro.observability.counters`) answer "how much work
did the service do" exactly; this module answers the per-tenant SLO
questions -- p50/p99 latency and sustained QPS -- which are inherently
windowed and approximate.  A bounded ring of recent observations keeps
memory ``O(window)`` per tenant however long the service lives.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

__all__ = ["LatencyWindow", "TenantAccount", "TenantLedger"]


class LatencyWindow:
    """Bounded ring of latency samples with percentile readout."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen <= 0:
            raise ValueError(f"LatencyWindow: maxlen must be positive, got {maxlen}")
        self._buf = np.zeros(maxlen, dtype=np.float64)
        self._maxlen = maxlen
        self._next = 0
        self._count = 0

    def observe(self, seconds: float) -> None:
        self._buf[self._next] = seconds
        self._next = (self._next + 1) % self._maxlen
        self._count = min(self._count + 1, self._maxlen)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the retained window (0.0 if empty)."""
        if self._count == 0:
            return 0.0
        return float(np.percentile(self._buf[: self._count], p))


class TenantAccount:
    """One tenant's running totals plus its latency window."""

    def __init__(self, window: int = 4096) -> None:
        self.queries = 0
        self.rows = 0
        self.failures = 0
        self.latency = LatencyWindow(window)
        self.first_seen: float | None = None
        self.last_seen: float | None = None

    def record(
        self, rows: int, seconds: float, failed: bool, now: float
    ) -> None:
        self.queries += 1
        self.rows += rows
        if failed:
            self.failures += 1
        self.latency.observe(seconds)
        if self.first_seen is None:
            self.first_seen = now
        self.last_seen = now

    def qps(self) -> float:
        """Mean request rate over the tenant's observed lifetime."""
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        elapsed = self.last_seen - self.first_seen
        if elapsed <= 0.0:
            return 0.0
        return (self.queries - 1) / elapsed

    def summary(self) -> dict[str, float]:
        return {
            "queries": float(self.queries),
            "rows": float(self.rows),
            "failures": float(self.failures),
            "p50_s": self.latency.percentile(50),
            "p99_s": self.latency.percentile(99),
            "qps": self.qps(),
        }


class TenantLedger:
    """Thread-safe map of tenant name to :class:`TenantAccount`."""

    def __init__(
        self,
        window: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._window = window
        self._clock = clock
        self._lock = threading.Lock()
        self._accounts: dict[str, TenantAccount] = {}

    def record(
        self, tenant: str, rows: int, seconds: float, failed: bool = False
    ) -> None:
        now = self._clock()
        with self._lock:
            account = self._accounts.get(tenant)
            if account is None:
                account = TenantAccount(self._window)
                self._accounts[tenant] = account
            account.record(rows, seconds, failed, now)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._accounts)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-tenant SLO summaries (stable tenant order)."""
        with self._lock:
            return {
                name: self._accounts[name].summary()
                for name in sorted(self._accounts)
            }
