"""``repro.serve``: the long-lived identity-search service.

The serving layer over the batch pipeline (ROADMAP item 1): a
:class:`ProfileIndex` keeps the packed database resident as mmap'd
``.snpbin`` shards with online appends, a :class:`CoalescingBatcher`
merges concurrent query sets into shared bit-GEMM panels, and
:class:`IdentityService` demultiplexes per-request top-k results --
bit-exact against :class:`repro.core.streaming.StreamingIdentitySearch`
-- with per-request isolation through the resilience ladder and
per-tenant accounting on the observability counters.  A JSON-lines TCP
front end (:mod:`repro.serve.server`, ``repro.cli serve``) exposes it
over the wire.  See docs/SERVING.md.
"""

from repro.serve.batcher import Batch, CoalescingBatcher
from repro.serve.index import ProfileIndex, Segment
from repro.serve.metrics import LatencyWindow, TenantAccount, TenantLedger
from repro.serve.overload import CircuitBreaker
from repro.serve.server import (
    BackgroundServer,
    IdentityServer,
    ServiceClient,
    run_server,
)
from repro.serve.service import IdentityService, QueryRequest

__all__ = [
    "Batch",
    "CoalescingBatcher",
    "CircuitBreaker",
    "ProfileIndex",
    "Segment",
    "LatencyWindow",
    "TenantAccount",
    "TenantLedger",
    "BackgroundServer",
    "IdentityServer",
    "ServiceClient",
    "run_server",
    "IdentityService",
    "QueryRequest",
]
