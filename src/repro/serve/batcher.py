"""Request coalescing: merge concurrent queries into one GEMM panel.

The economics: :func:`repro.core.packing.pack_operand` pads the query
side of every panel up to the device's register tile ``m_r``, and the
engine's exact ``gemm.popc_word_ops`` accounting charges the padded
rows.  A single-profile query therefore costs ``m_r * n * k_words``
word-ops on its own panel but only ``1 * n * k_words`` when it shares a
panel with ``m_r - 1`` (or more) concurrent peers -- plus the database
side of the panel is packed, cached and fed once per *batch* instead of
once per *request*.  Coalescing turns concurrent traffic into that
shared panel, the same keep-the-units-fed motif as Beyer & Bientinesi's
overlapped feeds (PAPERS.md).

Mechanics: ``submit`` enqueues a request and returns a
:class:`concurrent.futures.Future` immediately (the asyncio front end
in :mod:`repro.serve.server` awaits it via ``asyncio.wrap_future``).  A
dispatcher thread opens a **coalescing window** when the first request
of a batch arrives: every request admitted within ``window_s`` of that
first arrival joins the batch, which is cut early once ``max_rows``
query rows accumulate.  Cut batches execute on a small thread-pool
executor so the window for batch *i+1* collects while batch *i*
computes.

The executor callback receives the batched payloads and returns one
**outcome per payload** -- a result or an exception instance -- which
the dispatcher demultiplexes onto the individual futures.  Isolation is
therefore the executor's contract, not the batcher's: returning an
exception for one payload fails only that payload's future (the
service's degrade ladder lives in
:meth:`repro.serve.service.IdentityService._execute_batch`).  Only if
the executor itself *raises* -- a contract violation -- does the whole
batch fail.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Batch", "CoalescingBatcher"]


@dataclass
class _Pending:
    """One queued request: payload, row weight, its caller's future."""

    payload: Any
    rows: int
    future: "Future[Any]"
    admitted_at: float


@dataclass
class Batch:
    """The payloads cut into one executor call, in admission order."""

    payloads: list[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.payloads)


class CoalescingBatcher:
    """Window-based micro-batcher over a thread-pool executor.

    Parameters
    ----------
    execute:
        Callback receiving the batch's payloads (admission order) and
        returning one outcome per payload; an outcome that is an
        ``Exception`` instance fails that payload's future only.
    window_s:
        Coalescing window, measured from the first admission of the
        batch.  ``0`` still coalesces requests that are already queued
        when the dispatcher wakes (a burst), but never waits for more.
    max_rows:
        Row budget per batch; a batch is cut early when reached.
    pipeline_depth:
        Executor threads; ``1`` (the default) keeps batch execution
        sequential -- deterministic counter attribution -- while the
        next window collects concurrently.
    """

    def __init__(
        self,
        execute: Callable[[Sequence[Any]], Sequence[Any]],
        window_s: float = 0.005,
        max_rows: int = 1024,
        pipeline_depth: int = 1,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"CoalescingBatcher: window_s must be >= 0, got {window_s}")
        if max_rows <= 0:
            raise ValueError(
                f"CoalescingBatcher: max_rows must be positive, got {max_rows}"
            )
        self._execute = execute
        self.window_s = window_s
        self.max_rows = max_rows
        self._cv = threading.Condition()
        self._queue: list[_Pending] = []
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, pipeline_depth),
            thread_name_prefix="serve-exec",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-batcher", daemon=True
        )
        self._dispatcher.start()

    # -- client side -----------------------------------------------------------

    def submit(self, payload: Any, rows: int = 1) -> "Future[Any]":
        """Enqueue one request; resolves when its batch has executed."""
        future: "Future[Any]" = Future()
        pending = _Pending(
            payload=payload,
            rows=max(1, rows),
            future=future,
            admitted_at=time.perf_counter(),
        )
        with self._cv:
            if self._closed:
                raise RuntimeError("CoalescingBatcher: batcher is closed")
            self._queue.append(pending)
            self._cv.notify()
        return future

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop admitting, drain queued batches, join the dispatcher."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._dispatcher.join(timeout=timeout)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "CoalescingBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- dispatcher side -------------------------------------------------------

    def _cut_batch_locked(self) -> list[_Pending]:
        """Pop queued requests up to the row budget (admission order)."""
        batch: list[_Pending] = []
        rows = 0
        while self._queue:
            if batch and rows + self._queue[0].rows > self.max_rows:
                break
            item = self._queue.pop(0)
            batch.append(item)
            rows += item.rows
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue and self._closed:
                    return
                # The window opens at the *first* admission of the
                # batch; later arrivals do not extend it (bounded added
                # latency for the request that opened it).
                deadline = self._queue[0].admitted_at + self.window_s
                while not self._closed:
                    queued_rows = sum(p.rows for p in self._queue)
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or queued_rows >= self.max_rows:
                        break
                    self._cv.wait(timeout=remaining)
                batch = self._cut_batch_locked()
            if batch:
                self._pool.submit(self._run_batch, batch)

    def _run_batch(self, batch: list[_Pending]) -> None:
        try:
            outcomes = list(self._execute([p.payload for p in batch]))
            if len(outcomes) != len(batch):
                raise RuntimeError(
                    f"CoalescingBatcher: execute returned {len(outcomes)} "
                    f"outcomes for {len(batch)} payloads"
                )
        except BaseException as exc:  # contract violation: fail the batch
            for pending in batch:
                pending.future.set_exception(exc)
            return
        for pending, outcome in zip(batch, outcomes):
            if isinstance(outcome, BaseException):
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result(outcome)
