"""Request coalescing: merge concurrent queries into one GEMM panel.

The economics: :func:`repro.core.packing.pack_operand` pads the query
side of every panel up to the device's register tile ``m_r``, and the
engine's exact ``gemm.popc_word_ops`` accounting charges the padded
rows.  A single-profile query therefore costs ``m_r * n * k_words``
word-ops on its own panel but only ``1 * n * k_words`` when it shares a
panel with ``m_r - 1`` (or more) concurrent peers -- plus the database
side of the panel is packed, cached and fed once per *batch* instead of
once per *request*.  Coalescing turns concurrent traffic into that
shared panel, the same keep-the-units-fed motif as Beyer & Bientinesi's
overlapped feeds (PAPERS.md).

Mechanics: ``submit`` enqueues a request and returns a
:class:`concurrent.futures.Future` immediately (the asyncio front end
in :mod:`repro.serve.server` awaits it via ``asyncio.wrap_future``).  A
dispatcher thread opens a **coalescing window** when the first request
of a batch arrives: every request admitted within ``window_s`` of that
first arrival joins the batch, which is cut early once ``max_rows``
query rows accumulate.  Cut batches execute on a small thread-pool
executor so the window for batch *i+1* collects while batch *i*
computes.

Overload protection: admission is *bounded*.  ``max_queue`` caps queued
requests and ``max_inflight_rows`` caps query rows that are queued or
executing; past either bound :meth:`submit` sheds with
:class:`~repro.errors.OverloadedError` carrying a ``retry_after_ms``
hint (counted in ``serve.shed``) instead of queueing unboundedly.
Requests may carry a :class:`~repro.resilience.deadline.Deadline`;
expired requests are rejected at admission and again when their batch
is cut -- *before* packing or compute -- so a request never occupies a
panel its caller has already abandoned (``serve.deadline_exceeded``).

The executor callback receives the batched payloads and returns one
**outcome per payload** -- a result or an exception instance -- which
the dispatcher demultiplexes onto the individual futures.  Isolation is
therefore the executor's contract, not the batcher's: returning an
exception for one payload fails only that payload's future (the
service's degrade ladder lives in
:meth:`repro.serve.service.IdentityService._execute_batch`).  Only if
the executor itself *raises* -- a contract violation -- does the whole
batch fail.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import DeadlineExceededError, OverloadedError
from repro.observability.counters import SERVE_DEADLINE_EXCEEDED, SERVE_SHED
from repro.observability.tracer import get_tracer
from repro.resilience.deadline import Deadline

__all__ = ["Batch", "CoalescingBatcher"]


@dataclass
class _Pending:
    """One queued request: payload, row weight, its caller's future."""

    payload: Any
    rows: int
    future: "Future[Any]"
    admitted_at: float
    deadline: Deadline | None = None


@dataclass
class Batch:
    """The payloads cut into one executor call, in admission order."""

    payloads: list[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.payloads)


class CoalescingBatcher:
    """Window-based micro-batcher over a thread-pool executor.

    Parameters
    ----------
    execute:
        Callback receiving the batch's payloads (admission order) and
        returning one outcome per payload; an outcome that is an
        ``Exception`` instance fails that payload's future only.
    window_s:
        Coalescing window, measured from the first admission of the
        batch.  ``0`` still coalesces requests that are already queued
        when the dispatcher wakes (a burst), but never waits for more.
    max_rows:
        Row budget per batch; a batch is cut early when reached.
    pipeline_depth:
        Executor threads; ``1`` (the default) keeps batch execution
        sequential -- deterministic counter attribution -- while the
        next window collects concurrently.
    max_queue:
        Admission bound: maximum *queued* requests.  ``None`` (default)
        keeps the pre-overload unbounded behavior.
    max_inflight_rows:
        Admission bound: maximum query rows queued + executing.
        ``None`` disables the bound.
    """

    def __init__(
        self,
        execute: Callable[[Sequence[Any]], Sequence[Any]],
        window_s: float = 0.005,
        max_rows: int = 1024,
        pipeline_depth: int = 1,
        max_queue: int | None = None,
        max_inflight_rows: int | None = None,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"CoalescingBatcher: window_s must be >= 0, got {window_s}")
        if max_rows <= 0:
            raise ValueError(
                f"CoalescingBatcher: max_rows must be positive, got {max_rows}"
            )
        if max_queue is not None and max_queue <= 0:
            raise ValueError(
                f"CoalescingBatcher: max_queue must be positive, got {max_queue}"
            )
        if max_inflight_rows is not None and max_inflight_rows <= 0:
            raise ValueError(
                f"CoalescingBatcher: max_inflight_rows must be positive, "
                f"got {max_inflight_rows}"
            )
        self._execute = execute
        self.window_s = window_s
        self.max_rows = max_rows
        self.max_queue = max_queue
        self.max_inflight_rows = max_inflight_rows
        self._cv = threading.Condition()
        self._queue: list[_Pending] = []
        self._inflight_rows = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, pipeline_depth),
            thread_name_prefix="serve-exec",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-batcher", daemon=True
        )
        self._dispatcher.start()

    # -- client side -----------------------------------------------------------

    def _retry_after_ms_locked(self, rows: int) -> int:
        """Shed hint: when the backlog ahead should have drained."""
        backlog = sum(p.rows for p in self._queue) + self._inflight_rows + rows
        batches_ahead = max(1, -(-backlog // self.max_rows))
        return max(1, int(1e3 * max(self.window_s, 1e-3) * batches_ahead))

    def submit(
        self,
        payload: Any,
        rows: int = 1,
        deadline: Deadline | None = None,
    ) -> "Future[Any]":
        """Enqueue one request; resolves when its batch has executed.

        Raises :class:`~repro.errors.OverloadedError` when an admission
        bound is exceeded and :class:`~repro.errors.DeadlineExceededError`
        when ``deadline`` has already expired.
        """
        future: "Future[Any]" = Future()
        pending = _Pending(
            payload=payload,
            rows=max(1, rows),
            future=future,
            admitted_at=time.perf_counter(),
            deadline=deadline,
        )
        with self._cv:
            if self._closed:
                raise RuntimeError("CoalescingBatcher: batcher is closed")
            if deadline is not None and deadline.expired:
                get_tracer().counters.add(SERVE_DEADLINE_EXCEEDED)
                raise DeadlineExceededError(
                    "CoalescingBatcher: deadline expired before admission "
                    f"(overran by {deadline.overrun() * 1e3:.1f} ms)",
                    overrun_s=deadline.overrun(),
                )
            if (
                self.max_queue is not None
                and len(self._queue) >= self.max_queue
            ):
                hint = self._retry_after_ms_locked(pending.rows)
                get_tracer().counters.add(SERVE_SHED)
                raise OverloadedError(
                    f"CoalescingBatcher: admission queue full "
                    f"({len(self._queue)} >= {self.max_queue} requests); "
                    f"retry after {hint} ms",
                    retry_after_ms=hint,
                    reason="queue_full",
                )
            if self.max_inflight_rows is not None:
                backlog = (
                    sum(p.rows for p in self._queue) + self._inflight_rows
                )
                if backlog + pending.rows > self.max_inflight_rows:
                    hint = self._retry_after_ms_locked(pending.rows)
                    get_tracer().counters.add(SERVE_SHED)
                    raise OverloadedError(
                        f"CoalescingBatcher: in-flight row budget exceeded "
                        f"({backlog} + {pending.rows} > "
                        f"{self.max_inflight_rows} rows); "
                        f"retry after {hint} ms",
                        retry_after_ms=hint,
                        reason="queue_full",
                    )
            self._queue.append(pending)
            self._cv.notify()
        return future

    @property
    def queued_requests(self) -> int:
        """Requests waiting for a batch cut right now."""
        with self._cv:
            return len(self._queue)

    @property
    def inflight_rows(self) -> int:
        """Query rows inside cut batches that have not finished."""
        with self._cv:
            return self._inflight_rows

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or executing (graceful drain).

        Returns ``False`` when ``timeout`` elapses first.
        """
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        with self._cv:
            while self._queue or self._inflight_rows:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(timeout=remaining)
            return True

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop admitting, drain queued batches, join the dispatcher.

        Raises ``RuntimeError`` when the dispatcher thread fails to
        join within ``timeout`` -- a leaked dispatcher means batches
        may still execute after "shutdown", which callers must not be
        allowed to mistake for a clean stop.
        """
        with self._cv:
            already_closed = self._closed
            self._closed = True
            self._cv.notify_all()
        if already_closed and not self._dispatcher.is_alive():
            return
        self._dispatcher.join(timeout=timeout)
        if self._dispatcher.is_alive():
            self._pool.shutdown(wait=False)
            raise RuntimeError(
                f"CoalescingBatcher.close: dispatcher thread failed to "
                f"join within {timeout}s -- thread leaked"
            )
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "CoalescingBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- dispatcher side -------------------------------------------------------

    def _cut_batch_locked(self) -> list[_Pending]:
        """Pop queued requests up to the row budget (admission order)."""
        batch: list[_Pending] = []
        rows = 0
        while self._queue:
            if batch and rows + self._queue[0].rows > self.max_rows:
                break
            item = self._queue.pop(0)
            batch.append(item)
            rows += item.rows
        self._inflight_rows += rows
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue and self._closed:
                    return
                # The window opens at the *first* admission of the
                # batch; later arrivals do not extend it (bounded added
                # latency for the request that opened it).
                deadline = self._queue[0].admitted_at + self.window_s
                while not self._closed:
                    queued_rows = sum(p.rows for p in self._queue)
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or queued_rows >= self.max_rows:
                        break
                    self._cv.wait(timeout=remaining)
                batch = self._cut_batch_locked()
            if batch:
                self._pool.submit(self._run_batch, batch)

    def _run_batch(self, batch: list[_Pending]) -> None:
        try:
            # Expired deadlines are rejected here, before the executor
            # ever packs or computes: the window has closed, so this is
            # at most one batch window past the client's budget.
            live: list[_Pending] = []
            for pending in batch:
                if pending.deadline is not None and pending.deadline.expired:
                    get_tracer().counters.add(SERVE_DEADLINE_EXCEEDED)
                    pending.future.set_exception(
                        DeadlineExceededError(
                            "CoalescingBatcher: deadline expired before "
                            "batch execution (overran by "
                            f"{pending.deadline.overrun() * 1e3:.1f} ms)",
                            overrun_s=pending.deadline.overrun(),
                        )
                    )
                else:
                    live.append(pending)
            if live:
                try:
                    outcomes = list(
                        self._execute([p.payload for p in live])
                    )
                    if len(outcomes) != len(live):
                        raise RuntimeError(
                            f"CoalescingBatcher: execute returned "
                            f"{len(outcomes)} outcomes for {len(live)} "
                            f"payloads"
                        )
                except BaseException as exc:  # contract violation
                    for pending in live:
                        pending.future.set_exception(exc)
                    return
                for pending, outcome in zip(live, outcomes):
                    if isinstance(outcome, BaseException):
                        pending.future.set_exception(outcome)
                    else:
                        pending.future.set_result(outcome)
        finally:
            with self._cv:
                self._inflight_rows -= sum(p.rows for p in batch)
                self._cv.notify_all()
