"""CI service smoke: boot the server, coalesce, gate the SLOs.

``python -m repro.serve.smoke`` exercises the full serving stack the
way the CI ``service-smoke`` job needs it gated:

1. **Amortization** (exact counters, deterministic): at ``--clients``
   concurrent single-profile queries, served ``gemm.popc_word_ops`` per
   query must be ``<= --ops-ratio`` (default 0.6) of the
   one-query-per-panel baseline.  Measured with forced batches
   (:meth:`IdentityService.search_many`), so no timing window is
   involved and the numbers are exact on any runner.
2. **Bit-exactness**: every served top-k -- coalesced, solo, and over
   the TCP wire -- equals :class:`StreamingIdentitySearch` on the same
   database (first-seen tie-breaking included).
3. **Live coalescing**: N concurrent TCP clients fire through a real
   coalescing window; ``serve.coalesced_batches`` must end up nonzero.
   Bursts are retried a few times because window timing on a loaded
   runner is not deterministic -- the *results* are gated every round,
   the counter only needs one coalesced round.
4. **Latency SLO**: the served p99 (from the tenant ledger) must stay
   under ``--p99-ceiling`` seconds.

Exit status 1 on any gate failure; ``--json`` writes the measured
metrics (the serving benchmark in ``benchmarks/bench_serving.py``
records the richer set for the regression gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading

import numpy as np

from repro.core.streaming import Match, StreamingIdentitySearch
from repro.observability.counters import (
    GEMM_WORD_OPS,
    SERVE_COALESCED_BATCHES,
)
from repro.observability.tracer import Tracer, set_tracer
from repro.serve.index import ProfileIndex
from repro.serve.server import BackgroundServer, ServiceClient
from repro.serve.service import IdentityService

__all__ = ["main"]


def _oracle(
    queries: np.ndarray, db_chunks: "list[np.ndarray]", k: int
) -> list[list[Match]]:
    search = StreamingIdentitySearch(queries, k=k)
    for chunk in db_chunks:
        search.add_batch(chunk)
    return search.all_matches()


def _fire_concurrent_clients(
    host: str,
    port: int,
    query_sets: "list[np.ndarray]",
    k: int,
) -> "list[list[list[Match]] | None]":
    """One thread + connection per query set, released together."""
    results: "list[list[list[Match]] | None]" = [None] * len(query_sets)
    barrier = threading.Barrier(len(query_sets))

    def _worker(i: int) -> None:
        with ServiceClient(host, port) as client:
            barrier.wait()
            results[i] = client.search(
                query_sets[i], k=k, tenant=f"tenant-{i % 3}"
            )

    threads = [
        threading.Thread(target=_worker, args=(i,), daemon=True)
        for i in range(len(query_sets))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return results


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__
    )
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent single-profile queries (>= 8 for the gate)")
    parser.add_argument("--rows", type=int, default=96,
                        help="database profiles")
    parser.add_argument("--sites", type=int, default=160,
                        help="SNP sites per profile")
    parser.add_argument("--shard-rows", type=int, default=40,
                        help="rows per .snpbin shard")
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--ops-ratio", type=float, default=0.6,
                        help="max served word-ops per query vs solo baseline")
    parser.add_argument("--p99-ceiling", type=float, default=2.5,
                        help="max served p99 latency, seconds")
    parser.add_argument("--burst-attempts", type=int, default=5,
                        help="TCP burst rounds to observe a coalesced batch")
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--json", type=str, default=None,
                        help="write measured metrics to this path")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    db = rng.integers(0, 2, size=(args.rows, args.sites), dtype=np.uint8)
    query_sets = [
        rng.integers(0, 2, size=(1, args.sites), dtype=np.uint8)
        for _ in range(args.clients)
    ]
    oracles = [_oracle(q, [db], args.top_k) for q in query_sets]

    failures: list[str] = []
    metrics: dict[str, float] = {}

    def gate(name: str, ok: bool, detail: str) -> None:
        status = "PASS" if ok else "FAIL"
        print(f"[service-smoke] {status} {name}: {detail}")
        if not ok:
            failures.append(name)

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            index = ProfileIndex.build(
                tmp, db, shard_rows=args.shard_rows, word_bits=32
            )
            service = IdentityService(
                index, k=args.top_k, window_s=0.05, max_batch_rows=256
            )
            with service, index:
                # -- gate 1+2a: amortization + bit-exact, forced batches
                before = tracer.counters.get(GEMM_WORD_OPS)
                solo = [service.search_many([q])[0] for q in query_sets]
                mid = tracer.counters.get(GEMM_WORD_OPS)
                coalesced = service.search_many(query_sets)
                after = tracer.counters.get(GEMM_WORD_OPS)
                solo_per_query = (mid - before) / args.clients
                coal_per_query = (after - mid) / args.clients
                ratio = (
                    coal_per_query / solo_per_query if solo_per_query else 1.0
                )
                metrics["word_ops_per_query_solo"] = solo_per_query
                metrics["word_ops_per_query_coalesced"] = coal_per_query
                metrics["ops_ratio"] = ratio
                gate(
                    "amortization",
                    ratio <= args.ops_ratio,
                    f"word-ops/query coalesced {coal_per_query:.0f} vs solo "
                    f"{solo_per_query:.0f} (ratio {ratio:.3f} <= {args.ops_ratio})",
                )
                exact = solo == oracles and coalesced == oracles
                gate(
                    "bit-exact-forced",
                    exact,
                    "solo and coalesced top-k equal StreamingIdentitySearch",
                )

                # -- gate 2b+3: live TCP burst through the window
                with BackgroundServer(service) as (host, port):
                    live_exact = True
                    coalesced_seen = 0.0
                    for attempt in range(args.burst_attempts):
                        served = _fire_concurrent_clients(
                            host, port, query_sets, args.top_k
                        )
                        live_exact = all(
                            served[i] == oracles[i]
                            for i in range(args.clients)
                        )
                        coalesced_seen = tracer.counters.get(
                            SERVE_COALESCED_BATCHES
                        )
                        if not live_exact or coalesced_seen > 0:
                            break
                    metrics["coalesced_batches"] = coalesced_seen
                    gate(
                        "bit-exact-tcp",
                        live_exact,
                        f"{args.clients} concurrent clients match the oracle",
                    )
                    gate(
                        "live-coalescing",
                        coalesced_seen > 0,
                        f"serve.coalesced_batches={coalesced_seen:.0f} "
                        f"after {attempt + 1} burst round(s)",
                    )

                # -- gate 4: latency SLO
                summaries = service.ledger.summary()
                p99 = max(
                    (s["p99_s"] for s in summaries.values()), default=0.0
                )
                metrics["p99_s"] = p99
                gate(
                    "p99-latency",
                    0.0 < p99 <= args.p99_ceiling,
                    f"served p99 {p99 * 1e3:.1f} ms <= "
                    f"{args.p99_ceiling * 1e3:.0f} ms ceiling",
                )
    finally:
        set_tracer(previous)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"service_smoke": metrics}, fh, indent=2)
    if failures:
        print(f"[service-smoke] FAILED gates: {', '.join(failures)}")
        return 1
    print("[service-smoke] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
