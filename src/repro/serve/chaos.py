"""Service-tier chaos: latency, client disconnects, disk corruption.

The serving counterpart of :mod:`repro.resilience.chaos` (and CI's
``chaos-serve`` leg): drive :class:`~repro.serve.service.IdentityService`
under seeded service-tier fault plans and hold it to the same two
standards as the engine harness --

1. **Zero wrong answers** -- a request either gets the bit-exact top-k
   (verified against a fault-free reference) or a typed error
   (:class:`~repro.errors.DeadlineExceededError`,
   :class:`~repro.errors.OverloadedError`,
   :class:`~repro.errors.IntegrityError`).  Corrupt bytes, injected
   delays and vanishing clients must never surface as silently wrong
   matches.
2. **Exact counter gates** -- the ``serve.*`` / ``io.*`` robustness
   counters match what the seeded plan implies, firing for firing.

Three scenarios:

``latency``
    The first *K* micro-batches sleep ``slow_delay_s`` before packing
    (:meth:`FaultInjector.service_delay`).  Requests riding those
    batches carry deadlines shorter than the injected delay, so each
    must be rejected -- ``serve.deadline_exceeded == K`` exactly --
    while undelayed requests return bit-exact results.

``disconnect``
    *K* of the harness's TCP clients hang up right after sending their
    search (:meth:`FaultInjector.should_disconnect`).  The server must
    absorb the dead connections: every request is still admitted and
    computed (``serve.queries`` exact), surviving clients get bit-exact
    answers, and the server stays ``ready`` for new connections.

``disk-corrupt``
    One seeded bit is flipped inside the *last* ``.snpbin`` shard of a
    directory-backed index (:meth:`FaultInjector.should_corrupt_disk`
    picks the shard, the harness flips the byte).  Every search touching
    the shard must fail with an :class:`~repro.errors.IntegrityError`
    (CRC detection is exact: ``io.crc_failures`` counts one per verify
    attempt), repeated failures trip the circuit breaker, ``fsck``
    quarantines the shard, and the reopened index serves the healthy
    rows bit-exactly.  Targeting the last shard keeps the surviving
    rows' global indices stable, so the post-quarantine oracle is just
    the same database truncated.

Usage::

    python -m repro.serve.chaos --scenarios latency,disconnect,disk-corrupt \
        --seeds 1,2
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.streaming import Match
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    IntegrityError,
    OverloadedError,
)
from repro.gpu.arch import get_gpu
from repro.io_stream.format import SNPBIN2_HEADER_BYTES
from repro.io_stream.fsck import fsck_directory
from repro.observability.counters import (
    IO_CHUNKS_VERIFIED,
    IO_CRC_FAILURES,
    SERVE_BREAKER_TRIPS,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_QUERIES,
    SERVE_SHED,
)
from repro.observability.tracer import Tracer, set_tracer
from repro.resilience.faults import FaultPlan
from repro.resilience.runtime import resilient
from repro.serve.index import ProfileIndex
from repro.serve.overload import CircuitBreaker
from repro.serve.server import BackgroundServer, ServiceClient
from repro.serve.service import IdentityService

__all__ = ["ServeChaosResult", "run_serve_chaos_case", "run_serve_chaos", "main"]

#: Scenario names the harness accepts.
SERVE_SCENARIOS = ("latency", "disconnect", "disk-corrupt")

#: Database / query geometry (small: the faults are the point).
DEFAULT_ROWS = 256
DEFAULT_SITES = 512
SHARD_ROWS = 64
N_REQUESTS = 4
QUERY_ROWS = 4
DATA_SEED = 424242

#: Injected service delay and the (shorter) deadline riding it.  The
#: sleep *guarantees* the budget expires, so the gate is exact on any
#: machine: expiry needs only ``delay > budget``, never a fast host.
LATENCY_DELAY_S = 0.25
LATENCY_BUDGET_S = 0.1

_DEVICE = "GTX 980"


@dataclass
class ServeChaosResult:
    """Outcome of one (scenario, seed) chaos-serve case."""

    scenario: str
    seed: int
    plan_spec: str
    bit_exact: bool
    zero_wrong_answers: bool
    expected: dict[str, int] = field(default_factory=dict)
    observed: dict[str, int] = field(default_factory=dict)

    @property
    def counters_match(self) -> bool:
        return self.expected == self.observed

    @property
    def passed(self) -> bool:
        return self.bit_exact and self.zero_wrong_answers and self.counters_match

    def summary(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] scenario={self.scenario} seed={self.seed} "
            f"plan={self.plan_spec!r}"
        )
        if not self.bit_exact:
            line += " BIT-MISMATCH"
        if not self.zero_wrong_answers:
            line += " WRONG-ANSWER"
        if not self.counters_match:
            line += f" expected={self.expected} observed={self.observed}"
        return line


def _dataset(rows: int, sites: int) -> tuple[np.ndarray, list[np.ndarray]]:
    rng = np.random.default_rng(DATA_SEED)
    profiles = rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)
    queries = [
        rng.integers(0, 2, size=(QUERY_ROWS, sites), dtype=np.uint8)
        for _ in range(N_REQUESTS)
    ]
    return profiles, queries


def _service(index: ProfileIndex, **kwargs: object) -> IdentityService:
    return IdentityService(
        index,
        k=3,
        device=_DEVICE,
        window_s=0.001,
        max_batch_rows=1024,
        **kwargs,  # type: ignore[arg-type]
    )


def _reference(
    profiles: np.ndarray, queries: list[np.ndarray]
) -> list[list[list[Match]]]:
    """Fault-free per-request results over an in-memory index."""
    index = ProfileIndex(n_bits=profiles.shape[1])
    index.append(profiles)
    with _service(index) as service:
        return [service.search(q) for q in queries]


def _counters(tracer: Tracer, *names: str) -> dict[str, int]:
    snapshot = tracer.counters.snapshot()
    return {name: int(snapshot.get(name, 0)) for name in names}


# -- scenario: latency ---------------------------------------------------------


def _case_latency(seed: int) -> ServeChaosResult:
    profiles, queries = _dataset(DEFAULT_ROWS, DEFAULT_SITES)
    reference = _reference(profiles, queries)
    n_delayed = 1 + seed % 2
    plan = FaultPlan.from_spec(
        f"latency:{n_delayed},seed={seed}", slow_delay_s=LATENCY_DELAY_S
    )

    index = ProfileIndex(n_bits=profiles.shape[1])
    index.append(profiles)
    tracer = Tracer()
    previous = set_tracer(tracer)
    deadline_errors = 0
    overruns_positive = True
    wrong = False
    exact = True
    try:
        with resilient(plan=plan) as ctx, _service(index) as service:
            # Sequential submits (each awaited) make batch i carry
            # request i, so the first ``n_delayed`` latency ordinals hit
            # exactly the deadline-carrying requests.
            for i, q in enumerate(queries):
                budget = LATENCY_BUDGET_S if i < n_delayed else None
                try:
                    matches = service.search(q, deadline=budget)
                except DeadlineExceededError as exc:
                    deadline_errors += 1
                    if exc.overrun_s <= 0:
                        overruns_positive = False
                    continue
                if i < n_delayed:
                    wrong = True  # a delayed request must not answer
                if matches != reference[i]:
                    exact = False
            fired = ctx.injector.fired_count("latency")
    finally:
        set_tracer(previous)

    observed = _counters(tracer, SERVE_DEADLINE_EXCEEDED, SERVE_SHED)
    observed["fired_latency"] = fired
    observed["deadline_errors"] = deadline_errors
    expected = {
        SERVE_DEADLINE_EXCEEDED: n_delayed,
        SERVE_SHED: 0,
        "fired_latency": n_delayed,
        "deadline_errors": n_delayed,
    }
    return ServeChaosResult(
        scenario="latency",
        seed=seed,
        plan_spec=plan.to_spec(),
        bit_exact=exact,
        zero_wrong_answers=not wrong and overruns_positive,
        expected=expected,
        observed=observed,
    )


# -- scenario: disconnect ------------------------------------------------------


def _send_and_vanish(host: str, port: int, queries: np.ndarray) -> None:
    """Send a search request, then hang up without reading the reply."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        message = {"op": "search", "queries": queries.tolist(), "id": 0}
        sock.sendall(json.dumps(message).encode() + b"\n")
        # Graceful FIN right after the request: the line is delivered,
        # the server computes, and its reply write lands on a dead
        # connection -- which must cost exactly nothing.


def _wait_for(predicate: "object", timeout_s: float = 10.0) -> bool:
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():  # type: ignore[operator]
            return True
        time.sleep(0.01)
    return False


def _case_disconnect(seed: int) -> ServeChaosResult:
    profiles, queries = _dataset(DEFAULT_ROWS, DEFAULT_SITES)
    reference = _reference(profiles, queries)
    n_disconnect = 1 + seed % 2
    plan = FaultPlan.from_spec(f"client-disconnect:{n_disconnect},seed={seed}")

    index = ProfileIndex(n_bits=profiles.shape[1])
    index.append(profiles)
    tracer = Tracer()
    previous = set_tracer(tracer)
    exact = True
    wrong = False
    healthy_after = False
    try:
        with resilient(plan=plan) as ctx, _service(index) as service:
            with BackgroundServer(service) as (host, port):
                for i, q in enumerate(queries):
                    if ctx.injector.should_disconnect():
                        _send_and_vanish(host, port, q)
                        continue
                    with ServiceClient(host, port) as client:
                        if client.search(q) != reference[i]:
                            exact = False
                # Every request -- including the abandoned ones -- must
                # have been admitted and executed; the dead connections
                # must not wedge the server.
                _wait_for(
                    lambda: int(
                        tracer.counters.get(SERVE_QUERIES)
                    ) >= N_REQUESTS
                )
                with ServiceClient(host, port) as probe:
                    healthy_after = (
                        probe.ping()
                        and probe.health().get("state") == "ready"
                    )
            fired = ctx.injector.fired_count("client-disconnect")
    finally:
        set_tracer(previous)

    observed = _counters(tracer, SERVE_QUERIES, SERVE_SHED)
    observed["fired_disconnect"] = fired
    observed["healthy_after"] = int(healthy_after)
    expected = {
        SERVE_QUERIES: N_REQUESTS,
        SERVE_SHED: 0,
        "fired_disconnect": n_disconnect,
        "healthy_after": 1,
    }
    return ServeChaosResult(
        scenario="disconnect",
        seed=seed,
        plan_spec=plan.to_spec(),
        bit_exact=exact,
        zero_wrong_answers=not wrong,
        expected=expected,
        observed=observed,
    )


# -- scenario: disk-corrupt ----------------------------------------------------


def _flip_bit_in_shard(path: Path, seed: int) -> None:
    """Flip one seeded bit inside the shard's packed data region."""
    rng = np.random.default_rng(seed)
    size = path.stat().st_size
    data_start = SNPBIN2_HEADER_BYTES
    data_stop = size - 4  # keep the CRC table intact: corrupt the data
    offset = int(rng.integers(data_start, data_stop))
    bit = int(rng.integers(0, 8))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([byte ^ (1 << bit)]))


def _case_disk_corrupt(seed: int) -> ServeChaosResult:
    profiles, queries = _dataset(DEFAULT_ROWS, DEFAULT_SITES)
    n_shards = DEFAULT_ROWS // SHARD_ROWS
    last_seq = n_shards - 1
    healthy_rows = SHARD_ROWS * last_seq
    reference_healthy = _reference(profiles[:healthy_rows], queries)
    plan = FaultPlan.from_spec(f"disk-corrupt@{last_seq}:1,seed={seed}")
    word_bits = get_gpu(_DEVICE).word_bits

    exact = True
    wrong = False
    failed = 0
    shed = 0
    fsck_corrupt = 0
    quarantined = 0
    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="chaos-serve-") as tmp:
        directory = Path(tmp) / "shards"
        index = ProfileIndex.build(
            directory, profiles, shard_rows=SHARD_ROWS, word_bits=word_bits
        )
        index.close()
        previous = set_tracer(tracer)
        try:
            with resilient(plan=plan) as ctx:
                for seq in range(n_shards):
                    if ctx.injector.should_corrupt_disk(seq):
                        _flip_bit_in_shard(
                            directory / f"shard-{seq:06d}.snpbin", seed
                        )
                fired = ctx.injector.fired_count("disk-corrupt")
                # Three requests fail on the corrupt shard (tripping the
                # breaker at threshold 3); the fourth is shed by the
                # open breaker before touching the index.
                breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
                with ProfileIndex(directory) as corrupt_index:
                    with _service(corrupt_index, breaker=breaker) as service:
                        for q in queries:
                            try:
                                service.search(q)
                                wrong = True  # corruption must never answer
                            except IntegrityError:
                                failed += 1
                            except OverloadedError as exc:
                                if exc.reason == "breaker_open":
                                    shed += 1
        finally:
            set_tracer(previous)

        report = fsck_directory(directory, quarantine=True)
        fsck_corrupt = report.n_corrupt
        quarantined = sum(
            1 for f in report.files if f.quarantined_to is not None
        )

        with ProfileIndex(directory) as reopened:
            if reopened.n_rows != healthy_rows:
                exact = False
            else:
                with _service(reopened) as service:
                    for i, q in enumerate(queries):
                        if service.search(q) != reference_healthy[i]:
                            exact = False

    observed = _counters(
        tracer,
        IO_CRC_FAILURES,
        IO_CHUNKS_VERIFIED,
        SERVE_BREAKER_TRIPS,
        SERVE_SHED,
    )
    observed["fired_disk_corrupt"] = fired
    observed["failed_requests"] = failed
    observed["shed_requests"] = shed
    observed["fsck_corrupt"] = fsck_corrupt
    observed["quarantined"] = quarantined
    expected = {
        # Each failing request verifies the corrupt shard twice (panel
        # attempt + solo fallback); healthy shards verify once, then
        # stay cached for the reader's lifetime.
        IO_CRC_FAILURES: 2 * 3,
        IO_CHUNKS_VERIFIED: last_seq,
        SERVE_BREAKER_TRIPS: 1,
        SERVE_SHED: 1,
        "fired_disk_corrupt": 1,
        "failed_requests": 3,
        "shed_requests": 1,
        "fsck_corrupt": 1,
        "quarantined": 1,
    }
    return ServeChaosResult(
        scenario="disk-corrupt",
        seed=seed,
        plan_spec=plan.to_spec(),
        bit_exact=exact,
        zero_wrong_answers=not wrong,
        expected=expected,
        observed=observed,
    )


_CASES = {
    "latency": _case_latency,
    "disconnect": _case_disconnect,
    "disk-corrupt": _case_disk_corrupt,
}


def run_serve_chaos_case(scenario: str, seed: int) -> ServeChaosResult:
    """Run one scenario under one seed."""
    if scenario not in _CASES:
        raise ConfigurationError(
            f"run_serve_chaos_case: unknown scenario {scenario!r} "
            f"(valid: {', '.join(SERVE_SCENARIOS)})"
        )
    return _CASES[scenario](seed)


def run_serve_chaos(
    scenarios: tuple[str, ...] = SERVE_SCENARIOS,
    seeds: tuple[int, ...] = (1, 2),
) -> list[ServeChaosResult]:
    """The full matrix: every scenario under every seed."""
    return [
        run_serve_chaos_case(scenario, seed)
        for scenario in scenarios
        for seed in seeds
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Service-tier chaos: latency, disconnects, disk corruption"
    )
    parser.add_argument(
        "--scenarios",
        default=",".join(SERVE_SCENARIOS),
        help="comma-separated scenarios (default: all)",
    )
    parser.add_argument(
        "--seeds",
        default="1,2",
        help="comma-separated schedule seeds (default: 1,2)",
    )
    args = parser.parse_args(argv)

    scenarios = tuple(
        t.strip() for t in args.scenarios.split(",") if t.strip()
    )
    seeds = tuple(int(t) for t in args.seeds.split(",") if t.strip())
    results = run_serve_chaos(scenarios=scenarios, seeds=seeds)
    for result in results:
        print(result.summary())
    n_failed = sum(1 for r in results if not r.passed)
    print(
        f"chaos-serve: {len(results) - n_failed}/{len(results)} cases passed"
    )
    return 1 if n_failed else 0


if __name__ == "__main__":
    sys.exit(main())
